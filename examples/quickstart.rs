//! Quickstart: the paper's Example 1 / Example 5 in a dozen lines.
//!
//! Two co-accessed objects (a merge join of `lineitem` and `orders`), eight
//! disks. FULL STRIPING maximizes per-object parallelism but interleaves
//! the two scans on every disk; the advisor separates them instead.
//!
//! Run with: `cargo run -p dblayout-examples --bin quickstart`

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_disksim::paper_disks;
use dblayout_examples::render_layout;

fn main() {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();

    let workload = "
        -- Example 1's co-access pattern: lineitem and orders merge-joined.
        SELECT COUNT(*), SUM(l_extendedprice)
        FROM lineitem, orders
        WHERE l_orderkey = o_orderkey;
    ";

    let advisor = Advisor::new(&catalog, &disks);
    let rec = advisor
        .recommend_sql(workload, &AdvisorConfig::default())
        .expect("advice");

    println!("estimated workload I/O response time:");
    println!("  FULL STRIPING : {:>10.0} ms", rec.full_striping_cost_ms);
    println!("  recommended   : {:>10.0} ms", rec.recommended_cost_ms);
    println!(
        "  improvement   : {:>9.1} %  (paper's Example 1: ~36-44%)",
        rec.estimated_improvement_pct
    );
    println!();
    println!("recommended layout:");
    println!("{}", render_layout(&catalog, &rec.layout, &disks));
}
