//! Manageability and availability constraints (paper §2.3): co-locate two
//! tables in one filegroup for backup, require mirrored storage for a
//! critical table, and bound data movement from the current deployment.
//!
//! Run with: `cargo run -p dblayout-examples --bin constrained_layout`

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_core::constraints::Constraints;
use dblayout_core::tsgreedy::TsGreedyConfig;
use dblayout_disksim::{paper_disks, Availability, Layout};
use dblayout_examples::render_layout;

fn main() {
    let catalog = tpch_catalog(0.5);
    let mut disks = paper_disks();
    // Two of the drives are RAID-1 pairs.
    disks[2].avail = Availability::Mirroring;
    disks[3].avail = Availability::Mirroring;

    let workload = "
        SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;
        SELECT COUNT(*) FROM partsupp, part WHERE ps_partkey = p_partkey;
        SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority;
    ";

    let customer = catalog.object_id("customer").unwrap();
    let part = catalog.object_id("part").unwrap();
    let partsupp = catalog.object_id("partsupp").unwrap();
    let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
    let current = Layout::full_striping(sizes, &disks);

    // The DBA wants: customer mirrored; part and partsupp in one filegroup
    // (they are backed up together); and at most 60k blocks moved off the
    // current fully-striped deployment.
    let constraints = Constraints::none()
        .require_avail(customer, Availability::Mirroring)
        .co_locate(part, partsupp)
        .bound_movement(current, 60_000);

    let cfg = AdvisorConfig {
        search: TsGreedyConfig {
            constraints: constraints.clone(),
            ..Default::default()
        },
        ..Default::default()
    };

    let advisor = Advisor::new(&catalog, &disks);
    let rec = advisor.recommend_sql(workload, &cfg).expect("advice");

    constraints
        .check(&rec.layout, &disks)
        .expect("recommendation satisfies every constraint");

    println!(
        "constrained recommendation: {:.1}% estimated improvement over FULL STRIPING",
        rec.estimated_improvement_pct
    );
    println!();
    println!("{}", render_layout(&catalog, &rec.layout, &disks));
    println!(
        "customer is on mirrored disks only: {:?}",
        rec.layout.disks_of(customer.index())
    );
    println!(
        "part / partsupp share a disk set: {:?} / {:?}",
        rec.layout.disks_of(part.index()),
        rec.layout.disks_of(partsupp.index())
    );
}
