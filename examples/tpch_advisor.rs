//! Full advisor run over the TPCH-22 benchmark workload: analyze the
//! workload, print the access graph's hottest co-access pairs, run
//! TS-GREEDY, show the recommended layout and validate it against the
//! simulated execution oracle (the reproduction's stand-in for actually
//! materializing the layout, paper §7.2).
//!
//! Run with: `cargo run --release -p dblayout-examples --bin tpch_advisor`

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_disksim::{paper_disks, SimConfig, Simulator};
use dblayout_examples::render_layout;
use dblayout_workloads::tpch22::tpch22;

fn main() {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let workload_sql = tpch22().join(";\n") + ";";

    let advisor = Advisor::new(&catalog, &disks);
    let rec = advisor
        .recommend_sql(&workload_sql, &AdvisorConfig::default())
        .expect("advice");

    // Hottest co-access pairs from the Analyze Workload step.
    let mut edges = rec.access_graph.edges();
    edges.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    println!("hottest co-accessed object pairs (blocks co-accessed):");
    for (u, v, w) in edges.iter().take(5) {
        let nu = catalog.meta(dblayout_catalog::ObjectId(*u as u32)).name;
        let nv = catalog.meta(dblayout_catalog::ObjectId(*v as u32)).name;
        println!("  {nu:<28} <-> {nv:<28} {w:>12.0}");
    }

    println!();
    println!(
        "TS-GREEDY: {} iterations, {} cost evaluations",
        rec.search.iterations, rec.search.cost_evaluations
    );
    println!(
        "estimated improvement over FULL STRIPING: {:.1}% (paper: ~20%)",
        rec.estimated_improvement_pct
    );
    println!();
    println!("{}", render_layout(&catalog, &rec.layout, &disks));

    // "Materialize" both layouts on the simulator and measure.
    let cfg = SimConfig::default();
    let mut sim_fs = Simulator::new(&disks, &rec.full_striping, cfg.clone()).expect("valid");
    let fs_ms = sim_fs.execute_workload(&rec.plans).total_elapsed_ms;
    let mut sim_rec = Simulator::new(&disks, &rec.layout, cfg).expect("valid");
    let rec_ms = sim_rec.execute_workload(&rec.plans).total_elapsed_ms;
    println!("simulated execution (oracle):");
    println!("  FULL STRIPING : {:>10.0} ms", fs_ms);
    println!("  recommended   : {:>10.0} ms", rec_ms);
    println!(
        "  actual improvement: {:.1}% (paper: ~25%)",
        100.0 * (fs_ms - rec_ms) / fs_ms
    );
}
