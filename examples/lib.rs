//! Shared pretty-printing helpers for the runnable examples.

use dblayout_catalog::Catalog;
use dblayout_disksim::{DiskSpec, Layout};

/// Renders a layout as an object × disk table of percentage shares.
pub fn render_layout(catalog: &Catalog, layout: &Layout, disks: &[DiskSpec]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<24}", "object \\ disk"));
    for d in disks {
        out.push_str(&format!("{:>7}", d.name));
    }
    out.push('\n');
    for meta in catalog.objects() {
        out.push_str(&format!("{:<24}", truncate(&meta.name, 23)));
        for j in 0..disks.len() {
            let f = layout.fraction(meta.id.index(), j);
            if f > 0.0 {
                out.push_str(&format!("{:>6.0}%", f * 100.0));
            } else {
                out.push_str(&format!("{:>7}", "."));
            }
        }
        out.push('\n');
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::tpch::tpch_catalog;
    use dblayout_disksim::uniform_disks;

    #[test]
    fn render_shows_all_objects_and_disks() {
        let c = tpch_catalog(0.01);
        let disks = uniform_disks(3, 100_000, 10.0, 20.0);
        let layout =
            Layout::full_striping(c.objects().iter().map(|o| o.size_blocks).collect(), &disks);
        let s = render_layout(&c, &layout, &disks);
        assert!(s.contains("lineitem"));
        assert!(s.contains("D3"));
        // Full striping: no "." cells for real objects.
        assert!(s.lines().count() > c.object_count());
    }
}
