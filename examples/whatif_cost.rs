//! What-if layout analysis: compare candidate layouts for a workload with
//! the analytic cost model (paper §5) and the execution oracle, without
//! running the search — the "manual DBA" workflow behind the paper's
//! Table 2 and Example 5.
//!
//! Run with: `cargo run --release -p dblayout-examples --bin whatif_cost`

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::costmodel::CostModel;
use dblayout_disksim::{paper_disks, Layout, SimConfig, Simulator};
use dblayout_planner::{plan_statement, PhysicalPlan};
use dblayout_sql::parse_workload_file;

fn main() {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();

    let entries =
        parse_workload_file("SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;")
            .expect("parse");
    let plans: Vec<(PhysicalPlan, f64)> = entries
        .iter()
        .map(|e| {
            (
                plan_statement(&catalog, &e.statement).expect("plan"),
                e.weight,
            )
        })
        .collect();

    let li = catalog.object_id("lineitem").unwrap().index();
    let or = catalog.object_id("orders").unwrap().index();

    // Candidate layouts, in the spirit of Example 5's L1/L2/L3.
    let full = Layout::full_striping(sizes.clone(), &disks);

    let mut overlap = Layout::full_striping(sizes.clone(), &disks);
    overlap.place_proportional(li, &[0, 1, 2, 3, 4], &disks);
    overlap.place_proportional(or, &[4, 5, 6], &disks); // shares disk 4

    let mut separated = Layout::full_striping(sizes, &disks);
    separated.place_proportional(li, &[0, 1, 2, 3, 4], &disks);
    separated.place_proportional(or, &[5, 6, 7], &disks);

    let model = CostModel::default();
    println!(
        "{:<22} {:>16} {:>16}",
        "layout", "estimated (ms)", "simulated (ms)"
    );
    for (name, layout) in [
        ("L1 full striping", &full),
        ("L2 overlap on D5", &overlap),
        ("L3 separated", &separated),
    ] {
        let est = model.workload_cost(&plans, layout, &disks);
        let mut sim = Simulator::new(&disks, layout, SimConfig::default()).expect("valid");
        let act = sim.execute_workload(&plans).total_elapsed_ms;
        println!("{name:<22} {est:>16.0} {act:>16.0}");
    }
    println!();
    println!("expected ordering (paper Example 5): L3 < L1 < L2 on both columns");
}
