-- Bundled example workload for `dblayout explain` (TPC-H subset).
-- Three weighted statements: two co-accessing joins and one scan, enough
-- for the access graph to force separation and for TS-GREEDY's step 2 to
-- find at least one improving widen.
-- weight: 10
SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;
-- weight: 3
SELECT COUNT(*) FROM partsupp, part WHERE ps_partkey = p_partkey;
SELECT COUNT(*) FROM customer;
