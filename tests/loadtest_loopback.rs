//! Loopback load-harness integration: schedule determinism, a full-mix
//! smoke against the real server, and the coordinated-omission regression
//! — the acceptance property that a deliberately stalled server shows its
//! inflated tail in open-loop mode but not in a naive closed-loop
//! measurement.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dblayout_loadgen::{build_schedule, run_load, LoadConfig, MixCounts, MixWeights, Mode, OpKind};
use dblayout_server::{Server, ServerConfig};

fn loopback_server(threads: usize) -> dblayout_server::ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        queue_capacity: threads + 8,
        audit_dir: None,
        ..ServerConfig::default()
    })
    .expect("loopback server starts")
}

/// Same seed → identical op schedule and mix counters; different seeds
/// diverge. This is the property that makes `BENCH_server.json` loadtest
/// rows exactly gateable across hosts.
#[test]
fn same_seed_yields_identical_schedule_and_mix() {
    let w = MixWeights::default();
    let a = build_schedule(42, 50_000, &w);
    let b = build_schedule(42, 50_000, &w);
    assert_eq!(a, b, "schedule must be a pure function of the seed");
    assert_eq!(MixCounts::tally(&a), MixCounts::tally(&b));
    let c = build_schedule(43, 50_000, &w);
    assert_ne!(a, c, "seeds must matter");
}

/// Two real runs with the same seed report identical mix counters (the
/// driver sends exactly the schedule, whatever the timing), and a
/// full-mix run against the real server completes without errors.
#[test]
fn full_mix_loopback_run_is_clean_and_mix_deterministic() {
    let connections = 2;
    let server = loopback_server(connections + 1);
    let cfg = LoadConfig {
        addr: server.addr().to_string(),
        requests: 2_000,
        connections,
        mode: Mode::Closed,
        seed: 42,
        catalog: "tpch:0.01".to_string(),
        ..LoadConfig::default()
    };
    let first = run_load(&cfg).expect("first run completes");
    assert_eq!(first.errors, 0, "no protocol errors: {:?}", first.per_op);
    assert_eq!(first.shed, 0);
    assert_eq!(first.requests, 2_000);

    // Every scheduled op was actually sent and measured.
    let expected = MixCounts::tally(&build_schedule(cfg.seed, cfg.requests, &cfg.weights));
    for (kind, (op, snap)) in OpKind::ALL.iter().zip(first.per_op.iter()) {
        assert_eq!(*op, kind.wire_name());
        assert_eq!(
            snap.count,
            expected.of(*kind),
            "measured count for {op} must match the schedule"
        );
    }

    let second = run_load(&cfg).expect("second run completes");
    assert_eq!(first.mix, second.mix, "same seed → same mix counters");
    assert_eq!(second.errors, 0);
}

/// A stats-only open-loop run reports sane percentile ordering and
/// bounded-error quantiles out of the merged histograms.
#[test]
fn open_loop_percentiles_are_ordered() {
    let server = loopback_server(3);
    let cfg = LoadConfig {
        addr: server.addr().to_string(),
        requests: 3_000,
        connections: 2,
        mode: Mode::Open {
            rate_per_sec: 6_000.0,
        },
        seed: 7,
        weights: MixWeights {
            open_session: 0,
            add_statements: 0,
            recommend: 0,
            stats: 1,
        },
        setup_sessions: false,
        ..LoadConfig::default()
    };
    let report = run_load(&cfg).expect("run completes");
    assert_eq!(report.errors, 0);
    assert_eq!(report.offered_rps, Some(6_000.0));
    let stats = &report
        .per_op
        .iter()
        .find(|(op, _)| *op == "stats")
        .expect("stats measured")
        .1;
    assert_eq!(stats.count, 3_000);
    let p50 = stats.quantile(0.50);
    let p99 = stats.quantile(0.99);
    let p999 = stats.quantile(0.999);
    assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
    assert!(p50 > 0);
}

/// A fake advisory endpoint that stalls ~`delay` per request: the
/// worst-case server for coordinated omission. Replies are protocol-shaped
/// so the driver counts no errors.
fn stalled_responder(delay: Duration) -> (String, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stalled responder");
    let addr = listener.local_addr().expect("local addr").to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop_accept.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let stop_conn = Arc::clone(&stop_accept);
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                    if stop_conn.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(delay);
                    if writer.write_all(b"{\"ok\":true,\"result\":{}}\n").is_err() {
                        break;
                    }
                }
            });
        }
    });
    (addr, stop)
}

/// The coordinated-omission acceptance property. Against a responder that
/// stalls ~2 ms per request:
///
/// * **closed loop** sends only as fast as the stall allows — every
///   latency is ~2 ms, p99 small;
/// * **open loop at 1000 req/s on one connection** *intends* a request
///   every 1 ms, so a backlog grows ~1 ms per request and the
///   intended-send-time accounting charges it: p99 must blow up to many
///   multiples of the service time.
///
/// A harness that charged open-loop latency from the actual send (the
/// naive measurement) would report ~2 ms in both modes.
#[test]
fn stalled_server_inflates_open_loop_tail_but_not_closed_loop() {
    let delay = Duration::from_millis(2);
    let (addr, stop) = stalled_responder(delay);
    let base = LoadConfig {
        addr,
        requests: 300,
        connections: 1,
        seed: 9,
        // stats-only: the fake responder speaks no real protocol.
        weights: MixWeights {
            open_session: 0,
            add_statements: 0,
            recommend: 0,
            stats: 1,
        },
        setup_sessions: false,
        ..LoadConfig::default()
    };

    let closed = run_load(&LoadConfig {
        mode: Mode::Closed,
        ..base.clone()
    })
    .expect("closed run completes");
    let open = run_load(&LoadConfig {
        mode: Mode::Open {
            rate_per_sec: 1_000.0,
        },
        ..base.clone()
    })
    .expect("open run completes");
    stop.store(true, Ordering::SeqCst);

    let closed_p99 = closed
        .per_op
        .iter()
        .map(|(_, s)| s.quantile(0.99))
        .max()
        .unwrap_or(0);
    let open_p99 = open
        .per_op
        .iter()
        .map(|(_, s)| s.quantile(0.99))
        .max()
        .unwrap_or(0);
    // Closed loop coordinates with the stall: per-request latency stays
    // near the 2 ms service time (generous ceiling for slow CI hosts).
    assert!(
        closed_p99 >= 1_000,
        "closed-loop p99 below the service time? {closed_p99}µs"
    );
    assert!(
        closed_p99 < 30_000,
        "closed-loop p99 should stay near the 2ms service time, got {closed_p99}µs"
    );
    // Open loop charges the growing backlog: with ~300 requests arriving
    // 2x faster than they are served, the late tail waits ~150ms+.
    assert!(
        open_p99 >= 5 * closed_p99,
        "open-loop p99 ({open_p99}µs) must dwarf closed-loop p99 ({closed_p99}µs) \
         against a stalled server — coordinated omission is being hidden"
    );
    assert!(
        open_p99 >= 50_000,
        "open-loop p99 ({open_p99}µs) should reflect the ~1ms/request backlog"
    );
}
