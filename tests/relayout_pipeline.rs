//! End-to-end continuous-relayout pipeline against the in-process engine,
//! exactly the loop the CI `relayout-pipeline` job drives: open a decayed
//! session, ingest the early WK-DRIFT epochs, take a baseline
//! recommendation, watch the hot set migrate, see `drift` fire, get a
//! budgeted re-recommendation that meets its improvement floor within its
//! movement budget, plan + apply the migration, and verify the loop closes
//! (drift goes quiet again). Writes the plan artifact the CI job uploads.

use std::path::PathBuf;

use dblayout_server::{parse_request, ApiError, Engine, RuntimeInfo};
use dblayout_workloads::wkctrl::wk_drift;
use serde_json::{Value, ValueExt};

const BUDGET_MB: u64 = 500;
const MIN_IMPROVEMENT_PCT: f64 = 5.0;

fn execute(engine: &Engine, line: &str) -> Result<Value, ApiError> {
    engine.execute(parse_request(line)?, &RuntimeInfo::default())
}

fn must(engine: &Engine, line: &str) -> Value {
    execute(engine, line).unwrap_or_else(|e| panic!("`{line}` failed: {e:?}"))
}

fn f64_of(v: &Value, key: &str) -> f64 {
    v.get(key)
        .and_then(|x| x.as_f64())
        .unwrap_or_else(|| panic!("result lacks numeric `{key}`: {v:?}"))
}

fn u64_of(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(|x| x.as_u64())
        .unwrap_or_else(|| panic!("result lacks integer `{key}`: {v:?}"))
}

fn bool_of(v: &Value, key: &str) -> bool {
    v.get(key)
        .and_then(|x| x.as_bool())
        .unwrap_or_else(|| panic!("result lacks boolean `{key}`: {v:?}"))
}

fn ingest_epochs(engine: &Engine, session: u64, epochs: &[Vec<String>]) {
    for epoch in epochs {
        let sql = epoch
            .iter()
            .map(|q| format!("{q};"))
            .collect::<Vec<_>>()
            .join("\n");
        let line = serde_json::to_string(&Value::Map(vec![
            ("op".into(), Value::Str("add_statements".into())),
            ("session".into(), Value::U64(session)),
            ("sql".into(), Value::Str(sql)),
        ]))
        .expect("serialize add_statements");
        must(engine, &line);
    }
}

#[test]
fn drift_budget_migrate_loop_closes() {
    let engine = Engine::new(8, 256);
    let opened = must(
        &engine,
        r#"{"op":"open_session","catalog":"tpch:0.1","threads":2,"decay":0.5}"#,
    );
    let session = u64_of(&opened, "session");
    let epochs = wk_drift(6, 10, 42);

    // Phase 1: the early hot set (lineitem ⨝ orders) arrives and the
    // baseline budgeted recommendation snapshots the advised graph.
    // (Snapshot after two epochs: the lineitem⨝orders pair carries ~5×
    // the block mass of partsupp⨝part, so the advised distribution must
    // be taken while still early-dominated for the normalized distance
    // to show the hot-set migration clearly.)
    ingest_epochs(&engine, session, &epochs[..2]);
    let baseline = must(
        &engine,
        &format!(r#"{{"op":"recommend_budgeted","session":{session}}}"#),
    );
    assert!(f64_of(&baseline, "improvement_pct") >= 0.0);

    // Freshly advised: drift must be quiet.
    let quiet = must(&engine, &format!(r#"{{"op":"drift","session":{session}}}"#));
    assert!(
        !bool_of(&quiet, "drifted"),
        "drift fired immediately after advising: {quiet:?}"
    );

    // Phase 2: the hot set migrates to partsupp ⨝ part; drift must fire.
    ingest_epochs(&engine, session, &epochs[2..]);
    let fired = must(&engine, &format!(r#"{{"op":"drift","session":{session}}}"#));
    assert!(
        bool_of(&fired, "drifted"),
        "hot-set migration went undetected: {fired:?}"
    );
    assert!(f64_of(&fired, "edge_distance") > f64_of(&quiet, "edge_distance"));

    // Phase 3: budgeted re-advice — the CI acceptance bar: improvement at
    // least the floor, movement within the budget.
    let readvice = must(
        &engine,
        &format!(
            r#"{{"op":"recommend_budgeted","session":{session},"budget_mb":{BUDGET_MB},"min_improvement_pct":{MIN_IMPROVEMENT_PCT}}}"#
        ),
    );
    assert!(
        bool_of(&readvice, "meets_improvement"),
        "budgeted advice below the {MIN_IMPROVEMENT_PCT}% floor: {readvice:?}"
    );
    assert!(f64_of(&readvice, "improvement_pct") >= MIN_IMPROVEMENT_PCT);
    assert!(u64_of(&readvice, "moved_bytes") <= BUDGET_MB * 1_048_576);

    // Phase 4: plan + apply the migration to the stored target.
    let plan = must(
        &engine,
        &format!(r#"{{"op":"plan_migration","session":{session},"apply":true}}"#),
    );
    assert!(bool_of(&plan, "applied"));
    assert_eq!(
        u64_of(&plan, "total_moved_blocks"),
        u64_of(&readvice, "moved_blocks"),
        "the plan must move exactly what the advice promised"
    );
    assert!(u64_of(&plan, "total_moved_bytes") <= BUDGET_MB * 1_048_576);
    assert!(u64_of(&plan, "step_count") >= 1);
    let steps = plan
        .get("steps")
        .and_then(|s| s.as_array())
        .expect("plan carries steps");
    assert_eq!(steps.len() as u64, u64_of(&plan, "step_count"));
    for step in steps {
        // Every intermediate is priced through the drive model.
        assert!(f64_of(step, "intermediate_cost_ms") > 0.0);
        assert!(f64_of(step, "step_ms") > 0.0);
    }
    let worst = f64_of(&plan, "worst_intermediate_cost_ms");
    assert!(worst >= f64_of(&plan, "start_cost_ms") - 1e-9);
    assert!(worst >= f64_of(&plan, "final_cost_ms") - 1e-9);

    // Applying re-snapshots the advised graph: the loop is closed.
    let closed = must(&engine, &format!(r#"{{"op":"drift","session":{session}}}"#));
    assert!(
        !bool_of(&closed, "drifted"),
        "drift still firing after the migration applied: {closed:?}"
    );

    // The artifact the CI relayout-pipeline job uploads.
    let artifact = Value::Map(vec![
        ("drift".into(), fired),
        ("recommendation".into(), readvice),
        ("plan".into(), plan),
    ]);
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("relayout_plan.json");
    let text = serde_json::to_string_pretty(&artifact).expect("serialize artifact");
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}
