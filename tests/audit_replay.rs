//! End-to-end audit pipeline: record a real recommendation into an
//! on-disk decision log, reopen the log cold (as a separate CLI
//! invocation or a restarted server would), and verify the record
//! re-derives the decision bit-identically at any thread count — then
//! prove the accuracy gate is live by injecting a cost-model fault and
//! watching the threshold catch it.

use std::path::PathBuf;

use dblayout_audit::{
    record_budgeted, record_recommendation, replay, DecisionKind, DecisionLog, DecisionRecord,
    RecordInputs, ReplayConfig,
};
use dblayout_catalog::resolve_catalog;
use dblayout_core::access_graph::build_access_graph;
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_core::costmodel::decompose_workload;
use dblayout_core::tsgreedy::TsGreedyConfig;
use dblayout_disksim::{uniform_disks, Layout};
use dblayout_obs::counters;
use dblayout_relayout::{recommend_budgeted, BudgetConfig};
use dblayout_sql::{parse_workload_file, Statement};

const CATALOG_SPEC: &str = "tpch:0.05";
const WORKLOAD: &str = "-- weight: 10\n\
     SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;\n\
     -- weight: 3\n\
     SELECT COUNT(*) FROM partsupp, part WHERE ps_partkey = p_partkey;\n\
     SELECT COUNT(*) FROM customer;";

/// A per-test scratch directory that is removed on drop even when the
/// test body panics.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dblayout_audit_e2e_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs a real advisor recommendation and captures it as a decision
/// record, exactly as `dblayout recommend --audit-dir` does.
fn make_recommend_record(threads: usize) -> DecisionRecord {
    let catalog = resolve_catalog(CATALOG_SPEC).expect("catalog");
    let disks = uniform_disks(4, 400_000, 9.0, 20.0);
    let advisor = Advisor::new(&catalog, &disks);
    let cfg = AdvisorConfig {
        search: TsGreedyConfig {
            k: 6,
            threads,
            ..TsGreedyConfig::default()
        },
        ..AdvisorConfig::default()
    };
    let before = counters::snapshot();
    let rec = advisor.recommend_sql(WORKLOAD, &cfg).expect("recommend");
    let delta = counters::snapshot().delta(&before);
    record_recommendation(
        &RecordInputs {
            source: "e2e.recommend",
            catalog_spec: CATALOG_SPEC,
            workload_sql: WORKLOAD,
            constraints_text: None,
            disks: &disks,
            k: 6,
            threads,
            ts_unix_ms: None,
        },
        &rec,
        &[],
        &delta,
    )
}

#[test]
fn recorded_decision_survives_the_log_and_replays_at_any_thread_count() {
    let scratch = ScratchDir::new("log_roundtrip");

    // Record the decision and persist it, then drop the log handle: the
    // replay below must work from the on-disk bytes alone, the way a
    // later `dblayout audit replay` invocation (a fresh process) does.
    let mut record = make_recommend_record(1);
    let id = {
        let mut log = DecisionLog::open(&scratch.0).expect("open log");
        log.append(&mut record).expect("append")
    };
    assert!(id >= 1, "append must assign a positive id");

    let log = DecisionLog::open(&scratch.0).expect("reopen log");
    let loaded = log.get(id).expect("load record");
    assert_eq!(
        loaded, record,
        "the log must round-trip the record bit-exactly"
    );
    assert_eq!(
        log.next_id(),
        id + 1,
        "ids must stay monotone across a reopen"
    );

    // The determinism contract: the recorded decision re-derives
    // bit-identically no matter how many worker threads the replaying
    // host happens to use — including thread counts the original
    // decision never ran with.
    for threads in [1, 2, 4] {
        let report = replay(
            &loaded,
            &ReplayConfig {
                threads: Some(threads),
                ..ReplayConfig::default()
            },
        )
        .expect("replay");
        assert!(report.graph_digest_ok, "record corrupted in storage");
        assert!(
            report.layout_matches,
            "{} fraction cells diverged at {threads} threads",
            report.mismatched_cells
        );
        assert_eq!(report.threads, threads);
        assert!(report.simulated_ms > 0.0, "simulator produced no work");
        assert!(report.relative_error_pct.is_finite());
        assert!(report.passed());
    }
}

#[test]
fn injected_perturbation_is_caught_by_the_error_threshold() {
    let scratch = ScratchDir::new("perturb");
    let mut record = make_recommend_record(1);
    let id = DecisionLog::open(&scratch.0)
        .expect("open log")
        .append(&mut record)
        .expect("append");
    let loaded = DecisionLog::open(&scratch.0)
        .expect("reopen")
        .get(id)
        .expect("load");

    // Pick a threshold the honest replay clears with room to spare, so
    // the perturbed failure below is attributable to the fault and not
    // to a threshold that was already borderline.
    let honest = replay(&loaded, &ReplayConfig::default()).expect("honest replay");
    assert!(honest.layout_matches && honest.graph_digest_ok);
    let threshold_pct = honest.relative_error_pct * 2.0 + 10.0;
    let gated = replay(
        &loaded,
        &ReplayConfig {
            error_threshold_pct: threshold_pct,
            ..ReplayConfig::default()
        },
    )
    .expect("gated replay");
    assert!(gated.within_threshold && gated.passed());

    // A 10x cost-model fault must blow that same threshold: the layout
    // still reproduces (the search is untouched), but the accuracy gate
    // fails — exactly the failure CI's perturbation step asserts on.
    let perturbed = replay(
        &loaded,
        &ReplayConfig {
            error_threshold_pct: threshold_pct,
            predicted_scale: 10.0,
            ..ReplayConfig::default()
        },
    )
    .expect("perturbed replay");
    assert!(
        perturbed.layout_matches,
        "perturbation must not touch the search"
    );
    assert!(
        perturbed.relative_error_pct > threshold_pct,
        "10x fault produced only {:.2}% error against a {:.2}% threshold",
        perturbed.relative_error_pct,
        threshold_pct
    );
    assert!(!perturbed.within_threshold);
    assert!(
        !perturbed.passed(),
        "a dead gate would deploy a cost model that is 10x wrong"
    );
}

#[test]
fn budgeted_decisions_record_and_replay_through_the_same_log() {
    let scratch = ScratchDir::new("budgeted");
    let catalog = resolve_catalog(CATALOG_SPEC).expect("catalog");
    let disks = uniform_disks(4, 400_000, 9.0, 20.0);
    let advisor = Advisor::new(&catalog, &disks);
    let entries = parse_workload_file(WORKLOAD).expect("workload");
    let statements: Vec<(Statement, f64)> = entries
        .into_iter()
        .map(|e| (e.statement, e.weight))
        .collect();
    let plans = advisor.plan_workload(&statements).expect("plan");
    let subplans = decompose_workload(&plans);
    let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
    let graph = build_access_graph(sizes.len(), &plans);
    let current = Layout::full_striping(sizes.clone(), &disks);
    let bcfg = BudgetConfig {
        budget_blocks: None,
        min_improvement_pct: 0.0,
        search: TsGreedyConfig {
            k: 6,
            threads: 1,
            ..TsGreedyConfig::default()
        },
    };
    let before = counters::snapshot();
    let outcome =
        recommend_budgeted(&sizes, &graph, &subplans, &disks, &current, &bcfg).expect("budgeted");
    let delta = counters::snapshot().delta(&before);
    let mut record = record_budgeted(
        &RecordInputs {
            source: "e2e.migrate",
            catalog_spec: CATALOG_SPEC,
            workload_sql: WORKLOAD,
            constraints_text: None,
            disks: &disks,
            k: 6,
            threads: 1,
            ts_unix_ms: None,
        },
        &outcome,
        &current,
        &graph,
        &subplans,
        0.0,
        &[],
        &delta,
    );

    // Interleave with a recommend record to prove the log keeps kinds
    // apart and ids strictly ordered.
    let mut first = make_recommend_record(1);
    let mut log = DecisionLog::open(&scratch.0).expect("open log");
    let first_id = log.append(&mut first).expect("append recommend");
    let budgeted_id = log.append(&mut record).expect("append budgeted");
    assert!(budgeted_id > first_id);

    let log = DecisionLog::open(&scratch.0).expect("reopen");
    let summaries = log.list().expect("list");
    assert_eq!(summaries.len(), 2);

    let loaded = log.get(budgeted_id).expect("load budgeted");
    assert_eq!(loaded.kind, DecisionKind::Budgeted);
    assert_eq!(
        loaded.config.deployed.as_ref().map(Vec::len),
        Some(sizes.len()),
        "budgeted record must embed the full deployed matrix"
    );
    for threads in [1, 4] {
        let report = replay(
            &loaded,
            &ReplayConfig {
                threads: Some(threads),
                ..ReplayConfig::default()
            },
        )
        .expect("replay budgeted");
        assert!(report.graph_digest_ok);
        assert!(
            report.layout_matches,
            "budgeted replay diverged at {threads} threads ({} cells)",
            report.mismatched_cells
        );
    }
}
