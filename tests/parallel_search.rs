//! Differential harness for `dblayout-par`: the parallel TS-GREEDY engine
//! must be **byte-identical** to the single-threaded search on every axis a
//! caller can observe — layout fractions, cost bits, search counters, the
//! deterministic cost trace, the rendered explain narrative, and the
//! deterministic work-counter deltas (`dblayout-prof`) — across a seeded
//! matrix of workloads × disk configurations × thread counts. A
//! small-instance oracle test additionally pins the parallel engine to the
//! same quality bound against exhaustive enumeration as the sequential one.

use std::sync::{Arc, Mutex};

use dblayout_obs::counters;

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_catalog::ObjectId;
use dblayout_core::costmodel::{decompose_workload, CostModel};
use dblayout_core::{
    build_access_graph, build_access_graph_subplans, exhaustive_search, render_narrative,
    ts_greedy, NarrativeNames, Partitioner, TsGreedyConfig, TsGreedyResult,
};
use dblayout_disksim::{paper_disks, uniform_disks, DiskSpec, Layout};
use dblayout_obs::{Collector, RingSink};
use dblayout_partition::MultilevelConfig;
use dblayout_planner::{plan_statement, PhysicalPlan, PlanNode, Subplan};
use dblayout_workloads::parse_all;
use dblayout_workloads::qgen::generate;
use dblayout_workloads::wkmega::{generate as generate_mega, MegaConfig};

/// Every placement fraction's bit pattern — byte-level layout identity.
fn layout_bits(l: &Layout) -> Vec<u64> {
    let mut bits = Vec::new();
    for i in 0..l.object_count() {
        for j in 0..l.disk_count() {
            bits.push(l.fraction(i, j).to_bits());
        }
    }
    bits
}

/// The work counters are process-global, so measuring a per-run delta is
/// only sound while no other search runs concurrently. Both tests in this
/// binary take this lock around every counted region.
static COUNTER_ISOLATION: Mutex<()> = Mutex::new(());

/// Everything a caller can observe from one search run, fully serialized
/// so the differential comparison is a single `assert_eq!`.
#[derive(Debug, PartialEq)]
struct Observed {
    layout: Vec<u64>,
    initial_cost: u64,
    final_cost: u64,
    iterations: usize,
    cost_evaluations: usize,
    trace: Vec<String>,
    narrative: String,
    /// Deterministic work-counter deltas (scheduling-class counters
    /// excluded) — the dblayout-prof fingerprint, which must not move
    /// with the thread count.
    work_counters: Vec<(&'static str, u64)>,
}

/// Runs TS-GREEDY at `threads` under a deterministic collector and captures
/// the full observable surface.
fn observe(
    sizes: &[u64],
    graph: &dblayout_partition::Graph,
    workload: &[(Vec<Subplan>, f64)],
    disks: &[DiskSpec],
    threads: usize,
) -> Observed {
    observe_with(
        sizes,
        graph,
        workload,
        disks,
        TsGreedyConfig {
            threads,
            ..Default::default()
        },
    )
}

/// [`observe`] with a caller-supplied configuration (the collector is
/// overwritten with a deterministic ring).
fn observe_with(
    sizes: &[u64],
    graph: &dblayout_partition::Graph,
    workload: &[(Vec<Subplan>, f64)],
    disks: &[DiskSpec],
    cfg: TsGreedyConfig,
) -> Observed {
    let ring = Arc::new(RingSink::new(usize::MAX));
    let cfg = TsGreedyConfig {
        collector: Collector::deterministic(ring.clone()),
        ..cfg
    };
    let guard = COUNTER_ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    let before = counters::snapshot();
    let r: TsGreedyResult =
        ts_greedy(sizes, graph, workload, disks, &cfg).expect("search succeeds");
    let work_counters = counters::snapshot().delta(&before).deterministic_pairs();
    drop(guard);
    let records = ring.drain();
    let names = NarrativeNames {
        objects: &[],
        disks: &[],
    };
    Observed {
        layout: layout_bits(&r.layout),
        initial_cost: r.initial_cost.to_bits(),
        final_cost: r.final_cost.to_bits(),
        iterations: r.iterations,
        cost_evaluations: r.cost_evaluations,
        trace: records.iter().map(|rec| rec.to_jsonl()).collect(),
        narrative: render_narrative(&records, &names),
        work_counters,
    }
}

/// The seeded differential matrix: {2 generated workloads} × {2 disk
/// configurations} × {threads 1, 2, 4, 8}. Thread count 1 is the reference;
/// every other count must reproduce its layout, cost bits, counters, trace
/// JSONL, and explain narrative byte for byte.
#[test]
fn seeded_matrix_is_byte_identical_across_thread_counts() {
    let catalog = tpch_catalog(0.1);
    let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
    let disk_configs: Vec<(&str, Vec<DiskSpec>)> = vec![
        ("paper_disks", paper_disks()),
        ("uniform5", uniform_disks(5, 10_000_000, 10.0, 20.0)),
    ];
    for seed in [42u64, 1337] {
        let queries = generate(8, seed);
        let stmts = parse_all(&queries).expect("generated queries parse");
        let plans: Vec<(PhysicalPlan, f64)> = stmts
            .iter()
            .map(|(s, w)| (plan_statement(&catalog, s).expect("plans"), *w))
            .collect();
        let graph = build_access_graph(sizes.len(), &plans);
        let workload = decompose_workload(&plans);
        for (disk_name, disks) in &disk_configs {
            let reference = observe(&sizes, &graph, &workload, disks, 1);
            assert!(
                reference
                    .trace
                    .iter()
                    .any(|l| l.contains("tsgreedy.candidate")),
                "seed {seed} × {disk_name}: trace records no candidates"
            );
            assert!(
                reference
                    .work_counters
                    .iter()
                    .any(|&(name, v)| { name == "tsgreedy_candidates_enumerated" && v > 0 }),
                "seed {seed} × {disk_name}: search enumerated no counted candidates"
            );
            for threads in [2usize, 4, 8] {
                let got = observe(&sizes, &graph, &workload, disks, threads);
                assert_eq!(
                    got, reference,
                    "seed {seed} × {disk_name} × threads {threads} diverged"
                );
            }
        }
    }
}

/// The mega-family row of the matrix: a WK-MEGA instance driven through
/// the mega-scale configuration (multilevel step 1, pruned widening,
/// adaptive chunking) must stay byte-identical — layouts, cost bits,
/// search counters, trace, and deterministic work counters — across
/// thread counts {1, 2, 4, 8}, and across the chunking policy
/// (`min_chunk: 1` forces full fan-out; the adaptive default may collapse
/// small iterations to fewer workers — neither may move a bit).
#[test]
fn mega_family_row_is_byte_identical_across_thread_counts() {
    let instance = generate_mega(&MegaConfig::scaled(200, 10, 21));
    let graph = build_access_graph_subplans(instance.sizes.len(), &instance.workload);
    let mega_cfg = |threads: usize, min_chunk: usize| TsGreedyConfig {
        threads,
        min_chunk,
        partitioner: Partitioner::Multilevel(MultilevelConfig::default()),
        prune_width: 4,
        max_iterations: 10,
        ..Default::default()
    };
    let reference = observe_with(
        &instance.sizes,
        &graph,
        &instance.workload,
        &instance.disks,
        mega_cfg(1, 1),
    );
    assert!(reference.iterations >= 1, "mega search adopted no move");
    assert!(
        reference
            .trace
            .iter()
            .any(|l| l.contains("\"method\":\"multilevel\"")),
        "step 1 did not route through the multilevel partitioner"
    );
    for threads in [2usize, 4, 8] {
        for min_chunk in [1usize, 256] {
            let got = observe_with(
                &instance.sizes,
                &graph,
                &instance.workload,
                &instance.disks,
                mega_cfg(threads, min_chunk),
            );
            assert_eq!(
                got, reference,
                "mega row: threads {threads} × min_chunk {min_chunk} diverged"
            );
        }
    }
}

fn scan(obj: u32, blocks: u64) -> PlanNode {
    PlanNode::TableScan {
        object: ObjectId(obj),
        name: format!("t{obj}"),
        blocks,
        rows: blocks as f64,
    }
}

/// Small-instance oracle: on ≤4 objects × ≤3 disks the parallel search must
/// stay within the same bound of the exhaustive optimum as the sequential
/// search — at every thread count, with bit-identical results.
#[test]
fn small_instance_tracks_the_exhaustive_oracle() {
    let disks = uniform_disks(3, 100_000, 10.0, 20.0);
    let sizes = vec![240u64, 120, 60];
    let plans = vec![
        (
            PhysicalPlan::new(PlanNode::MergeJoin {
                on: "k".into(),
                rows: 1.0,
                left: Box::new(scan(0, 240)),
                right: Box::new(scan(1, 120)),
            }),
            2.0,
        ),
        (PhysicalPlan::new(scan(2, 60)), 1.0),
    ];
    let graph = build_access_graph(sizes.len(), &plans);
    let workload = decompose_workload(&plans);
    let model = CostModel::default();
    let (opt_layout, opt_cost) = exhaustive_search(&sizes, &workload, &disks, &model);
    opt_layout.validate(&disks).expect("oracle layout is valid");

    let mut final_costs = Vec::new();
    let _guard = COUNTER_ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [1usize, 2, 4, 8] {
        let cfg = TsGreedyConfig {
            threads,
            ..Default::default()
        };
        let r = ts_greedy(&sizes, &graph, &workload, &disks, &cfg).expect("search succeeds");
        r.layout
            .validate(&disks)
            .expect("recommended layout is valid");
        assert!(
            r.final_cost <= opt_cost * 1.1 + 1e-9,
            "threads {threads}: {} exceeds 110% of the exhaustive optimum {opt_cost}",
            r.final_cost
        );
        final_costs.push(r.final_cost.to_bits());
    }
    assert!(
        final_costs.iter().all(|&b| b == final_costs[0]),
        "thread counts disagree on the final cost: {final_costs:?}"
    );
}
