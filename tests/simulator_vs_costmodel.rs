//! Cost model vs. execution oracle: the §7.2 validation property — the
//! analytic model need not match absolute times, but it must order layouts
//! the way "actual" execution does for the workloads it was designed for.

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::costmodel::CostModel;
use dblayout_disksim::{paper_disks, Layout, SimConfig, Simulator};
use dblayout_integration::{plan_workload, sizes};

fn simulate(plans: &[(dblayout_planner::PhysicalPlan, f64)], layout: &Layout) -> f64 {
    let disks = paper_disks();
    let mut sim = Simulator::new(&disks, layout, SimConfig::default()).unwrap();
    sim.execute_workload(plans).total_elapsed_ms
}

/// Example 5's three layouts, through real plans: both the model and the
/// simulator must order L3 < L1 < L2.
#[test]
fn example5_ordering_holds_on_both_axes() {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let plans = plan_workload(
        &catalog,
        &["SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey"],
    );
    let s = sizes(&catalog);
    let li = catalog.object_id("lineitem").unwrap().index();
    let or = catalog.object_id("orders").unwrap().index();

    let l1 = Layout::full_striping(s.clone(), &disks);
    let mut l2 = Layout::full_striping(s.clone(), &disks);
    l2.place_proportional(li, &[0, 1, 2, 3, 4], &disks);
    l2.place_proportional(or, &[4, 5, 6], &disks);
    let mut l3 = Layout::full_striping(s, &disks);
    l3.place_proportional(li, &[0, 1, 2, 3, 4], &disks);
    l3.place_proportional(or, &[5, 6, 7], &disks);

    let model = CostModel::default();
    let est: Vec<f64> = [&l1, &l2, &l3]
        .iter()
        .map(|l| model.workload_cost(&plans, l, &disks))
        .collect();
    let act: Vec<f64> = [&l1, &l2, &l3]
        .iter()
        .map(|l| simulate(&plans, l))
        .collect();

    assert!(est[2] < est[0] && est[0] < est[1], "estimated {est:?}");
    assert!(act[2] < act[0] && act[0] < act[1], "simulated {act:?}");
}

/// The simulator is *richer* than the model: repeated access to the same
/// object within one statement (TPC-H Q21's lineitem self-references) hits
/// the buffer pool, so the simulated cost undercuts a naive scaling of the
/// model — the exact effect the paper blames for its worst estimate.
#[test]
fn buffer_pool_makes_simulator_diverge_from_model_on_rereads() {
    let catalog = tpch_catalog(0.05);
    let disks = paper_disks();
    let striped = Layout::full_striping(sizes(&catalog), &disks);
    let single = plan_workload(&catalog, &["SELECT COUNT(*) FROM orders"]);
    let double = plan_workload(
        &catalog,
        &["SELECT COUNT(*) FROM orders o1, orders o2 WHERE o1.o_orderkey = o2.o_orderkey"],
    );
    let model = CostModel::default();
    // The model charges the re-read fully: double ≈ 2x single.
    let m1 = model.workload_cost(&single, &striped, &disks);
    let m2 = model.workload_cost(&double, &striped, &disks);
    assert!(m2 > 1.8 * m1, "model: {m2} vs {m1}");
    // The oracle absorbs the second scan in cache: the I/O portion of the
    // self-join stays well under twice the single scan's.
    let mut sim = Simulator::new(&disks, &striped, SimConfig::default()).unwrap();
    let a1 = sim.execute_plan(&single[0].0);
    let a2 = sim.execute_plan(&double[0].0);
    assert!(
        a2.io_ms < 1.5 * a1.io_ms,
        "oracle io: {} vs {}",
        a2.io_ms,
        a1.io_ms
    );
}

/// Temp I/O shows up in the oracle but not in the default cost model —
/// the documented blind spot (§7.2) reproduced.
#[test]
fn temp_io_is_model_blind_spot() {
    let catalog = tpch_catalog(0.2);
    let disks = paper_disks();
    let striped = Layout::full_striping(sizes(&catalog), &disks);
    // Big unsorted ORDER BY forces an external sort through tempdb.
    let plans = plan_workload(
        &catalog,
        &["SELECT * FROM lineitem ORDER BY l_extendedprice"],
    );
    let total_spill: u64 = plans[0]
        .0
        .subplans()
        .iter()
        .map(|s| s.temp_write_blocks)
        .sum();
    assert!(total_spill > 0, "expected an external sort");

    let blind = CostModel::default().workload_cost(&plans, &striped, &disks);
    let aware = CostModel {
        include_temp_io: true,
        ..CostModel::default()
    }
    .workload_cost(&plans, &striped, &disks);
    assert!(aware > blind);

    let mut sim = Simulator::new(&disks, &striped, SimConfig::default()).unwrap();
    let t = sim.execute_plan(&plans[0].0);
    assert!(t.temp_ms > 0.0, "oracle must pay the spill");
}

/// Scaling sanity: a workload touching twice the data takes longer on both
/// axes under the same layout.
#[test]
fn more_data_costs_more_on_both_axes() {
    let catalog = tpch_catalog(0.2);
    let disks = paper_disks();
    let striped = Layout::full_striping(sizes(&catalog), &disks);
    let small = plan_workload(&catalog, &["SELECT COUNT(*) FROM orders"]);
    let large = plan_workload(&catalog, &["SELECT COUNT(*) FROM lineitem"]);
    let model = CostModel::default();
    assert!(
        model.workload_cost(&large, &striped, &disks)
            > model.workload_cost(&small, &striped, &disks)
    );
    assert!(simulate(&large, &striped) > simulate(&small, &striped));
}
