//! Cross-crate observability tests: the explain pipeline's trace must
//! round-trip through the `dblayout-obs` parser byte-for-byte, stay
//! deterministic across runs, and narrate every adopted merge; the
//! disabled-collector path must leave advisor results bit-identical.

use std::sync::Arc;

use dblayout_catalog::resolve_catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_core::{render_narrative, NarrativeNames};
use dblayout_disksim::paper_disks;
use dblayout_obs::{parse_trace, Collector, Record, RingSink};

const WORKLOAD: &str = "-- weight: 10\n\
     SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;\n\
     -- weight: 3\n\
     SELECT COUNT(*) FROM partsupp, part WHERE ps_partkey = p_partkey;\n\
     SELECT COUNT(*) FROM customer;";

fn traced_run() -> (Vec<Record>, f64) {
    let catalog = resolve_catalog("tpch:0.1").expect("catalog");
    let disks = paper_disks();
    let ring = Arc::new(RingSink::new(usize::MAX));
    let mut cfg = AdvisorConfig::default();
    cfg.search.collector = Collector::deterministic(ring.clone());
    let rec = Advisor::new(&catalog, &disks)
        .recommend_sql(WORKLOAD, &cfg)
        .expect("advisor succeeds");
    (ring.drain(), rec.recommended_cost_ms)
}

#[test]
fn explain_trace_round_trips_through_the_parser() {
    let (records, _) = traced_run();
    assert!(!records.is_empty());
    let jsonl: String = records
        .iter()
        .map(|r| {
            let mut line = r.to_jsonl();
            line.push('\n');
            line
        })
        .collect();
    let parsed = parse_trace(&jsonl).expect("trace parses");
    assert_eq!(parsed, records, "JSONL round-trip is lossless");
}

#[test]
fn traces_and_results_are_deterministic_and_unaffected_by_tracing() {
    let (r1, cost1) = traced_run();
    let (r2, cost2) = traced_run();
    assert_eq!(cost1.to_bits(), cost2.to_bits());
    let l1: Vec<String> = r1.iter().map(Record::to_jsonl).collect();
    let l2: Vec<String> = r2.iter().map(Record::to_jsonl).collect();
    assert_eq!(l1, l2, "deterministic collector reproduces the trace");

    // Tracing must not perturb the recommendation itself.
    let catalog = resolve_catalog("tpch:0.1").expect("catalog");
    let disks = paper_disks();
    let untraced = Advisor::new(&catalog, &disks)
        .recommend_sql(WORKLOAD, &AdvisorConfig::default())
        .expect("advisor succeeds");
    assert_eq!(untraced.recommended_cost_ms.to_bits(), cost1.to_bits());
}

#[test]
fn narrative_covers_every_adopted_merge() {
    let (records, _) = traced_run();
    let catalog = resolve_catalog("tpch:0.1").expect("catalog");
    let object_names: Vec<String> = catalog.objects().iter().map(|o| o.name.clone()).collect();
    let disk_names: Vec<String> = paper_disks().iter().map(|d| d.name.clone()).collect();
    let narrative = render_narrative(
        &records,
        &NarrativeNames {
            objects: &object_names,
            disks: &disk_names,
        },
    );
    let adopts = records
        .iter()
        .filter(|r| r.name == "tsgreedy.adopt")
        .count();
    assert!(adopts >= 1, "expected at least one adopted merge");
    assert_eq!(narrative.matches("— adopt: widen [").count(), adopts);
    for i in 1..=adopts {
        assert!(
            narrative.contains(&format!("iteration {i}: ")),
            "iteration {i} missing from narrative:\n{narrative}"
        );
    }
    assert!(narrative.contains("no improving move; search stops"));
}
