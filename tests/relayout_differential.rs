//! Differential tests for `dblayout-relayout`'s windowed access-graph
//! maintenance: at `decay = 1.0` the epoch machinery must be *bit-identical*
//! to the plain accumulating `extend_access_graph` path — same serialized
//! graph, same advised layout, down to the fraction bit patterns — across
//! seeded WK-DRIFT workloads. And the budgeted recommendation must be
//! byte-identical at any thread count (the `dblayout-par` contract).

use dblayout_catalog::resolve_catalog;
use dblayout_core::costmodel::decompose_workload;
use dblayout_core::tsgreedy::{ts_greedy, TsGreedyConfig};
use dblayout_core::{extend_access_graph, Layout};
use dblayout_disksim::paper_disks;
use dblayout_integration::sizes;
use dblayout_partition::Graph;
use dblayout_planner::{plan_statement, PhysicalPlan};
use dblayout_relayout::{advance_epoch, graph_bytes, recommend_budgeted, BudgetConfig};
use dblayout_sql::parse_statement;
use dblayout_workloads::wkctrl::wk_drift;
use proptest::prelude::*;

fn plan_epochs(
    catalog: &dblayout_catalog::Catalog,
    epochs: &[Vec<String>],
) -> Vec<Vec<(PhysicalPlan, f64)>> {
    epochs
        .iter()
        .map(|sqls| {
            sqls.iter()
                .map(|sql| {
                    let stmt =
                        parse_statement(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
                    (
                        plan_statement(catalog, &stmt)
                            .unwrap_or_else(|e| panic!("plan `{sql}`: {e}")),
                        1.0,
                    )
                })
                .collect()
        })
        .collect()
}

fn layout_bits(l: &Layout) -> Vec<u64> {
    let mut bits = Vec::new();
    for i in 0..l.object_count() {
        for j in 0..l.disk_count() {
            bits.push(l.fraction(i, j).to_bits());
        }
    }
    bits
}

/// The satellite property, spelled out: decayed maintenance at 1.0 over any
/// epoching == one plain accumulation, and so is everything downstream.
fn assert_decay_one_is_identity(seed: u64, epochs: usize, queries: usize) {
    let catalog = resolve_catalog("tpch:0.1").expect("tpch catalog");
    let disks = paper_disks();
    let n = catalog.objects().len();
    let per_epoch = plan_epochs(&catalog, &wk_drift(epochs, queries, seed));

    // Epoch-bucketed path at decay 1.0: advance, then fold, per epoch.
    let mut decayed = Graph::new(n);
    for plans in &per_epoch {
        advance_epoch(&mut decayed, 1.0);
        extend_access_graph(&mut decayed, plans);
    }

    // Plain accumulating path: one extend over the concatenation.
    let all: Vec<(PhysicalPlan, f64)> = per_epoch.into_iter().flatten().collect();
    let mut plain = Graph::new(n);
    extend_access_graph(&mut plain, &all);

    assert_eq!(
        graph_bytes(&decayed),
        graph_bytes(&plain),
        "decay=1.0 graph diverged from extend_access_graph (seed {seed})"
    );

    // And the advised layouts are bit-identical too.
    let sizes = sizes(&catalog);
    let workload = decompose_workload(&all);
    let cfg = TsGreedyConfig::default();
    let a = ts_greedy(&sizes, &decayed, &workload, &disks, &cfg).expect("search on decayed graph");
    let b = ts_greedy(&sizes, &plain, &workload, &disks, &cfg).expect("search on plain graph");
    assert_eq!(layout_bits(&a.layout), layout_bits(&b.layout));
    assert_eq!(a.final_cost.to_bits(), b.final_cost.to_bits());
}

#[test]
fn decay_one_matches_plain_extension_on_four_seeded_workloads() {
    for seed in [11, 42, 977, 31337] {
        assert_decay_one_is_identity(seed, 4, 10);
    }
}

proptest! {
    /// Randomized seeds and epoch shapes: the cheap half of the identity
    /// (serialized graph bytes) holds for *any* WK-DRIFT workload. The
    /// expensive half (advised-layout bits) is covered by the four seeded
    /// workloads above — running a full search 128 times would drown CI.
    #[test]
    fn decay_one_graph_bytes_match_for_any_seed(seed in 0u64..u64::MAX, epochs in 1usize..5) {
        let catalog = resolve_catalog("tpch:0.1").expect("tpch catalog");
        let n = catalog.objects().len();
        let per_epoch = plan_epochs(&catalog, &wk_drift(epochs, 6, seed));
        let mut decayed = Graph::new(n);
        for plans in &per_epoch {
            advance_epoch(&mut decayed, 1.0);
            extend_access_graph(&mut decayed, plans);
        }
        let all: Vec<(PhysicalPlan, f64)> = per_epoch.into_iter().flatten().collect();
        let mut plain = Graph::new(n);
        extend_access_graph(&mut plain, &all);
        prop_assert_eq!(graph_bytes(&decayed), graph_bytes(&plain));
    }
}

/// The budgeted recommendation inherits determinism-at-any-thread-count
/// from the seeded TS-GREEDY search: identical layouts, costs, movement,
/// and strategy at 1, 2, 4, and 8 workers.
#[test]
fn budgeted_recommendation_is_identical_at_any_thread_count() {
    let catalog = resolve_catalog("tpch:0.1").expect("tpch catalog");
    let disks = paper_disks();
    let n = catalog.objects().len();
    let per_epoch = plan_epochs(&catalog, &wk_drift(3, 12, 7));
    let all: Vec<(PhysicalPlan, f64)> = per_epoch.into_iter().flatten().collect();
    let mut graph = Graph::new(n);
    extend_access_graph(&mut graph, &all);
    let sizes = sizes(&catalog);
    let workload = decompose_workload(&all);
    let current = Layout::full_striping(sizes.clone(), &disks);

    let mut reference: Option<(Vec<u64>, u64, u64, &'static str)> = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = BudgetConfig {
            budget_blocks: Some(4096),
            min_improvement_pct: 0.0,
            search: TsGreedyConfig {
                threads,
                ..Default::default()
            },
        };
        let outcome = recommend_budgeted(&sizes, &graph, &workload, &disks, &current, &cfg)
            .expect("budgeted search succeeds");
        let fingerprint = (
            layout_bits(&outcome.layout),
            outcome.new_cost_ms.to_bits(),
            outcome.moved_blocks,
            outcome.strategy.as_str(),
        );
        match &reference {
            None => reference = Some(fingerprint),
            Some(r) => assert_eq!(r, &fingerprint, "thread count {threads} diverged"),
        }
    }
}
