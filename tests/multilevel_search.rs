//! Multilevel-vs-direct search quality: on a mid-size WK-MEGA instance,
//! running TS-GREEDY with the multilevel step-1 partitioner under the
//! *same* greedy iteration budget as the direct KL partitioner must
//! produce an advised layout within a stated bound of the direct path's
//! cost. The bound is deliberately loose: at this scale both engines
//! reach the same (saturated) cut and multilevel is the better-balanced
//! of the two, but step-2 greedy widening is path-dependent in its
//! starting layout, so equal-quality partitions converge to local optima
//! that measured up to ~15% apart in either direction (DESIGN.md §11,
//! EXPERIMENTS.md). The bound guards against *regressions past* that
//! measured envelope, not against path dependence itself. Both paths
//! must also stay valid and deterministic.

use dblayout_core::costmodel::CostModel;
use dblayout_core::{build_access_graph_subplans, ts_greedy, Partitioner, TsGreedyConfig};
use dblayout_partition::MultilevelConfig;
use dblayout_workloads::wkmega::{generate, MegaConfig};

/// Advised-layout cost bound under the identical iteration budget.
/// Measured converged ratios across the family sit between 0.99 and
/// 1.17 (see EXPERIMENTS.md); 1.25 is that envelope plus headroom, and a
/// breach means a real partition-quality regression, not path noise.
/// (Multilevel is allowed to be *better* — balance-aware coarsened
/// partitions sometimes are.)
const COST_RATIO_BOUND: f64 = 1.25;

#[test]
fn multilevel_step1_matches_direct_search_quality_within_bound() {
    let instance = generate(&MegaConfig::scaled(300, 16, 7));
    let graph = build_access_graph_subplans(instance.sizes.len(), &instance.workload);
    // Identical budget for both engines: pruned widening plus an
    // iteration cap of two adopted moves per disk (the megascale bench
    // uses the same rule; a fully converged widening is minutes per run
    // at mega scale, which a tier-1 test cannot afford).
    let run = |partitioner: Partitioner| {
        let cfg = TsGreedyConfig {
            partitioner,
            prune_width: 8,
            max_iterations: 2 * instance.disks.len(),
            ..Default::default()
        };
        ts_greedy(
            &instance.sizes,
            &graph,
            &instance.workload,
            &instance.disks,
            &cfg,
        )
        .expect("mega search succeeds")
    };

    let direct = run(Partitioner::Direct);
    let multilevel = run(Partitioner::Multilevel(MultilevelConfig::default()));

    direct
        .layout
        .validate(&instance.disks)
        .expect("direct layout is valid");
    multilevel
        .layout
        .validate(&instance.disks)
        .expect("multilevel layout is valid");

    // The recorded final cost is the real workload cost, for both.
    let model = CostModel::default();
    for r in [&direct, &multilevel] {
        let recomputed =
            model.workload_cost_subplans(&instance.workload, &r.layout, &instance.disks);
        assert_eq!(recomputed.to_bits(), r.final_cost.to_bits());
    }

    let ratio = multilevel.final_cost / direct.final_cost;
    assert!(
        ratio <= COST_RATIO_BOUND,
        "multilevel advice degraded: {} vs {} (ratio {ratio})",
        multilevel.final_cost,
        direct.final_cost
    );

    // Determinism: the multilevel path reproduces itself bit for bit.
    let again = run(Partitioner::Multilevel(MultilevelConfig::default()));
    assert_eq!(again.final_cost.to_bits(), multilevel.final_cost.to_bits());
    assert_eq!(again.iterations, multilevel.iterations);
}

/// `Partitioner::Auto` is the shipped default: below its threshold it must
/// be bit-identical to `Direct`; above, it must route to multilevel and
/// still beat the bound.
#[test]
fn auto_partitioner_threshold_routes_both_ways() {
    let instance = generate(&MegaConfig::scaled(260, 12, 3));
    let graph = build_access_graph_subplans(instance.sizes.len(), &instance.workload);
    let run = |partitioner: Partitioner| {
        let cfg = TsGreedyConfig {
            partitioner,
            prune_width: 8,
            max_iterations: instance.disks.len(),
            ..Default::default()
        };
        ts_greedy(
            &instance.sizes,
            &graph,
            &instance.workload,
            &instance.disks,
            &cfg,
        )
        .expect("mega search succeeds")
    };
    let direct = run(Partitioner::Direct);
    let auto_high = run(Partitioner::Auto { threshold: 100_000 });
    assert_eq!(
        auto_high.final_cost.to_bits(),
        direct.final_cost.to_bits(),
        "Auto above threshold must be the direct path bit for bit"
    );
    let multilevel = run(Partitioner::Multilevel(MultilevelConfig::default()));
    let auto_low = run(Partitioner::Auto { threshold: 0 });
    assert_eq!(
        auto_low.final_cost.to_bits(),
        multilevel.final_cost.to_bits(),
        "Auto below threshold must be the multilevel path bit for bit"
    );
}
