//! Advisor quality: TS-GREEDY against exhaustive enumeration and the
//! qualitative Figure 10 shape, on real planner output.

use dblayout_catalog::apb::apb_catalog;
use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::access_graph::build_access_graph;
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_core::costmodel::{decompose_workload, CostModel};
use dblayout_core::exhaustive::exhaustive_search;
use dblayout_core::tsgreedy::{ts_greedy, TsGreedyConfig};
use dblayout_disksim::uniform_disks;
use dblayout_integration::{plan_workload, sizes};
use dblayout_workloads::apb800::apb800;
use dblayout_workloads::parse_all;

/// On a 3-disk sub-instance with real TPC-H plans, TS-GREEDY's layout must
/// be within 10% of the exhaustive optimum restricted to the accessed
/// objects (the paper's "comparable to exhaustive enumeration" claim).
#[test]
fn ts_greedy_near_optimal_on_small_real_instance() {
    let catalog = tpch_catalog(0.05);
    let disks = uniform_disks(3, 400_000, 10.0, 20.0);
    let plans = plan_workload(
        &catalog,
        &[
            "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey",
            "SELECT COUNT(*) FROM partsupp, part WHERE ps_partkey = p_partkey",
        ],
    );
    // Restrict to the four big tables plus the untouched rest: exhaustive
    // over 11 objects x 7 subsets each is too big, so project the workload
    // onto a reduced object universe: only accessed objects matter for
    // cost, and untouched objects can sit anywhere. We exploit that by
    // running exhaustive on the full size vector but only over layouts of
    // accessed objects: equivalently, give every untouched object a fixed
    // single-disk placement by pinning sizes of untouched objects to zero.
    let mut reduced_sizes = sizes(&catalog);
    let graph = build_access_graph(reduced_sizes.len(), &plans);
    for (i, s) in reduced_sizes.iter_mut().enumerate() {
        if graph.node_weight(i) == 0.0 {
            *s = 0; // untouched: no capacity impact, no cost impact
        }
    }
    let workload = decompose_workload(&plans);
    // Exhaustive over 11 objects would be 7^11; zero-size objects still
    // enumerate. Keep only the accessed ones in a compacted instance.
    let accessed: Vec<usize> = (0..reduced_sizes.len())
        .filter(|&i| graph.node_weight(i) > 0.0)
        .collect();
    assert!(accessed.len() <= 6, "expected few accessed objects");

    let greedy = ts_greedy(
        &reduced_sizes,
        &graph,
        &workload,
        &disks,
        &TsGreedyConfig::default(),
    )
    .unwrap();

    // Exhaustive on the compacted instance: remap object ids.
    let mut remap = vec![usize::MAX; reduced_sizes.len()];
    for (new, &old) in accessed.iter().enumerate() {
        remap[old] = new;
    }
    let compact_sizes: Vec<u64> = accessed.iter().map(|&i| reduced_sizes[i]).collect();
    let compact_workload: Vec<(Vec<dblayout_planner::Subplan>, f64)> = workload
        .iter()
        .map(|(subs, w)| {
            let remapped = subs
                .iter()
                .map(|s| {
                    let mut out = dblayout_planner::Subplan {
                        temp_write_blocks: s.temp_write_blocks,
                        temp_read_blocks: s.temp_read_blocks,
                        ..Default::default()
                    };
                    for a in &s.accesses {
                        out.add(dblayout_planner::ObjectAccess {
                            object: dblayout_catalog::ObjectId(remap[a.object.index()] as u32),
                            ..a.clone()
                        });
                    }
                    out
                })
                .collect();
            (remapped, *w)
        })
        .collect();
    let (_, optimal) = exhaustive_search(
        &compact_sizes,
        &compact_workload,
        &disks,
        &CostModel::default(),
    );

    assert!(
        greedy.final_cost <= optimal * 1.10 + 1e-9,
        "greedy {} vs optimal {}",
        greedy.final_cost,
        optimal
    );
}

/// Figure 10's negative control through the full pipeline: APB-800 never
/// co-accesses its two fact tables, so the advisor finds (essentially)
/// nothing to improve over FULL STRIPING.
#[test]
fn apb_workload_gains_nothing_over_full_striping() {
    let catalog = apb_catalog();
    let disks = uniform_disks(8, 100_000, 10.0, 20.0);
    let advisor = Advisor::new(&catalog, &disks);
    let stmts = parse_all(&apb800(1)[..80]).unwrap();
    let rec = advisor
        .recommend(&stmts, &AdvisorConfig::default())
        .unwrap();
    assert!(
        rec.estimated_improvement_pct.abs() < 3.0,
        "APB should be ~0%, got {}",
        rec.estimated_improvement_pct
    );
}

/// k = 2 never recommends a worse layout than k = 1 on the same workload
/// (it strictly widens the searched neighborhood).
#[test]
fn wider_k_never_hurts() {
    let catalog = tpch_catalog(0.1);
    let disks = uniform_disks(6, 400_000, 10.0, 20.0);
    let plans = plan_workload(
        &catalog,
        &[
            "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey",
            "SELECT COUNT(*) FROM part",
        ],
    );
    let all_sizes = sizes(&catalog);
    let graph = build_access_graph(all_sizes.len(), &plans);
    let workload = decompose_workload(&plans);
    let k1 = ts_greedy(
        &all_sizes,
        &graph,
        &workload,
        &disks,
        &TsGreedyConfig::default(),
    )
    .unwrap();
    let k2 = ts_greedy(
        &all_sizes,
        &graph,
        &workload,
        &disks,
        &TsGreedyConfig {
            k: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(k2.final_cost <= k1.final_cost * 1.0001);
}
