//! Shared helpers for the cross-crate integration tests.

use dblayout_catalog::Catalog;
use dblayout_planner::{plan_statement, PhysicalPlan};
use dblayout_sql::parse_statement;

/// Parses and plans one SQL statement, panicking with context on failure.
pub fn plan(catalog: &Catalog, sql: &str) -> PhysicalPlan {
    let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
    plan_statement(catalog, &stmt).unwrap_or_else(|e| panic!("plan `{sql}`: {e}"))
}

/// Parses and plans a workload of unit-weight statements.
pub fn plan_workload(catalog: &Catalog, sqls: &[&str]) -> Vec<(PhysicalPlan, f64)> {
    sqls.iter().map(|s| (plan(catalog, s), 1.0)).collect()
}

/// Object sizes indexed by object id.
pub fn sizes(catalog: &Catalog) -> Vec<u64> {
    catalog.objects().iter().map(|o| o.size_blocks).collect()
}
