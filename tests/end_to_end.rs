//! End-to-end: SQL text → parser → optimizer → access graph → TS-GREEDY →
//! layout → cost model AND simulator, across the whole stack.

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_core::costmodel::CostModel;
use dblayout_disksim::{paper_disks, SimConfig, Simulator};
use dblayout_integration::sizes;

#[test]
fn advisor_pipeline_produces_valid_improving_layout() {
    let catalog = tpch_catalog(0.2);
    let disks = paper_disks();
    let advisor = Advisor::new(&catalog, &disks);
    let rec = advisor
        .recommend_sql(
            "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;\n\
             SELECT COUNT(*) FROM partsupp, part WHERE ps_partkey = p_partkey;\n\
             SELECT COUNT(*) FROM customer;",
            &AdvisorConfig::default(),
        )
        .expect("end-to-end advice");

    rec.layout.validate(&disks).expect("valid layout");
    assert!(rec.estimated_improvement_pct > 0.0);
    assert!(rec.recommended_cost_ms < rec.full_striping_cost_ms);

    // The advisor's estimate must agree in *direction* with the simulator.
    let cfg = SimConfig::default();
    let mut s1 = Simulator::new(&disks, &rec.full_striping, cfg.clone()).unwrap();
    let fs_ms = s1.execute_workload(&rec.plans).total_elapsed_ms;
    let mut s2 = Simulator::new(&disks, &rec.layout, cfg).unwrap();
    let rec_ms = s2.execute_workload(&rec.plans).total_elapsed_ms;
    assert!(
        rec_ms < fs_ms,
        "simulated: recommended {rec_ms} vs full striping {fs_ms}"
    );
}

#[test]
fn workload_file_weights_flow_through() {
    let catalog = tpch_catalog(0.1);
    let disks = paper_disks();
    let advisor = Advisor::new(&catalog, &disks);
    let weighted = advisor
        .recommend_sql(
            "-- weight: 10\nSELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;",
            &AdvisorConfig::default(),
        )
        .unwrap();
    let unweighted = advisor
        .recommend_sql(
            "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;",
            &AdvisorConfig::default(),
        )
        .unwrap();
    // Same single statement: the recommended layout is identical, and the
    // weighted cost is 10x the unweighted one.
    let model = CostModel::default();
    let c10 = model.workload_cost(&weighted.plans, &weighted.layout, &disks);
    let c1 = model.workload_cost(&unweighted.plans, &unweighted.layout, &disks);
    assert!((c10 / c1 - 10.0).abs() < 1e-6, "{c10} vs {c1}");
}

#[test]
fn dml_statements_advise_without_error() {
    let catalog = tpch_catalog(0.05);
    let disks = paper_disks();
    let advisor = Advisor::new(&catalog, &disks);
    let rec = advisor
        .recommend_sql(
            "UPDATE orders SET o_orderstatus = 'F' WHERE o_orderkey < 1000;\n\
             DELETE FROM lineitem WHERE l_shipdate < '1992-06-01';\n\
             INSERT INTO nation (n_nationkey) VALUES (99);\n\
             SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;",
            &AdvisorConfig::default(),
        )
        .expect("mixed DML workload");
    rec.layout.validate(&disks).unwrap();
    assert_eq!(rec.plans.len(), 4);
}

#[test]
fn every_object_fully_allocated_after_search() {
    let catalog = tpch_catalog(0.1);
    let disks = paper_disks();
    let advisor = Advisor::new(&catalog, &disks);
    let rec = advisor
        .recommend_sql(
            "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;",
            &AdvisorConfig::default(),
        )
        .unwrap();
    for (i, &size) in sizes(&catalog).iter().enumerate() {
        let placed: u64 = rec.layout.blocks_on(i).iter().sum();
        assert_eq!(placed, size, "object {i}");
    }
}
