//! Loopback integration tests for `dblayout-server`: concurrent clients must
//! get **byte-identical** answers to the offline advisor, malformed input
//! must come back as structured errors (never a dropped connection or a
//! panic), and a long request stream must not grow server state without
//! bound.

use std::time::Duration;

use dblayout_catalog::resolve_catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_core::costmodel::{decompose_workload, CostModel};
use dblayout_disksim::{paper_disks, Layout};
use dblayout_server::protocol::{obj, ok_line, recommendation_result};
use dblayout_server::{Client, Server, ServerConfig, ServerHandle};
use dblayout_workloads::tpch22::tpch22;
use serde_json::{Value, ValueExt};

/// TPCH-22 in workload-file syntax (one statement per `;`-terminated line
/// group), identical text for the server and the offline advisor.
fn tpch22_workload_text() -> String {
    tpch22()
        .iter()
        .map(|q| format!("{};", q.trim().trim_end_matches(';')))
        .collect::<Vec<_>>()
        .join("\n")
}

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(config).expect("bind a loopback server")
}

fn json_request(pairs: Vec<(&str, Value)>) -> String {
    serde_json::to_string(&obj(pairs)).expect("serialize request")
}

fn expect_result(line: &str) -> Value {
    let v: Value = serde_json::from_str(line).expect("response is JSON");
    assert_eq!(
        v.get("ok").and_then(|b| b.as_bool()),
        Some(true),
        "request failed: {line}"
    );
    v.get("result")
        .expect("ok responses carry `result`")
        .clone()
}

/// The acceptance bar: 8 concurrent clients running the full
/// open→add(TPCH-22)→whatif→recommend→close session against one server get
/// responses byte-identical to each other **and** to the offline
/// [`Advisor`] serialized through the same protocol encoder.
#[test]
fn eight_concurrent_clients_match_offline_advisor_byte_for_byte() {
    const CLIENTS: usize = 8;
    const CATALOG: &str = "tpch:0.1";
    let text = tpch22_workload_text();

    // Offline reference, computed once, single-threaded.
    let catalog = resolve_catalog(CATALOG).unwrap();
    let disks = paper_disks();
    let advisor = Advisor::new(&catalog, &disks);
    let rec = advisor
        .recommend_sql(&text, &AdvisorConfig::default())
        .expect("offline advisor succeeds on TPCH-22");
    let expected_recommend_line = ok_line(recommendation_result(&catalog, &disks, &rec));

    let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
    let fs = Layout::full_striping(sizes, &disks);
    let workload = decompose_workload(&rec.plans);
    let fs_cost = CostModel::default().workload_cost_subplans(&workload, &fs, &disks);
    let expected_whatif_line = ok_line(obj(vec![
        ("cost_ms", Value::F64(fs_cost)),
        ("cached", Value::Bool(false)),
        ("version", Value::U64(1)),
    ]));

    let server = start(ServerConfig {
        threads: 4,
        session_capacity: CLIENTS + 1,
        ..Default::default()
    });
    let addr = server.addr().to_string();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let text = text.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let open = expect_result(
                    &client
                        .roundtrip(&json_request(vec![
                            ("op", Value::Str("open_session".into())),
                            ("catalog", Value::Str(CATALOG.into())),
                        ]))
                        .unwrap(),
                );
                let sid = open.get("session").and_then(|v| v.as_u64()).unwrap();
                let add = expect_result(
                    &client
                        .roundtrip(&json_request(vec![
                            ("op", Value::Str("add_statements".into())),
                            ("session", Value::U64(sid)),
                            ("sql", Value::Str(text)),
                        ]))
                        .unwrap(),
                );
                assert_eq!(add.get("added").and_then(|v| v.as_u64()), Some(22));

                let whatif_line = client
                    .roundtrip(&json_request(vec![
                        ("op", Value::Str("whatif_cost".into())),
                        ("session", Value::U64(sid)),
                        ("layout", Value::Str("full_striping".into())),
                    ]))
                    .unwrap();
                let recommend_line = client
                    .roundtrip(&json_request(vec![
                        ("op", Value::Str("recommend".into())),
                        ("session", Value::U64(sid)),
                    ]))
                    .unwrap();
                expect_result(
                    &client
                        .roundtrip(&json_request(vec![
                            ("op", Value::Str("close_session".into())),
                            ("session", Value::U64(sid)),
                        ]))
                        .unwrap(),
                );
                (whatif_line, recommend_line)
            })
        })
        .collect();

    let results: Vec<(String, String)> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();

    for (i, (whatif_line, recommend_line)) in results.iter().enumerate() {
        assert_eq!(
            whatif_line, &expected_whatif_line,
            "client {i}: whatif_cost differs from the offline cost model"
        );
        assert_eq!(
            recommend_line, &expected_recommend_line,
            "client {i}: recommend differs from the offline advisor"
        );
    }

    server.shutdown();
}

/// Malformed and invalid requests come back as structured errors on a still
/// usable connection — the server never panics or drops the client.
#[test]
fn malformed_requests_yield_structured_errors() {
    let server = start(ServerConfig {
        threads: 2,
        ..Default::default()
    });
    let mut client = Client::connect(&server.addr().to_string()).unwrap();

    let cases: &[(&str, &str)] = &[
        ("{definitely not json", "parse_error"),
        ("[1,2,3]", "bad_request"),
        (r#"{"op":"no_such_op"}"#, "bad_request"),
        (
            r#"{"op":"open_session","catalog":"mongodb"}"#,
            "bad_request",
        ),
        (
            r#"{"op":"add_statements","session":77,"sql":"SELECT 1;"}"#,
            "unknown_session",
        ),
        (
            r#"{"op":"whatif_cost","session":1,"layout":"zigzag"}"#,
            "bad_request",
        ),
    ];
    for (request, want_code) in cases {
        let line = client.roundtrip(request).expect("connection survives");
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false), "{line}");
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_str()),
            Some(*want_code),
            "request {request} → {line}"
        );
    }

    // The same connection still serves valid requests afterwards.
    let stats = expect_result(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    assert!(stats.get("errors_total").and_then(|v| v.as_u64()).unwrap() >= 6);

    server.shutdown();
}

/// dblayout-par stress: 8 concurrent sessions each running a
/// multi-threaded recommend (`threads: 4`) against one server. No client
/// may see an internal error (a poisoned lock surfaces as one), all
/// recommendations must be byte-identical (thread count is a latency knob,
/// never a results knob), the gauges must return to zero once every
/// session is closed and the queue drained, and the Prometheus exposition
/// must stay parseable afterwards.
#[test]
fn concurrent_multithreaded_searches_leave_no_residue() {
    const CLIENTS: usize = 8;
    let text = tpch22_workload_text();
    let server = start(ServerConfig {
        threads: 4,
        session_capacity: CLIENTS + 1,
        ..Default::default()
    });
    let addr = server.addr().to_string();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let text = text.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let open = expect_result(
                    &client
                        .roundtrip(&json_request(vec![
                            ("op", Value::Str("open_session".into())),
                            ("catalog", Value::Str("tpch:0.1".into())),
                            ("threads", Value::U64(4)),
                        ]))
                        .unwrap(),
                );
                assert_eq!(open.get("threads").and_then(|v| v.as_u64()), Some(4));
                let sid = open.get("session").and_then(|v| v.as_u64()).unwrap();
                expect_result(
                    &client
                        .roundtrip(&json_request(vec![
                            ("op", Value::Str("add_statements".into())),
                            ("session", Value::U64(sid)),
                            ("sql", Value::Str(text)),
                        ]))
                        .unwrap(),
                );
                let recommend_line = client
                    .roundtrip(&json_request(vec![
                        ("op", Value::Str("recommend".into())),
                        ("session", Value::U64(sid)),
                    ]))
                    .unwrap();
                expect_result(&recommend_line);
                expect_result(
                    &client
                        .roundtrip(&json_request(vec![
                            ("op", Value::Str("close_session".into())),
                            ("session", Value::U64(sid)),
                        ]))
                        .unwrap(),
                );
                recommend_line
            })
        })
        .collect();

    let lines: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();
    for line in &lines[1..] {
        assert_eq!(
            line, &lines[0],
            "multi-threaded recommendations diverged between sessions"
        );
    }

    // Every session closed and every worker idle: the gauges must be back
    // to zero (a poisoned registry/queue lock could not answer at all).
    let mut client = Client::connect(&addr).unwrap();
    let stats = expect_result(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    assert_eq!(stats.get("sessions_open").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(stats.get("queue_depth").and_then(|v| v.as_u64()), Some(0));

    // And the exposition endpoint still renders parseable Prometheus text.
    let metrics = expect_result(&client.roundtrip(r#"{"op":"metrics"}"#).unwrap());
    let body = metrics
        .get("text")
        .and_then(|v| v.as_str())
        .expect("metrics op returns exposition text");
    assert!(body.contains("dblayout_sessions_open 0\n"), "{body}");
    assert!(body.contains("dblayout_queue_depth 0\n"), "{body}");
    for line in body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (name, value) = line.rsplit_once(' ').expect("gauge lines are `name value`");
        assert!(name.starts_with("dblayout_"), "unexpected metric {line}");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable value in {line}"));
    }

    server.shutdown();
}

/// 1,000 sequential requests churning sessions and what-if costs leave the
/// session registry empty and the cost cache at (or under) its configured
/// bound — no unbounded growth in resident state.
#[test]
fn thousand_requests_keep_state_bounded() {
    const CACHE_CAP: usize = 16;
    let server = start(ServerConfig {
        threads: 2,
        cache_capacity: CACHE_CAP,
        idle_timeout: Duration::from_secs(120),
        ..Default::default()
    });
    let mut client = Client::connect(&server.addr().to_string()).unwrap();

    // 200 cycles × 5 requests = 1,000: open → add → whatif (miss) → whatif
    // (hit) → close. Every cycle opens a fresh session and abandons its
    // cache entries, so only eviction/invalidation keeps state bounded.
    for cycle in 0..200 {
        let open = expect_result(
            &client
                .roundtrip(r#"{"op":"open_session","catalog":"tpch:0.01"}"#)
                .unwrap(),
        );
        let sid = open.get("session").and_then(|v| v.as_u64()).unwrap();
        let add = expect_result(
            &client
                .roundtrip(&json_request(vec![
                    ("op", Value::Str("add_statements".into())),
                    ("session", Value::U64(sid)),
                    ("sql", Value::Str("SELECT COUNT(*) FROM lineitem;".into())),
                ]))
                .unwrap(),
        );
        assert_eq!(add.get("version").and_then(|v| v.as_u64()), Some(1));
        let miss = expect_result(
            &client
                .roundtrip(&format!(r#"{{"op":"whatif_cost","session":{sid}}}"#))
                .unwrap(),
        );
        assert_eq!(miss.get("cached").and_then(|v| v.as_bool()), Some(false));
        let hit = expect_result(
            &client
                .roundtrip(&format!(r#"{{"op":"whatif_cost","session":{sid}}}"#))
                .unwrap(),
        );
        assert_eq!(
            hit.get("cached").and_then(|v| v.as_bool()),
            Some(true),
            "cycle {cycle}"
        );
        expect_result(
            &client
                .roundtrip(&format!(r#"{{"op":"close_session","session":{sid}}}"#))
                .unwrap(),
        );
    }

    let stats = expect_result(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    assert!(
        stats
            .get("requests_total")
            .and_then(|v| v.as_u64())
            .unwrap()
            >= 1000
    );
    assert_eq!(stats.get("sessions_open").and_then(|v| v.as_u64()), Some(0));
    assert!(
        stats.get("cache_entries").and_then(|v| v.as_u64()).unwrap() <= CACHE_CAP as u64,
        "cache exceeded its bound: {stats:?}"
    );
    assert_eq!(
        stats.get("cache_hits").and_then(|v| v.as_u64()),
        Some(200),
        "every cycle's second what-if should hit"
    );

    server.shutdown();
}
