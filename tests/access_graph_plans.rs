//! Access-graph construction from real optimizer plans: the paper's §4
//! examples reproduced through the full parser → optimizer → Figure 6
//! pipeline.

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::access_graph::build_access_graph;
use dblayout_integration::{plan, plan_workload};
use dblayout_workloads::tpch22::tpch_query;

/// Paper Example 3's property: although TPC-H Q5 references six tables,
/// blocking operators cut the plan so that `lineitem` is co-accessed with
/// only its pipelined join partner(s), never with the dimension chain.
/// (The paper's SQL Server plan grouped `{lineitem, supplier}` apart from
/// `{nation, region, customer, orders}`; our optimizer merge-joins
/// `lineitem ⋈ orders` and hash-builds the rest — a different but equally
/// valid decomposition with the same structural property.)
#[test]
fn q5_access_graph_has_blocking_cuts() {
    let catalog = tpch_catalog(1.0);
    let plans = plan_workload(&catalog, &[&tpch_query(5)]);
    let g = build_access_graph(catalog.object_count(), &plans);

    let id = |n: &str| catalog.object_id(n).unwrap().index();
    let li = id("lineitem");
    // lineitem co-accesses its big pipelined partner...
    assert!(
        g.edge_weight(li, id("orders")) > 0.0 || g.edge_weight(li, id("supplier")) > 0.0,
        "lineitem must co-access a join partner"
    );
    // ...but never the dimension chain across the blocking cuts.
    assert_eq!(g.edge_weight(li, id("customer")), 0.0);
    assert_eq!(g.edge_weight(li, id("region")), 0.0);
    assert_eq!(g.edge_weight(li, id("nation")), 0.0);
    // Six referenced tables, yet the plan decomposes into several
    // non-blocking sub-plans — not one giant co-access clique.
    assert!(plans[0].0.subplans().len() >= 3);
}

/// Example 4's point: an index seek's table lookups contribute the blocks
/// *touched*, not the full table size.
#[test]
fn index_seek_contributes_touched_blocks_only() {
    let catalog = tpch_catalog(1.0);
    let plans = plan_workload(
        &catalog,
        &["SELECT l_quantity FROM lineitem WHERE l_shipdate = '1995-06-17'"],
    );
    let g = build_access_graph(catalog.object_count(), &plans);
    let li = catalog.object_id("lineitem").unwrap().index();
    let full = catalog.table("lineitem").unwrap().size_blocks() as f64;
    let touched = g.node_weight(li);
    assert!(
        touched > 0.0 && touched < full / 2.0,
        "touched {touched} vs full {full}"
    );
}

#[test]
fn q3_builds_lineitem_orders_edge() {
    let catalog = tpch_catalog(1.0);
    let plans = plan_workload(&catalog, &[&tpch_query(3)]);
    let g = build_access_graph(catalog.object_count(), &plans);
    let li = catalog.object_id("lineitem").unwrap().index();
    let or = catalog.object_id("orders").unwrap().index();
    assert!(g.edge_weight(li, or) > 0.0);
}

#[test]
fn node_weights_accumulate_across_statements() {
    let catalog = tpch_catalog(0.1);
    let q = "SELECT COUNT(*) FROM orders";
    let single = build_access_graph(catalog.object_count(), &plan_workload(&catalog, &[q]));
    let double = build_access_graph(catalog.object_count(), &plan_workload(&catalog, &[q, q]));
    let or = catalog.object_id("orders").unwrap().index();
    assert!((double.node_weight(or) - 2.0 * single.node_weight(or)).abs() < 1e-9);
}

#[test]
fn graph_covers_only_accessed_objects() {
    let catalog = tpch_catalog(0.1);
    let plans = plan_workload(&catalog, &["SELECT COUNT(*) FROM region"]);
    let g = build_access_graph(catalog.object_count(), &plans);
    let region = catalog.object_id("region").unwrap().index();
    for i in 0..catalog.object_count() {
        if i == region {
            assert!(g.node_weight(i) > 0.0);
        } else {
            assert_eq!(g.node_weight(i), 0.0, "object {i} untouched");
        }
    }
}

#[test]
fn self_join_has_no_self_edge_but_double_weight() {
    let catalog = tpch_catalog(0.1);
    let p = plan(
        &catalog,
        "SELECT COUNT(*) FROM lineitem l1, lineitem l2 WHERE l1.l_orderkey = l2.l_orderkey",
    );
    let g = build_access_graph(catalog.object_count(), &[(p, 1.0)]);
    let li = catalog.object_id("lineitem").unwrap().index();
    let full = catalog.table("lineitem").unwrap().size_blocks() as f64;
    assert!(g.node_weight(li) >= 2.0 * full * 0.9);
    assert_eq!(g.degree(li), 0, "no self-loop for self-joins");
}
