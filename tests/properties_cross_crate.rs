//! Property-based tests over the core invariants, driven by proptest.

use proptest::prelude::*;

use dblayout_catalog::ObjectId;
use dblayout_core::costmodel::CostModel;
use dblayout_disksim::{apportion, uniform_disks, AllocationMap, Layout};
use dblayout_partition::{max_cut_partition, Graph};
use dblayout_planner::{ObjectAccess, PhysicalPlan, PlanNode, Subplan};

fn scan(obj: u32, blocks: u64) -> PlanNode {
    PlanNode::TableScan {
        object: ObjectId(obj),
        name: format!("t{obj}"),
        blocks,
        rows: blocks as f64,
    }
}

proptest! {
    /// Largest-remainder apportionment always conserves the total.
    #[test]
    fn apportion_conserves_total(
        size in 0u64..100_000,
        weights in proptest::collection::vec(0.0f64..100.0, 1..10),
    ) {
        let shares = apportion(size, &weights);
        prop_assert_eq!(shares.len(), weights.len());
        if weights.iter().sum::<f64>() > 0.0 {
            prop_assert_eq!(shares.iter().sum::<u64>(), size);
        } else {
            prop_assert!(shares.iter().all(|&s| s == 0));
        }
    }

    /// Every layout built via place() is valid and maps every block of
    /// every object to exactly one disk address, with no two objects
    /// sharing an address on a disk.
    #[test]
    fn allocation_is_injective(
        sizes in proptest::collection::vec(1u64..500, 1..6),
        split in 1usize..4,
    ) {
        let m = 4usize;
        let disks = uniform_disks(m, 1_000_000, 10.0, 20.0);
        let mut layout = Layout::empty(sizes.clone(), m);
        for (i, _) in sizes.iter().enumerate() {
            let set: Vec<usize> = (0..((i % split) + 1)).map(|j| (i + j) % m).collect();
            layout.place_proportional(i, &set, &disks);
        }
        prop_assert!(layout.validate(&disks).is_ok());
        let alloc = AllocationMap::build(&layout);
        let mut seen = std::collections::HashSet::new();
        for (i, &size) in sizes.iter().enumerate() {
            for k in 0..size {
                let loc = alloc.locate(i, k);
                prop_assert!(seen.insert((loc.disk, loc.addr)), "address reused");
            }
        }
    }

    /// Figure-7 cost is monotone: removing a disk from a lone object's
    /// placement never decreases a scan's cost (less parallelism).
    #[test]
    fn narrower_placement_never_cheaper(width in 2usize..8) {
        let m = 8usize;
        let disks = uniform_disks(m, 100_000, 10.0, 20.0);
        let blocks = 4000u64;
        let plan = PhysicalPlan::new(scan(0, blocks));
        let plans = [(plan, 1.0f64)];
        let model = CostModel::default();
        let mut wide = Layout::empty(vec![blocks], m);
        wide.place_proportional(0, &(0..width).collect::<Vec<_>>(), &disks);
        let mut narrow = Layout::empty(vec![blocks], m);
        narrow.place_proportional(0, &(0..width - 1).collect::<Vec<_>>(), &disks);
        let cw = model.workload_cost(&plans, &wide, &disks);
        let cn = model.workload_cost(&plans, &narrow, &disks);
        prop_assert!(cn >= cw - 1e-9, "narrow {cn} < wide {cw}");
    }

    /// The cost model is insensitive to where *untouched* objects live.
    #[test]
    fn untouched_objects_do_not_affect_cost(shift in 0usize..4) {
        let m = 4usize;
        let disks = uniform_disks(m, 100_000, 10.0, 20.0);
        let sizes = vec![1000u64, 800];
        let plan = PhysicalPlan::new(scan(0, 1000));
        let plans = [(plan, 1.0f64)];
        let model = CostModel::default();
        let mut a = Layout::full_striping(sizes.clone(), &disks);
        let mut b = Layout::full_striping(sizes, &disks);
        a.place_proportional(1, &[shift % m], &disks);
        b.place_proportional(1, &[(shift + 1) % m], &disks);
        let ca = model.workload_cost(&plans, &a, &disks);
        let cb = model.workload_cost(&plans, &b, &disks);
        prop_assert!((ca - cb).abs() < 1e-9);
    }

    /// Max-cut refinement output always labels within range, and its cut is
    /// at least half the total edge weight on bipartitions (the classic
    /// greedy max-cut guarantee).
    #[test]
    fn bipartition_cut_at_least_half(
        edges in proptest::collection::vec((0usize..8, 0usize..8, 1.0f64..50.0), 1..20),
    ) {
        let mut g = Graph::new(8);
        for (u, v, w) in edges {
            if u != v {
                g.add_edge(u, v, w);
            }
        }
        let assignment = max_cut_partition(&g, 2);
        prop_assert!(assignment.iter().all(|&p| p < 2));
        prop_assert!(g.cut_weight(&assignment) >= g.total_edge_weight() / 2.0 - 1e-9);
    }

    /// dblayout-par: after a random single-object move on a randomized
    /// fractional layout, the incremental delta evaluator's total equals a
    /// full Figure-7 re-evaluation within 0 ULPs (`total_cmp` equality) —
    /// the identity that lets the parallel search swap engines freely.
    #[test]
    fn incremental_delta_matches_full_reevaluation_to_the_bit(
        base_w in proptest::collection::vec(proptest::collection::vec(0.1f64..10.0, 4..5), 3..4),
        move_w in proptest::collection::vec(0.1f64..10.0, 4..5),
        moved in 0usize..3,
    ) {
        use dblayout_planner::AccessKind;
        let disks = uniform_disks(4, 100_000, 10.0, 20.0);
        let sizes = vec![900u64, 600, 300];
        let model = CostModel::default();
        // A join reading objects 0 and 1, plus a scan of object 2, so the
        // move either touches a multi-access sub-plan or leaves one alone.
        let mut join = Subplan::default();
        for (obj, blocks) in [(0u32, 900u64), (1, 600)] {
            join.add(ObjectAccess {
                object: ObjectId(obj),
                blocks,
                rows: 1.0,
                kind: AccessKind::SequentialRead,
            });
        }
        let mut scan2 = Subplan::default();
        scan2.add(ObjectAccess {
            object: ObjectId(2),
            blocks: 300,
            rows: 1.0,
            kind: AccessKind::SequentialRead,
        });
        let workload = vec![(vec![join], 3.0), (vec![scan2], 1.0)];

        let mut base = Layout::empty(sizes, 4);
        for (i, w) in base_w.iter().enumerate() {
            let weights: Vec<(usize, f64)> = w.iter().copied().enumerate().collect();
            base.place(i, &weights);
        }
        let eval = model.delta_evaluator(&workload, &base, &disks);
        let base_full = model.workload_cost_subplans(&workload, &base, &disks);
        prop_assert_eq!(eval.total().total_cmp(&base_full), std::cmp::Ordering::Equal);

        let mut trial = base.clone();
        let weights: Vec<(usize, f64)> = move_w.iter().copied().enumerate().collect();
        trial.place(moved, &weights);
        let delta = eval.evaluate_move(&trial, &[moved]);
        let full = model.workload_cost_subplans(&workload, &trial, &disks);
        prop_assert!(
            delta.total.total_cmp(&full) == std::cmp::Ordering::Equal,
            "incremental {} != full {}", delta.total, full
        );
    }

    /// Sub-plan cost is superadditive in accesses: adding a co-accessed
    /// object to a sub-plan never lowers the bottleneck cost.
    #[test]
    fn adding_coaccess_never_cheaper(extra_blocks in 1u64..2000) {
        let m = 4usize;
        let disks = uniform_disks(m, 100_000, 10.0, 20.0);
        let sizes = vec![2000u64, 2000];
        let layout = Layout::full_striping(sizes, &disks);
        let model = CostModel::default();
        let mut small = Subplan::default();
        small.add(ObjectAccess {
            object: ObjectId(0),
            blocks: 2000,
            rows: 1.0,
            kind: dblayout_planner::AccessKind::SequentialRead,
        });
        let mut big = small.clone();
        big.add(ObjectAccess {
            object: ObjectId(1),
            blocks: extra_blocks,
            rows: 1.0,
            kind: dblayout_planner::AccessKind::SequentialRead,
        });
        let cs = model.subplan_cost(&small, &layout, &disks);
        let cb = model.subplan_cost(&big, &layout, &disks);
        prop_assert!(cb >= cs - 1e-9);
    }
}
