//! Planner matrix: {2 disk configurations} × {zero, binding, unbounded
//! budget}. Every plan must replay feasibly step by step (each intermediate
//! a valid Definition-2 layout within drive capacities, shadow copies never
//! exceeding scratch), the recommended cost must be monotone in the budget,
//! and a zero budget must produce the identity plan.

use dblayout_catalog::resolve_catalog;
use dblayout_core::costmodel::{decompose_workload, CostModel};
use dblayout_core::{extend_access_graph, Layout};
use dblayout_disksim::{paper_disks, DiskSpec};
use dblayout_integration::{plan_workload, sizes};
use dblayout_partition::Graph;
use dblayout_relayout::{plan_migration, recommend_budgeted, BudgetConfig, MigrationPlan};
use dblayout_server::resolve_disks;

const WORKLOAD: &[&str] = &[
    "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey",
    "SELECT SUM(l_extendedprice) FROM lineitem, orders WHERE l_orderkey = o_orderkey",
    "SELECT COUNT(*) FROM partsupp, part WHERE ps_partkey = p_partkey",
    "SELECT COUNT(*) FROM customer, orders WHERE c_custkey = o_custkey",
];

struct Fixture {
    sizes: Vec<u64>,
    graph: Graph,
    workload: Vec<(Vec<dblayout_planner::Subplan>, f64)>,
}

fn fixture() -> Fixture {
    let catalog = resolve_catalog("tpch:0.1").expect("tpch catalog");
    let plans = plan_workload(&catalog, WORKLOAD);
    let mut graph = Graph::new(catalog.objects().len());
    extend_access_graph(&mut graph, &plans);
    Fixture {
        sizes: sizes(&catalog),
        graph,
        workload: decompose_workload(&plans),
    }
}

fn disk_configs() -> Vec<(&'static str, Vec<DiskSpec>)> {
    vec![
        ("paper-8", paper_disks()),
        (
            "uniform-4",
            resolve_disks("uniform:4:200000:9.0:20.0").expect("uniform disks"),
        ),
    ]
}

/// Replays the plan against the drive set: applies steps in order, checks
/// that every intermediate is a valid layout, that shadow-copy steps have
/// the scratch headroom they claim, and that the totals add up.
fn replay(plan: &MigrationPlan, current: &Layout, target: &Layout, disks: &[DiskSpec], tag: &str) {
    let caps: Vec<u64> = disks.iter().map(|d| d.capacity_blocks).collect();
    let mut work = current.clone();
    let mut summed_moves = 0u64;
    for step in &plan.steps {
        let old = work.blocks_on(step.object);
        let new = target.blocks_on(step.object);
        let usage = work.disk_usage();
        if !step.direct {
            for j in 0..disks.len() {
                assert!(
                    usage[j] + new[j] <= caps[j],
                    "{tag}: step {} claims copy mode without scratch on drive {j}",
                    step.seq
                );
            }
        }
        let moved: u64 = (0..disks.len())
            .map(|j| new[j].saturating_sub(old[j]))
            .sum();
        assert_eq!(
            moved, step.moved_blocks,
            "{tag}: step {} movement",
            step.seq
        );
        summed_moves += moved;

        let row: Vec<(usize, f64)> = (0..disks.len())
            .map(|j| (j, target.fraction(step.object, j)))
            .filter(|&(_, f)| f > 0.0)
            .collect();
        work.place(step.object, &row);
        work.validate(disks)
            .unwrap_or_else(|e| panic!("{tag}: intermediate after step {} invalid: {e}", step.seq));
    }
    assert_eq!(summed_moves, plan.total_moved_blocks, "{tag}: plan totals");
    assert_eq!(
        plan.total_moved_blocks,
        target.data_movement_from(current),
        "{tag}: plan total must equal the §2.3.1 distance"
    );
    // After all steps the working layout is the target, bit for bit.
    for i in 0..target.object_count() {
        for j in 0..disks.len() {
            assert_eq!(
                work.fraction(i, j).to_bits(),
                target.fraction(i, j).to_bits(),
                "{tag}: replay did not land on the target"
            );
        }
    }
    // The degradation ceiling covers the start and every intermediate.
    let floor = plan
        .steps
        .iter()
        .map(|s| s.intermediate_cost_ms)
        .fold(plan.start_cost_ms, f64::max);
    assert!(
        plan.worst_intermediate_cost_ms >= floor - 1e-9,
        "{tag}: worst_intermediate_cost_ms below an observed intermediate"
    );
}

#[test]
fn planner_matrix_is_feasible_monotone_and_identity_at_zero() {
    let fx = fixture();
    for (tag, disks) in disk_configs() {
        let current = Layout::full_striping(fx.sizes.clone(), &disks);

        // Unbounded first: its movement defines the binding mid budget.
        let unbounded = recommend_budgeted(
            &fx.sizes,
            &fx.graph,
            &fx.workload,
            &disks,
            &current,
            &BudgetConfig::default(),
        )
        .expect("unbounded search");
        assert!(
            unbounded.moved_blocks > 0,
            "{tag}: the workload must warrant some movement for this matrix to bite"
        );
        let budgets = [Some(0u64), Some(unbounded.moved_blocks / 2), None];

        let mut prev_cost = f64::INFINITY;
        for budget in budgets {
            let cfg = BudgetConfig {
                budget_blocks: budget,
                ..Default::default()
            };
            let outcome =
                recommend_budgeted(&fx.sizes, &fx.graph, &fx.workload, &disks, &current, &cfg)
                    .expect("budgeted search");
            let label = format!("{tag}/budget={budget:?}");

            // Never worse than staying put, and within the budget.
            assert!(
                outcome.new_cost_ms <= outcome.current_cost_ms + 1e-9,
                "{label}"
            );
            if let Some(b) = budget {
                assert!(outcome.moved_blocks <= b, "{label}: budget exceeded");
            }
            // Monotone: a larger budget never costs more.
            assert!(
                outcome.new_cost_ms <= prev_cost + 1e-9,
                "{label}: not monotone"
            );
            prev_cost = outcome.new_cost_ms;

            let plan = plan_migration(
                &current,
                &outcome.layout,
                &disks,
                &fx.workload,
                &CostModel::default(),
            )
            .unwrap_or_else(|e| panic!("{label}: planning failed: {e}"));

            if budget == Some(0) {
                assert!(
                    plan.steps.is_empty(),
                    "{label}: zero budget must be identity"
                );
                assert_eq!(plan.total_moved_blocks, 0, "{label}");
            }
            replay(&plan, &current, &outcome.layout, &disks, &label);
        }
    }
}
