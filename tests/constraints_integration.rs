//! Constraints through the full advisor: §2.3's manageability and
//! availability requirements end to end.

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig, AdvisorError};
use dblayout_core::constraints::Constraints;
use dblayout_core::tsgreedy::TsGreedyConfig;
use dblayout_disksim::{paper_disks, Availability, Layout};
use dblayout_integration::sizes;

const WORKLOAD: &str = "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;\n\
     SELECT COUNT(*) FROM partsupp, part WHERE ps_partkey = p_partkey;";

fn config_with(constraints: Constraints) -> AdvisorConfig {
    AdvisorConfig {
        search: TsGreedyConfig {
            constraints,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn co_location_respected_and_costs_something() {
    let catalog = tpch_catalog(0.2);
    let disks = paper_disks();
    let advisor = Advisor::new(&catalog, &disks);
    let li = catalog.object_id("lineitem").unwrap();
    let or = catalog.object_id("orders").unwrap();

    let free = advisor
        .recommend_sql(WORKLOAD, &AdvisorConfig::default())
        .unwrap();
    // Forcing the hottest co-accessed pair into one filegroup…
    let constrained = advisor
        .recommend_sql(
            WORKLOAD,
            &config_with(Constraints::none().co_locate(li, or)),
        )
        .unwrap();

    assert_eq!(
        constrained.layout.disks_of(li.index()),
        constrained.layout.disks_of(or.index())
    );
    // …can only hurt (or tie) the objective.
    assert!(constrained.recommended_cost_ms >= free.recommended_cost_ms - 1e-6);
}

#[test]
fn availability_restricts_and_infeasibility_reported() {
    let catalog = tpch_catalog(0.2);
    let mut disks = paper_disks();
    disks[6].avail = Availability::Mirroring;
    disks[7].avail = Availability::Mirroring;
    let advisor = Advisor::new(&catalog, &disks);
    let cust = catalog.object_id("customer").unwrap();

    let rec = advisor
        .recommend_sql(
            WORKLOAD,
            &config_with(Constraints::none().require_avail(cust, Availability::Mirroring)),
        )
        .unwrap();
    for j in rec.layout.disks_of(cust.index()) {
        assert_eq!(disks[j].avail, Availability::Mirroring);
    }

    // No parity disk exists: infeasible.
    let err = advisor
        .recommend_sql(
            WORKLOAD,
            &config_with(Constraints::none().require_avail(cust, Availability::Parity)),
        )
        .unwrap_err();
    assert!(matches!(err, AdvisorError::Search(_)), "{err}");
}

#[test]
fn movement_bound_keeps_layout_near_current() {
    let catalog = tpch_catalog(0.2);
    let disks = paper_disks();
    let advisor = Advisor::new(&catalog, &disks);
    let current = Layout::full_striping(sizes(&catalog), &disks);

    // A generous bound allows real movement; the result must stay within it.
    let bound = 20_000u64;
    let rec = advisor
        .recommend_sql(
            WORKLOAD,
            &config_with(Constraints::none().bound_movement(current.clone(), bound)),
        )
        .unwrap();
    let moved = rec.layout.data_movement_from(&current);
    assert!(moved <= bound, "moved {moved} > bound {bound}");
}

#[test]
fn zero_movement_bound_recommends_current_layout() {
    let catalog = tpch_catalog(0.2);
    let disks = paper_disks();
    let advisor = Advisor::new(&catalog, &disks);
    let current = Layout::full_striping(sizes(&catalog), &disks);
    let rec = advisor
        .recommend_sql(
            WORKLOAD,
            &config_with(Constraints::none().bound_movement(current.clone(), 0)),
        )
        .unwrap();
    // With zero movement allowed, the only reachable valid layout is the
    // current one (the advisor falls back to FULL STRIPING = current).
    assert_eq!(rec.layout.data_movement_from(&current), 0);
    assert!(rec.estimated_improvement_pct.abs() < 1e-9);
}
