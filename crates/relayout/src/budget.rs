//! Movement-budgeted advising: "improve cost ≥ X% while moving ≤ Y MB".
//!
//! A live system cannot jump to the advisor's ideal layout when getting
//! there means relocating half the database. The budgeted recommender
//! instead answers: *given the deployed layout, what is the best layout
//! reachable within a relocation budget?* Three candidates compete, and
//! the cheapest wins:
//!
//! 1. **identity** — stay put (always admissible, so the answer is never
//!    worse than the deployed layout);
//! 2. **seeded search** — TS-GREEDY started *from* the deployed layout
//!    (`TsGreedyConfig::seed`) under the paper's §2.3.1 data-movement
//!    bound, so every adopted widen/narrow/swap move keeps cumulative
//!    relocation within budget;
//! 3. **the unconstrained ideal** — the ordinary two-step search, admitted
//!    only when its distance from the deployed layout happens to fit the
//!    budget (cheap to check, and exactly right when drift is mild).
//!
//! A zero budget degenerates to the identity (every relocation writes at
//! least one block); an absent budget makes the ideal always admissible.
//! Results inherit the `dblayout-par` determinism contract: byte-identical
//! at any thread count.

use dblayout_catalog::BLOCK_BYTES;
use dblayout_disksim::{DiskSpec, Layout};
use dblayout_obs::counters::{self, Counter};
use dblayout_partition::Graph;
use dblayout_planner::Subplan;
use serde_json::Value;

use dblayout_core::tsgreedy::{ts_greedy, SearchError, TsGreedyConfig};

/// Budgeted-advising configuration.
#[derive(Debug, Clone, Default)]
pub struct BudgetConfig {
    /// Maximum blocks the recommendation may relocate from the deployed
    /// layout (`Layout::data_movement_from`); `None` means unbounded.
    pub budget_blocks: Option<u64>,
    /// The improvement (percent of deployed cost) the caller asked for;
    /// reported back as [`BudgetedOutcome::meets_improvement`].
    pub min_improvement_pct: f64,
    /// Search settings shared by both the seeded and the ideal run
    /// (`k`, threads, cost model, collector, extra constraints). The
    /// `seed` and movement bound are filled in per run.
    pub search: TsGreedyConfig,
}

/// Which candidate won the budgeted comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetStrategy {
    /// The deployed layout already wins: no admissible move improves it.
    Identity,
    /// The movement-bounded search seeded from the deployed layout.
    Seeded,
    /// The unconstrained ideal, which happened to fit the budget.
    Ideal,
}

impl BudgetStrategy {
    /// Stable snake_case name for artifacts and wire responses.
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetStrategy::Identity => "identity",
            BudgetStrategy::Seeded => "seeded_search",
            BudgetStrategy::Ideal => "ideal_fits_budget",
        }
    }
}

/// Outcome of a budgeted recommendation.
#[derive(Debug, Clone)]
pub struct BudgetedOutcome {
    /// The winning layout (the deployed layout itself under
    /// [`BudgetStrategy::Identity`]).
    pub layout: Layout,
    /// Workload cost of the deployed layout (ms).
    pub current_cost_ms: f64,
    /// Workload cost of the winning layout (ms).
    pub new_cost_ms: f64,
    /// `100 · (current − new) / current`.
    pub improvement_pct: f64,
    /// Blocks the winning layout relocates from the deployed one.
    pub moved_blocks: u64,
    /// The same relocation volume in bytes (64 KB blocks).
    pub moved_bytes: u64,
    /// The budget the search ran under, echoed for artifacts.
    pub budget_blocks: Option<u64>,
    /// Whether `improvement_pct` reached the requested threshold.
    pub meets_improvement: bool,
    /// Which candidate won.
    pub strategy: BudgetStrategy,
    /// Greedy iterations of the winning search run (0 for identity).
    pub iterations: usize,
    /// Cost-model invocations across both search runs.
    pub cost_evaluations: usize,
}

impl BudgetedOutcome {
    /// Machine-readable rendering (without the layout matrix; callers that
    /// need fractions read [`BudgetedOutcome::layout`] directly).
    pub fn to_json(&self) -> Value {
        let budget = match self.budget_blocks {
            Some(b) => Value::U64(b),
            None => Value::Null,
        };
        Value::Map(vec![
            ("current_cost_ms".into(), Value::F64(self.current_cost_ms)),
            ("new_cost_ms".into(), Value::F64(self.new_cost_ms)),
            ("improvement_pct".into(), Value::F64(self.improvement_pct)),
            ("moved_blocks".into(), Value::U64(self.moved_blocks)),
            ("moved_bytes".into(), Value::U64(self.moved_bytes)),
            ("budget_blocks".into(), budget),
            (
                "meets_improvement".into(),
                Value::Bool(self.meets_improvement),
            ),
            (
                "strategy".into(),
                Value::Str(self.strategy.as_str().to_string()),
            ),
            ("iterations".into(), Value::U64(self.iterations as u64)),
            (
                "cost_evaluations".into(),
                Value::U64(self.cost_evaluations as u64),
            ),
        ])
    }
}

/// Recommends the best layout reachable from `current` within the
/// relocation budget. See the module docs for the candidate set.
///
/// `sizes`/`graph`/`workload` are the advisor's usual prepared inputs
/// (object sizes in blocks, access graph, decomposed weighted sub-plans).
///
/// # Errors
/// [`SearchError::Infeasible`] when `current` is not a valid layout for
/// `disks` or the configured constraints admit no placement.
pub fn recommend_budgeted(
    sizes: &[u64],
    graph: &Graph,
    workload: &[(Vec<Subplan>, f64)],
    disks: &[DiskSpec],
    current: &Layout,
    cfg: &BudgetConfig,
) -> Result<BudgetedOutcome, SearchError> {
    if let Err(e) = current.validate(disks) {
        return Err(SearchError::Infeasible(format!(
            "deployed layout is invalid: {e}"
        )));
    }
    let model = &cfg.search.cost_model;
    counters::incr(Counter::CostmodelFullRecosts);
    let current_cost = model.workload_cost_subplans(workload, current, disks);

    // Candidate 2: seeded, movement-bounded search from the deployed layout.
    let mut seeded_cfg = cfg.search.clone();
    seeded_cfg.seed = Some(current.clone());
    if let Some(b) = cfg.budget_blocks {
        seeded_cfg.constraints = seeded_cfg.constraints.bound_movement(current.clone(), b);
    }
    let seeded = ts_greedy(sizes, graph, workload, disks, &seeded_cfg)?;

    // Candidate 3: the unconstrained ideal, admissible only when it fits.
    let ideal = ts_greedy(sizes, graph, workload, disks, &cfg.search)?;
    let ideal_fits = ideal.layout.validate(disks).is_ok()
        && cfg
            .budget_blocks
            .is_none_or(|b| ideal.layout.data_movement_from(current) <= b);

    let mut layout = current.clone();
    let mut new_cost = current_cost;
    let mut strategy = BudgetStrategy::Identity;
    let mut iterations = 0usize;
    if seeded.final_cost < new_cost - 1e-9 {
        layout = seeded.layout.clone();
        new_cost = seeded.final_cost;
        strategy = BudgetStrategy::Seeded;
        iterations = seeded.iterations;
    }
    if ideal_fits && ideal.final_cost < new_cost - 1e-9 {
        layout = ideal.layout.clone();
        new_cost = ideal.final_cost;
        strategy = BudgetStrategy::Ideal;
        iterations = ideal.iterations;
    }

    let moved_blocks = layout.data_movement_from(current);
    let improvement_pct = if current_cost > 0.0 {
        100.0 * (current_cost - new_cost) / current_cost
    } else {
        0.0
    };
    Ok(BudgetedOutcome {
        layout,
        current_cost_ms: current_cost,
        new_cost_ms: new_cost,
        improvement_pct,
        moved_blocks,
        moved_bytes: moved_blocks * BLOCK_BYTES,
        budget_blocks: cfg.budget_blocks,
        meets_improvement: improvement_pct + 1e-9 >= cfg.min_improvement_pct,
        strategy,
        iterations,
        cost_evaluations: seeded.cost_evaluations + ideal.cost_evaluations + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::ObjectId;
    use dblayout_core::access_graph::build_access_graph;
    use dblayout_core::costmodel::decompose_workload;
    use dblayout_disksim::uniform_disks;
    use dblayout_planner::{PhysicalPlan, PlanNode};

    fn scan(obj: u32, blocks: u64) -> PlanNode {
        PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64,
        }
    }

    fn join(a: u32, ab: u64, b: u32, bb: u64) -> PhysicalPlan {
        PhysicalPlan::new(PlanNode::MergeJoin {
            on: "k".into(),
            rows: 1.0,
            left: Box::new(scan(a, ab)),
            right: Box::new(scan(b, bb)),
        })
    }

    /// Co-accessed pair on shared disks: separating them improves cost,
    /// but only when the budget allows relocation.
    #[allow(clippy::type_complexity)]
    fn fixture() -> (
        Vec<u64>,
        Graph,
        Vec<(Vec<Subplan>, f64)>,
        Vec<DiskSpec>,
        Layout,
    ) {
        let disks = uniform_disks(4, 100_000, 10.0, 20.0);
        let sizes = vec![400u64, 200];
        let plans = vec![(join(0, 400, 1, 200), 1.0)];
        let graph = build_access_graph(2, &plans);
        let workload = decompose_workload(&plans);
        let current = Layout::full_striping(sizes.clone(), &disks);
        (sizes, graph, workload, disks, current)
    }

    #[test]
    fn zero_budget_returns_identity() {
        let (sizes, graph, workload, disks, current) = fixture();
        let cfg = BudgetConfig {
            budget_blocks: Some(0),
            ..Default::default()
        };
        let out = recommend_budgeted(&sizes, &graph, &workload, &disks, &current, &cfg).unwrap();
        assert_eq!(out.strategy, BudgetStrategy::Identity);
        assert_eq!(out.moved_blocks, 0);
        assert_eq!(out.new_cost_ms.to_bits(), out.current_cost_ms.to_bits());
    }

    #[test]
    fn unbounded_budget_reaches_the_ideal() {
        let (sizes, graph, workload, disks, current) = fixture();
        let cfg = BudgetConfig::default();
        let out = recommend_budgeted(&sizes, &graph, &workload, &disks, &current, &cfg).unwrap();
        assert!(out.improvement_pct > 5.0, "got {}", out.improvement_pct);
        assert!(out.moved_blocks > 0);
        assert_eq!(out.moved_bytes, out.moved_blocks * BLOCK_BYTES);
        // The winner separates the co-accessed pair.
        let d0 = out.layout.disks_of(0);
        let d1 = out.layout.disks_of(1);
        assert!(d0.iter().all(|j| !d1.contains(j)), "{d0:?} vs {d1:?}");
    }

    #[test]
    fn cost_is_monotone_in_budget() {
        let (sizes, graph, workload, disks, current) = fixture();
        let budgets = [Some(0u64), Some(150), Some(400), None];
        let mut last = f64::INFINITY;
        for b in budgets {
            let cfg = BudgetConfig {
                budget_blocks: b,
                ..Default::default()
            };
            let out =
                recommend_budgeted(&sizes, &graph, &workload, &disks, &current, &cfg).unwrap();
            assert!(
                out.new_cost_ms <= last + 1e-9,
                "budget {b:?} regressed: {} > {last}",
                out.new_cost_ms
            );
            if let Some(b) = b {
                assert!(out.moved_blocks <= b, "budget {b} exceeded");
            }
            last = out.new_cost_ms;
        }
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let (sizes, graph, workload, disks, current) = fixture();
        let at = |threads: usize| {
            let cfg = BudgetConfig {
                budget_blocks: Some(500),
                search: TsGreedyConfig {
                    threads,
                    ..Default::default()
                },
                ..Default::default()
            };
            recommend_budgeted(&sizes, &graph, &workload, &disks, &current, &cfg).unwrap()
        };
        let reference = at(1);
        for threads in [2usize, 4, 8] {
            let out = at(threads);
            assert_eq!(out.new_cost_ms.to_bits(), reference.new_cost_ms.to_bits());
            assert_eq!(out.moved_blocks, reference.moved_blocks);
            for i in 0..out.layout.object_count() {
                for j in 0..out.layout.disk_count() {
                    assert_eq!(
                        out.layout.fraction(i, j).to_bits(),
                        reference.layout.fraction(i, j).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_current_layout_rejected() {
        let (sizes, graph, workload, disks, _) = fixture();
        let bad = Layout::empty(sizes.clone(), disks.len());
        assert!(matches!(
            recommend_budgeted(
                &sizes,
                &graph,
                &workload,
                &disks,
                &bad,
                &BudgetConfig::default()
            ),
            Err(SearchError::Infeasible(_))
        ));
    }
}
