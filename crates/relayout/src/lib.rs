#![warn(missing_docs)]

//! `dblayout-relayout` — continuous relayout for a live advisor.
//!
//! The paper's advisor is one-shot: analyze a workload, recommend a layout,
//! done. A long-running system needs three more pieces, and this crate
//! supplies them (ROADMAP item 2; see DESIGN.md §9):
//!
//! * [`decay`] — **windowed access-graph maintenance**: epoch-bucketed,
//!   exponentially decayed node/edge weights so old observations fade while
//!   new statements keep folding in at full weight. Decay 1.0 is
//!   *bit-identical* to the plain accumulating
//!   [`extend_access_graph`](dblayout_core::extend_access_graph) path.
//! * [`drift`] — a **drift detector** comparing the decayed graph against
//!   the graph the deployed layout was advised on (normalized edge-weight
//!   distance + top-k co-access rank churn), firing a typed
//!   [`DriftReport`](drift::DriftReport).
//! * [`budget`] — **movement-budgeted advising**: "improve cost ≥ X% while
//!   moving ≤ Y MB", reusing the seeded TS-GREEDY search and the paper's
//!   §2.3.1 incremental data-movement constraint.
//! * [`planner`] — a **migration planner** turning (current, target) into
//!   an ordered sequence of per-object block moves with per-step free-space
//!   feasibility, pricing each step and every degraded intermediate layout
//!   through `dblayout-disksim`'s drive model.
//!
//! Everything here is deterministic at any thread count (the budgeted
//! search inherits the `dblayout-par` contract) and panic-free outside
//! tests (lint zone R1 covers this crate).

pub mod budget;
pub mod decay;
pub mod drift;
pub mod planner;

pub use budget::{recommend_budgeted, BudgetConfig, BudgetStrategy, BudgetedOutcome};
pub use decay::{advance_epoch, graph_bytes, DecayedGraph};
pub use drift::{detect_drift, DriftConfig, DriftReport};
pub use planner::{plan_migration, MigrationPlan, PlanError, PlanStep};
