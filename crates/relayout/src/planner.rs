//! The migration planner: (current, target) → ordered per-object moves.
//!
//! Relocating a database object is not instantaneous: blocks must be read
//! off their old drives and written to their new ones while the rest of
//! the database stays online. The planner sequences one object at a time
//! and guarantees, at *every* step, that the intermediate layout is
//! Definition-2 valid — never over any drive's capacity:
//!
//! * **copy-then-delete** (preferred): the object's *entire* new
//!   placement is written to fresh space while the complete old copy
//!   stays on disk as a back-out, so the peak usage during the step is
//!   `usage[j] + new[j]` on every destination drive. Needs full
//!   shadow-copy scratch headroom.
//! * **direct** (fallback): blocks are relocated in place — old block
//!   locations are released as their replacements land — so only the
//!   post-step usage `usage[j] − old[j] + new[j]` must fit. Used when
//!   shadow headroom is gone; flagged in the plan so operators know the
//!   step has no back-out copy.
//!
//! Step order is a greedy space heuristic: among feasible objects, move
//! the one that frees the most blocks first (ties: lowest object id), so
//! later, tighter moves inherit the headroom. If neither mode admits any
//! pending object the planner reports [`PlanError::Stuck`] rather than
//! emit an infeasible step.
//!
//! Each step is priced with the `dblayout-disksim` drive model — reads
//! and writes proceed in parallel across drives, so the step time is the
//! slowest source read plus the slowest destination write. Copy steps
//! read the whole old copy and write the whole new placement (the shadow
//! copy rewrites even blocks that stay put); direct steps touch only the
//! relocated delta. Independent of mode, `moved_blocks` counts the §2.3.1
//! relocation volume `Σ_j max(0, new_j − old_j)` so plan totals line up
//! with the movement-budget accounting. Additionally, every
//! intermediate layout's workload cost is recorded, making the degraded
//! service during migration part of the artifact.

use dblayout_catalog::BLOCK_BYTES;
use dblayout_core::costmodel::CostModel;
use dblayout_disksim::{DiskSpec, Layout};
use dblayout_obs::counters::{self, Counter};
use dblayout_planner::Subplan;
use serde_json::Value;

/// Why a migration could not be planned.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The endpoints disagree with each other or with the drive set.
    Mismatch(String),
    /// An endpoint is not a valid layout for the drives.
    InvalidEndpoint(String),
    /// No pending object can move in either mode — the drives lack the
    /// free space to stage any remaining relocation.
    Stuck {
        /// Objects still waiting to move when the planner wedged.
        remaining: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Mismatch(why) => write!(f, "migration endpoints mismatch: {why}"),
            PlanError::InvalidEndpoint(why) => write!(f, "invalid migration endpoint: {why}"),
            PlanError::Stuck { remaining } => write!(
                f,
                "no feasible next step: {remaining} object(s) cannot be staged \
                 within the drives' free space"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// One planned relocation: move `object` from its current drives to its
/// target drives.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// 0-based execution order.
    pub seq: usize,
    /// The object being moved.
    pub object: usize,
    /// Drives holding the object before this step.
    pub from_disks: Vec<usize>,
    /// Drives holding the object after this step.
    pub to_disks: Vec<usize>,
    /// Blocks relocated by this step: `Σ_j max(0, new_j − old_j)`, the
    /// §2.3.1 data-movement metric (mode-independent).
    pub moved_blocks: u64,
    /// Estimated step duration: slowest source read + slowest destination
    /// write, each `seek + blocks · per-block transfer` (disksim model).
    /// Copy steps price the full shadow copy; direct steps only the delta.
    pub step_ms: f64,
    /// Workload cost of the intermediate layout after this step (ms).
    pub intermediate_cost_ms: f64,
    /// `true` when the step runs in direct (no scratch copy) mode.
    pub direct: bool,
}

impl PlanStep {
    fn to_json(&self) -> Value {
        Value::Map(vec![
            ("seq".into(), Value::U64(self.seq as u64)),
            ("object".into(), Value::U64(self.object as u64)),
            ("from_disks".into(), id_seq(&self.from_disks)),
            ("to_disks".into(), id_seq(&self.to_disks)),
            ("moved_blocks".into(), Value::U64(self.moved_blocks)),
            ("step_ms".into(), Value::F64(self.step_ms)),
            (
                "intermediate_cost_ms".into(),
                Value::F64(self.intermediate_cost_ms),
            ),
            ("direct".into(), Value::Bool(self.direct)),
        ])
    }
}

fn id_seq(ids: &[usize]) -> Value {
    Value::Seq(ids.iter().map(|&j| Value::U64(j as u64)).collect())
}

/// A complete, feasibility-checked migration plan.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    /// Ordered steps; empty when current and target are bit-identical.
    pub steps: Vec<PlanStep>,
    /// Total blocks written to new locations across all steps.
    pub total_moved_blocks: u64,
    /// The same volume in bytes (64 KB blocks).
    pub total_moved_bytes: u64,
    /// Sum of per-step transfer estimates (ms).
    pub total_step_ms: f64,
    /// Workload cost of the starting layout (ms).
    pub start_cost_ms: f64,
    /// Workload cost of the final (= target) layout (ms).
    pub final_cost_ms: f64,
    /// The worst workload cost over the start and every intermediate
    /// layout — the degradation ceiling during migration (ms).
    pub worst_intermediate_cost_ms: f64,
    /// Id of the decision record whose recommendation this plan migrates
    /// toward, when the caller tracks provenance (`dblayout-audit`).
    pub decision_id: Option<u64>,
}

impl MigrationPlan {
    /// The machine-readable plan artifact (the `plan_migration` wire
    /// result and the `dblayout migrate` output document).
    pub fn to_json(&self) -> Value {
        let mut entries = vec![
            ("step_count".into(), Value::U64(self.steps.len() as u64)),
            (
                "total_moved_blocks".into(),
                Value::U64(self.total_moved_blocks),
            ),
            (
                "total_moved_bytes".into(),
                Value::U64(self.total_moved_bytes),
            ),
            ("total_step_ms".into(), Value::F64(self.total_step_ms)),
            ("start_cost_ms".into(), Value::F64(self.start_cost_ms)),
            ("final_cost_ms".into(), Value::F64(self.final_cost_ms)),
            (
                "worst_intermediate_cost_ms".into(),
                Value::F64(self.worst_intermediate_cost_ms),
            ),
        ];
        if let Some(id) = self.decision_id {
            entries.push(("decision_id".into(), Value::U64(id)));
        }
        entries.push((
            "steps".into(),
            Value::Seq(self.steps.iter().map(|s| s.to_json()).collect()),
        ));
        Value::Map(entries)
    }
}

/// Per-object move geometry for one candidate step.
struct Candidate {
    object: usize,
    outbound: u64,
    copy_ok: bool,
    direct_ok: bool,
}

/// Plans the migration from `current` to `target`, pricing every step and
/// intermediate layout. `workload` and `model` supply the degraded-cost
/// accounting; an empty workload prices every intermediate at 0.
///
/// # Errors
/// [`PlanError::Mismatch`] / [`PlanError::InvalidEndpoint`] on malformed
/// endpoints, [`PlanError::Stuck`] when no step ordering can stage the
/// remaining moves within drive capacities.
pub fn plan_migration(
    current: &Layout,
    target: &Layout,
    disks: &[DiskSpec],
    workload: &[(Vec<Subplan>, f64)],
    model: &CostModel,
) -> Result<MigrationPlan, PlanError> {
    let n = current.object_count();
    let m = disks.len();
    if target.object_count() != n {
        return Err(PlanError::Mismatch(format!(
            "current has {n} objects, target has {}",
            target.object_count()
        )));
    }
    if current.object_sizes() != target.object_sizes() {
        return Err(PlanError::Mismatch(
            "current and target disagree on object sizes".into(),
        ));
    }
    if let Err(e) = current.validate(disks) {
        return Err(PlanError::InvalidEndpoint(format!("current: {e}")));
    }
    if let Err(e) = target.validate(disks) {
        return Err(PlanError::InvalidEndpoint(format!("target: {e}")));
    }

    counters::incr(Counter::CostmodelFullRecosts);
    let start_cost = model.workload_cost_subplans(workload, current, disks);

    // Objects whose placement actually changes, by exact fraction bits —
    // identical rows produce no step, so plan(current, current) is empty.
    let mut pending: Vec<usize> = (0..n)
        .filter(|&i| {
            (0..m).any(|j| current.fraction(i, j).to_bits() != target.fraction(i, j).to_bits())
        })
        .collect();

    let caps: Vec<u64> = disks.iter().map(|d| d.capacity_blocks).collect();
    let mut work = current.clone();
    let mut usage = work.disk_usage();
    let mut steps: Vec<PlanStep> = Vec::new();
    let mut total_moved = 0u64;
    let mut total_step_ms = 0.0f64;
    let mut worst_cost = start_cost;
    let mut final_cost = start_cost;

    while !pending.is_empty() {
        // Geometry of every pending move against the current usage.
        let candidates: Vec<Candidate> = pending
            .iter()
            .map(|&i| {
                let old = work.blocks_on(i);
                let new = target.blocks_on(i);
                // Shadow copy: the whole new placement lands before any
                // old block is deleted.
                let copy_ok = (0..m).all(|j| usage[j] + new[j] <= caps[j]);
                let direct_ok = (0..m).all(|j| usage[j] - old[j] + new[j] <= caps[j]);
                let outbound: u64 = (0..m).map(|j| old[j].saturating_sub(new[j])).sum();
                Candidate {
                    object: i,
                    outbound,
                    copy_ok,
                    direct_ok,
                }
            })
            .collect();

        // Prefer copy mode; within a mode, free the most blocks first
        // (ties: lowest object id, via the ascending scan + strict >).
        let pick = |mode_ok: &dyn Fn(&Candidate) -> bool| -> Option<usize> {
            let mut best: Option<(usize, u64)> = None;
            for c in &candidates {
                if mode_ok(c) && best.is_none_or(|(_, out)| c.outbound > out) {
                    best = Some((c.object, c.outbound));
                }
            }
            best.map(|(i, _)| i)
        };
        let (object, direct) = match pick(&|c: &Candidate| c.copy_ok) {
            Some(i) => (i, false),
            None => match pick(&|c: &Candidate| c.direct_ok) {
                Some(i) => (i, true),
                None => {
                    return Err(PlanError::Stuck {
                        remaining: pending.len(),
                    })
                }
            },
        };

        let old = work.blocks_on(object);
        let new = target.blocks_on(object);
        let from_disks = work.disks_of(object);
        let to_disks = target.disks_of(object);
        let mut moved = 0u64;
        let mut read_ms = 0.0f64;
        let mut write_ms = 0.0f64;
        for j in 0..m {
            moved += new[j].saturating_sub(old[j]);
            // Copy mode re-reads/re-writes the whole object (shadow copy);
            // direct mode touches only the relocated delta.
            let (read_blocks, write_blocks) = if direct {
                (old[j].saturating_sub(new[j]), new[j].saturating_sub(old[j]))
            } else {
                (old[j], new[j])
            };
            if read_blocks > 0 {
                let t = disks[j].avg_seek_ms + read_blocks as f64 * disks[j].read_ms_per_block();
                read_ms = read_ms.max(t);
            }
            if write_blocks > 0 {
                let t = disks[j].avg_seek_ms + write_blocks as f64 * disks[j].write_ms_per_block();
                write_ms = write_ms.max(t);
            }
            usage[j] = usage[j] - old[j] + new[j];
        }
        work.copy_row_from(target, object);
        if let Err(e) = work.validate(disks) {
            // The feasibility arithmetic above should make this
            // unreachable; fail closed rather than emit a bad plan.
            return Err(PlanError::InvalidEndpoint(format!(
                "intermediate layout after moving object {object}: {e}"
            )));
        }
        counters::incr(Counter::CostmodelFullRecosts);
        let intermediate_cost = model.workload_cost_subplans(workload, &work, disks);
        worst_cost = worst_cost.max(intermediate_cost);
        final_cost = intermediate_cost;
        let step_ms = read_ms + write_ms;
        total_moved += moved;
        total_step_ms += step_ms;
        steps.push(PlanStep {
            seq: steps.len(),
            object,
            from_disks,
            to_disks,
            moved_blocks: moved,
            step_ms,
            intermediate_cost_ms: intermediate_cost,
            direct,
        });
        pending.retain(|&i| i != object);
    }

    counters::add(Counter::MigrationStepsPlanned, steps.len() as u64);
    counters::add(Counter::MigrationBlocksPlanned, total_moved);
    Ok(MigrationPlan {
        steps,
        total_moved_blocks: total_moved,
        total_moved_bytes: total_moved * BLOCK_BYTES,
        total_step_ms,
        start_cost_ms: start_cost,
        final_cost_ms: final_cost,
        worst_intermediate_cost_ms: worst_cost,
        decision_id: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::ObjectId;
    use dblayout_core::access_graph::build_access_graph;
    use dblayout_core::costmodel::decompose_workload;
    use dblayout_core::tsgreedy::{ts_greedy, TsGreedyConfig};
    use dblayout_disksim::uniform_disks;
    use dblayout_planner::{PhysicalPlan, PlanNode};

    fn scan(obj: u32, blocks: u64) -> PlanNode {
        PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64,
        }
    }

    fn join(a: u32, ab: u64, b: u32, bb: u64) -> PhysicalPlan {
        PhysicalPlan::new(PlanNode::MergeJoin {
            on: "k".into(),
            rows: 1.0,
            left: Box::new(scan(a, ab)),
            right: Box::new(scan(b, bb)),
        })
    }

    #[test]
    fn identity_migration_is_empty() {
        let disks = uniform_disks(3, 10_000, 10.0, 20.0);
        let l = Layout::full_striping(vec![300, 150], &disks);
        let plan = plan_migration(&l, &l.clone(), &disks, &[], &CostModel::default()).unwrap();
        assert!(plan.steps.is_empty());
        assert_eq!(plan.total_moved_blocks, 0);
        assert_eq!(plan.total_moved_bytes, 0);
    }

    #[test]
    fn plan_reaches_searched_target_with_valid_intermediates() {
        let disks = uniform_disks(4, 100_000, 10.0, 20.0);
        let sizes = vec![400u64, 200, 100];
        let plans = vec![
            (join(0, 400, 1, 200), 2.0),
            (PhysicalPlan::new(scan(2, 100)), 1.0),
        ];
        let graph = build_access_graph(3, &plans);
        let workload = decompose_workload(&plans);
        let current = Layout::full_striping(sizes.clone(), &disks);
        let target = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .unwrap()
        .layout;
        let plan =
            plan_migration(&current, &target, &disks, &workload, &CostModel::default()).unwrap();
        assert!(!plan.steps.is_empty());
        assert_eq!(plan.total_moved_blocks, target.data_movement_from(&current));
        // Replay: applying steps in order must stay valid and end at target.
        let mut replay = current.clone();
        for (i, step) in plan.steps.iter().enumerate() {
            assert_eq!(step.seq, i);
            assert!(step.moved_blocks > 0);
            assert!(step.step_ms > 0.0);
            replay.copy_row_from(&target, step.object);
            replay.validate(&disks).unwrap();
        }
        for i in 0..target.object_count() {
            for j in 0..target.disk_count() {
                assert_eq!(
                    replay.fraction(i, j).to_bits(),
                    target.fraction(i, j).to_bits()
                );
            }
        }
        assert!(plan.worst_intermediate_cost_ms >= plan.final_cost_ms - 1e-9);
    }

    #[test]
    fn tight_capacity_uses_direct_mode_or_sticks() {
        // Two objects swapping dedicated disks with zero headroom: the
        // copy staging never fits, the direct mode does.
        let disks = uniform_disks(2, 100, 10.0, 20.0);
        let sizes = vec![100u64, 100];
        let mut current = Layout::empty(sizes.clone(), 2);
        current.place_proportional(0, &[0], &disks);
        current.place_proportional(1, &[1], &disks);
        let mut target = Layout::empty(sizes, 2);
        target.place_proportional(0, &[1], &disks);
        target.place_proportional(1, &[0], &disks);
        // Even direct mode cannot stage a swap with both drives full.
        let err =
            plan_migration(&current, &target, &disks, &[], &CostModel::default()).unwrap_err();
        assert!(matches!(err, PlanError::Stuck { remaining: 2 }));
    }

    #[test]
    fn direct_mode_engages_when_scratch_is_tight() {
        // Object 0 consolidates from {0, 1} onto disk 1. The final state
        // fits exactly (70 − 30 + 60 = 100), but a shadow copy would peak
        // at 70 + 60 = 130 > 100, so the step must run direct.
        let disks = uniform_disks(2, 100, 10.0, 20.0);
        let sizes = vec![60u64, 40];
        let mut current = Layout::empty(sizes.clone(), 2);
        current.place_proportional(0, &[0, 1], &disks);
        current.place_proportional(1, &[1], &disks);
        let mut target = Layout::empty(sizes, 2);
        target.place_proportional(0, &[1], &disks);
        target.place_proportional(1, &[1], &disks);
        let plan = plan_migration(&current, &target, &disks, &[], &CostModel::default()).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(
            plan.steps[0].direct,
            "shadow copy cannot fit 70 + 60 on a 100-block drive"
        );
        assert_eq!(plan.steps[0].moved_blocks, 30);
        assert_eq!(plan.total_moved_blocks, 30);
    }

    #[test]
    fn mismatched_endpoints_rejected() {
        let disks = uniform_disks(2, 1_000, 10.0, 20.0);
        let a = Layout::full_striping(vec![100], &disks);
        let b = Layout::full_striping(vec![100, 50], &disks);
        assert!(matches!(
            plan_migration(&a, &b, &disks, &[], &CostModel::default()),
            Err(PlanError::Mismatch(_))
        ));
    }

    #[test]
    fn json_artifact_has_plan_shape() {
        let disks = uniform_disks(3, 10_000, 10.0, 20.0);
        let sizes = vec![300u64];
        let current = Layout::full_striping(sizes.clone(), &disks);
        let mut target = Layout::empty(sizes, 3);
        target.place_proportional(0, &[0], &disks);
        let mut plan =
            plan_migration(&current, &target, &disks, &[], &CostModel::default()).unwrap();
        let text = serde_json::to_string(&plan.to_json()).unwrap();
        assert!(text.contains("\"step_count\":1"));
        assert!(text.contains("\"steps\":["));
        assert!(text.contains("\"from_disks\":[0,1,2]"));
        assert!(text.contains("\"to_disks\":[0]"));
        // Provenance rides along only when the caller attributes the plan.
        assert!(!text.contains("decision_id"));
        plan.decision_id = Some(3);
        let text = serde_json::to_string(&plan.to_json()).unwrap();
        assert!(text.contains("\"decision_id\":3"));
    }
}
