//! Windowed/decayed access-graph maintenance.
//!
//! The access graph of paper §4 only ever accumulates, so a year-old join
//! storm weighs as much as this morning's. Continuous relayout instead
//! buckets ingestion into *epochs*: advancing an epoch multiplies every
//! node and edge weight by a decay factor `d ∈ (0, 1]`, after which new
//! statements fold in at full weight. The effective weight of an
//! observation `a` epochs old is therefore `d^a` — an exponentially decayed
//! window whose half-life is `ln 2 / ln(1/d)` epochs.
//!
//! **The decay = 1.0 identity.** With `d = 1.0` the scale is a no-op, and
//! [`advance_epoch`] skips it entirely instead of multiplying by 1.0 —
//! weights pass through the exact same sequence of `+=` folds as
//! [`extend_access_graph`](dblayout_core::extend_access_graph), so graphs
//! (and the layouts advised from them) are bit-for-bit identical to the
//! accumulate-only path. The `relayout_differential` suite locks this in.

use dblayout_obs::counters::{self, Counter};
use dblayout_partition::Graph;
use dblayout_planner::PhysicalPlan;

/// Multiplies every node and edge weight of `graph` by `decay`, the
/// epoch-advance primitive. Returns `true` when the graph was scaled;
/// `decay >= 1.0` is skipped entirely (not multiplied by 1.0) so the
/// no-decay path stays bit-identical to plain accumulation.
///
/// # Panics
/// Asserts `0 < decay <= 1` — amplifying history is never meaningful.
pub fn advance_epoch(graph: &mut Graph, decay: f64) -> bool {
    assert!(
        decay > 0.0 && decay <= 1.0,
        "decay must be in (0, 1], got {decay}"
    );
    if decay >= 1.0 {
        return false;
    }
    graph.scale(decay);
    counters::incr(Counter::RelayoutEpochAdvances);
    true
}

/// An access graph with epoch-bucketed exponential decay: the offline
/// (CLI / test harness) counterpart of the server session's decayed graph.
///
/// Usage per epoch: [`DecayedGraph::advance_epoch`] once, then
/// [`DecayedGraph::fold`] the epoch's plans.
#[derive(Debug, Clone)]
pub struct DecayedGraph {
    graph: Graph,
    decay: f64,
    epoch: u64,
}

impl DecayedGraph {
    /// An empty decayed graph over `n_objects` catalog objects.
    ///
    /// # Panics
    /// Asserts `0 < decay <= 1`.
    pub fn new(n_objects: usize, decay: f64) -> Self {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must be in (0, 1], got {decay}"
        );
        Self {
            graph: Graph::new(n_objects),
            decay,
            epoch: 0,
        }
    }

    /// Closes the current epoch: ages all existing weights by the decay
    /// factor (see [`advance_epoch`]) and bumps the epoch counter.
    /// Returns `true` when weights were actually scaled.
    pub fn advance_epoch(&mut self) -> bool {
        self.epoch += 1;
        advance_epoch(&mut self.graph, self.decay)
    }

    /// Folds weighted plans into the current epoch at full weight — the
    /// same Figure-6 accumulation as
    /// [`extend_access_graph`](dblayout_core::extend_access_graph).
    pub fn fold(&mut self, plans: &[(PhysicalPlan, f64)]) {
        dblayout_core::extend_access_graph(&mut self.graph, plans);
    }

    /// The decayed graph, ready for drift detection or advising.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The configured decay factor.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Epochs advanced so far (= `advance_epoch` calls).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Consumes the wrapper, yielding the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

/// Canonical byte serialization of a graph: node count, every node
/// weight's raw bits, then every edge `(u, v, w)` with `u < v` in sorted
/// order, weights as raw bits. Two graphs serialize identically iff they
/// are bit-for-bit the same — the equality the decay-1.0 differential
/// tests assert.
pub fn graph_bytes(g: &Graph) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 * g.len() + 24 * g.edge_count());
    out.extend_from_slice(&(g.len() as u64).to_le_bytes());
    for u in 0..g.len() {
        out.extend_from_slice(&g.node_weight(u).to_bits().to_le_bytes());
    }
    for (u, v, w) in g.edges() {
        out.extend_from_slice(&(u as u64).to_le_bytes());
        out.extend_from_slice(&(v as u64).to_le_bytes());
        out.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::ObjectId;
    use dblayout_planner::PlanNode;

    fn scan(obj: u32, blocks: u64) -> PlanNode {
        PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64,
        }
    }

    fn join(a: u32, ab: u64, b: u32, bb: u64) -> PhysicalPlan {
        PhysicalPlan::new(PlanNode::MergeJoin {
            on: "k".into(),
            rows: 1.0,
            left: Box::new(scan(a, ab)),
            right: Box::new(scan(b, bb)),
        })
    }

    #[test]
    fn decay_one_skips_scaling_and_matches_plain_extension() {
        let plans = vec![(join(0, 100, 1, 50), 1.5), (join(1, 30, 2, 70), 2.0)];
        let mut plain = Graph::new(3);
        dblayout_core::extend_access_graph(&mut plain, &plans);

        let mut dg = DecayedGraph::new(3, 1.0);
        for p in &plans {
            assert!(!dg.advance_epoch(), "decay=1.0 must never scale");
            dg.fold(std::slice::from_ref(p));
        }
        assert_eq!(graph_bytes(dg.graph()), graph_bytes(&plain));
        assert_eq!(dg.epoch(), 2);
    }

    #[test]
    fn decay_scales_old_epochs_only() {
        let mut dg = DecayedGraph::new(2, 0.5);
        dg.fold(&[(join(0, 100, 1, 100), 1.0)]);
        let w0 = dg.graph().edge_weight(0, 1);
        assert!(dg.advance_epoch());
        assert_eq!(dg.graph().edge_weight(0, 1), w0 * 0.5);
        // New folds land at full weight on top of the decayed base.
        dg.fold(&[(join(0, 100, 1, 100), 1.0)]);
        assert_eq!(dg.graph().edge_weight(0, 1), w0 * 0.5 + w0);
    }

    #[test]
    #[should_panic(expected = "decay must be in")]
    fn zero_decay_rejected() {
        DecayedGraph::new(2, 0.0);
    }

    #[test]
    fn graph_bytes_distinguishes_weights() {
        let mut a = Graph::new(2);
        let mut b = Graph::new(2);
        a.add_edge(0, 1, 1.0);
        b.add_edge(0, 1, 1.0 + f64::EPSILON);
        assert_ne!(graph_bytes(&a), graph_bytes(&b));
        assert_eq!(graph_bytes(&a), graph_bytes(&a.clone()));
    }
}
