//! Workload drift detection.
//!
//! A deployed layout was advised on a particular access graph. As the
//! workload evolves, the live (decayed) graph walks away from that
//! snapshot, and at some point the deployed layout is advice for a
//! workload that no longer exists. The detector quantifies the gap with
//! two complementary metrics (DESIGN.md §9):
//!
//! * **normalized weight distance** — the total-variation distance
//!   `½ · Σ|ŵ_now − ŵ_adv|` between the two edge-weight *distributions*
//!   (each side normalized to unit mass; computed over the union of
//!   edges, and separately over nodes). 0 means the same shape — a
//!   workload that doubled uniformly scores exactly 0 — and 1 means the
//!   weight sits on disjoint edges. One side empty and the other not
//!   scores 1.
//! * **top-k rank churn** — `1 − |topk(now) ∩ topk(adv)| / k`, the
//!   fraction of the advised graph's k heaviest co-access edges that are
//!   no longer among the current top k. The advisor's step 1 is driven by
//!   the heaviest edges, so churn here predicts a different partition.
//!
//! Either metric crossing its threshold fires
//! [`DriftReport::drifted`].

use dblayout_obs::counters::{self, Counter};
use dblayout_partition::Graph;
use serde_json::Value;

/// Drift-detector thresholds.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// How many of the heaviest edges participate in rank churn.
    pub top_k: usize,
    /// Edge-weight distance at or above which drift fires.
    pub distance_threshold: f64,
    /// Rank churn at or above which drift fires.
    pub churn_threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            top_k: 10,
            distance_threshold: 0.25,
            churn_threshold: 0.5,
        }
    }
}

/// The typed outcome of a drift check.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Normalized edge-weight distance in `[0, 1]`.
    pub edge_distance: f64,
    /// Normalized node-weight distance in `[0, 1]`.
    pub node_distance: f64,
    /// Top-k co-access rank churn in `[0, 1]`.
    pub rank_churn: f64,
    /// The `k` the churn was computed over (capped by available edges).
    pub top_k: usize,
    /// Total edge weight of the current (decayed) graph.
    pub current_total_weight: f64,
    /// Total edge weight of the graph the layout was advised on.
    pub advised_total_weight: f64,
    /// Whether either metric crossed its threshold.
    pub drifted: bool,
    /// Id of the decision record that produced the advised graph, when the
    /// caller tracks provenance (`dblayout-audit`); `None` for one-shot
    /// comparisons with no recorded advice.
    pub decision_id: Option<u64>,
}

impl DriftReport {
    /// Machine-readable rendering for the `drift` op and CLI artifacts.
    pub fn to_json(&self) -> Value {
        let mut entries = vec![
            ("edge_distance".into(), Value::F64(self.edge_distance)),
            ("node_distance".into(), Value::F64(self.node_distance)),
            ("rank_churn".into(), Value::F64(self.rank_churn)),
            ("top_k".into(), Value::U64(self.top_k as u64)),
            (
                "current_total_weight".into(),
                Value::F64(self.current_total_weight),
            ),
            (
                "advised_total_weight".into(),
                Value::F64(self.advised_total_weight),
            ),
            ("drifted".into(), Value::Bool(self.drifted)),
        ];
        if let Some(id) = self.decision_id {
            entries.push(("decision_id".into(), Value::U64(id)));
        }
        Value::Map(entries)
    }
}

/// Total-variation distance between two weight vectors after normalizing
/// each to unit mass: `½ · Σ|a/Σa − b/Σb|` ∈ `[0, 1]`. Both sides empty →
/// 0 (nothing changed); exactly one side empty → 1 (all mass is new).
fn normalized_distance(pairs: &[(f64, f64)]) -> f64 {
    let sum_a: f64 = pairs.iter().map(|p| p.0).sum();
    let sum_b: f64 = pairs.iter().map(|p| p.1).sum();
    match (sum_a > 0.0, sum_b > 0.0) {
        (false, false) => 0.0,
        (true, false) | (false, true) => 1.0,
        (true, true) => {
            0.5 * pairs
                .iter()
                .map(|&(a, b)| (a / sum_a - b / sum_b).abs())
                .sum::<f64>()
        }
    }
}

/// The `k` heaviest edges as `(u, v)` keys, heaviest first; ties break on
/// `(u, v)` ascending so the ranking is total and deterministic.
fn top_k_edges(g: &Graph, k: usize) -> Vec<(usize, usize)> {
    let mut edges = g.edges();
    edges.sort_by(|a, b| b.2.total_cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
    edges.truncate(k);
    edges.into_iter().map(|(u, v, _)| (u, v)).collect()
}

/// Compares the live graph against the graph the deployed layout was
/// advised on and reports how far the workload has drifted.
///
/// # Panics
/// Asserts both graphs cover the same objects.
pub fn detect_drift(current: &Graph, advised: &Graph, cfg: &DriftConfig) -> DriftReport {
    assert_eq!(
        current.len(),
        advised.len(),
        "drift compares graphs over the same objects"
    );
    counters::incr(Counter::RelayoutDriftChecks);

    // Edge distance over the union of both edge sets.
    let mut edge_pairs: Vec<(f64, f64)> = Vec::new();
    let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for (u, v, w) in current.edges() {
        edge_pairs.push((w, advised.edge_weight(u, v)));
        seen.insert((u, v));
    }
    for (u, v, w) in advised.edges() {
        if !seen.contains(&(u, v)) {
            edge_pairs.push((current.edge_weight(u, v), w));
        }
    }
    let edge_distance = normalized_distance(&edge_pairs);

    let node_pairs: Vec<(f64, f64)> = (0..current.len())
        .map(|u| (current.node_weight(u), advised.node_weight(u)))
        .collect();
    let node_distance = normalized_distance(&node_pairs);

    // Rank churn over the k heaviest edges of each side.
    let k_eff = cfg
        .top_k
        .min(current.edge_count().max(advised.edge_count()));
    let rank_churn = if k_eff == 0 {
        0.0
    } else {
        let now: std::collections::HashSet<(usize, usize)> =
            top_k_edges(current, k_eff).into_iter().collect();
        let overlap = top_k_edges(advised, k_eff)
            .into_iter()
            .filter(|e| now.contains(e))
            .count();
        1.0 - overlap as f64 / k_eff as f64
    };

    let drifted = edge_distance >= cfg.distance_threshold || rank_churn >= cfg.churn_threshold;
    DriftReport {
        edge_distance,
        node_distance,
        rank_churn,
        top_k: k_eff,
        current_total_weight: current.total_edge_weight(),
        advised_total_weight: advised.total_edge_weight(),
        drifted,
        decision_id: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with(edges: &[(usize, usize, f64)]) -> Graph {
        let n = edges
            .iter()
            .map(|&(u, v, _)| u.max(v) + 1)
            .max()
            .unwrap_or(0)
            .max(4);
        let mut g = Graph::new(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
            g.add_node_weight(u, w / 2.0);
            g.add_node_weight(v, w / 2.0);
        }
        g
    }

    #[test]
    fn identical_graphs_do_not_drift() {
        let g = graph_with(&[(0, 1, 100.0), (2, 3, 50.0)]);
        let r = detect_drift(&g, &g.clone(), &DriftConfig::default());
        assert_eq!(r.edge_distance, 0.0);
        assert_eq!(r.node_distance, 0.0);
        assert_eq!(r.rank_churn, 0.0);
        assert!(!r.drifted);
    }

    #[test]
    fn uniform_scaling_is_not_drift() {
        let advised = graph_with(&[(0, 1, 100.0), (2, 3, 50.0)]);
        let doubled = graph_with(&[(0, 1, 200.0), (2, 3, 100.0)]);
        let r = detect_drift(&doubled, &advised, &DriftConfig::default());
        // Same shape, twice the mass: the distributions are identical.
        assert!(r.edge_distance.abs() < 1e-12, "got {}", r.edge_distance);
        assert_eq!(r.rank_churn, 0.0);
        assert!(!r.drifted);
    }

    #[test]
    fn one_sided_weight_is_maximal_distance() {
        let advised = Graph::new(4);
        let current = graph_with(&[(0, 1, 50.0)]);
        let r = detect_drift(&current, &advised, &DriftConfig::default());
        assert_eq!(r.edge_distance, 1.0);
        assert!(r.drifted);
    }

    #[test]
    fn disjoint_hot_sets_fire_drift() {
        let advised = graph_with(&[(0, 1, 100.0)]);
        let current = graph_with(&[(2, 3, 100.0)]);
        let r = detect_drift(&current, &advised, &DriftConfig::default());
        assert_eq!(r.edge_distance, 1.0);
        assert_eq!(r.rank_churn, 1.0);
        assert!(r.drifted);
    }

    #[test]
    fn empty_graphs_are_quiet() {
        let g = Graph::new(5);
        let r = detect_drift(&g, &g.clone(), &DriftConfig::default());
        assert_eq!(r.edge_distance, 0.0);
        assert_eq!(r.rank_churn, 0.0);
        assert_eq!(r.top_k, 0);
        assert!(!r.drifted);
    }

    #[test]
    fn churn_counts_replaced_top_edges() {
        // Advised top-2: (0,1), (2,3). Current top-2: (0,1), (1,2).
        let advised = graph_with(&[(0, 1, 100.0), (2, 3, 90.0), (1, 2, 10.0)]);
        let current = graph_with(&[(0, 1, 100.0), (2, 3, 10.0), (1, 2, 90.0)]);
        let cfg = DriftConfig {
            top_k: 2,
            ..Default::default()
        };
        let r = detect_drift(&current, &advised, &cfg);
        assert!((r.rank_churn - 0.5).abs() < 1e-12);
    }

    #[test]
    fn json_shape_is_stable() {
        let g = graph_with(&[(0, 1, 10.0)]);
        let mut report = detect_drift(&g, &g.clone(), &DriftConfig::default());
        let text = serde_json::to_string(&report.to_json()).unwrap();
        assert!(text.contains("\"edge_distance\""));
        assert!(text.contains("\"drifted\":false"));
        // No provenance by default; the id appears only when attributed.
        assert!(!text.contains("decision_id"));
        report.decision_id = Some(7);
        let text = serde_json::to_string(&report.to_json()).unwrap();
        assert!(text.contains("\"decision_id\":7"));
    }
}
