//! Analyze Workload: the access graph (paper §4, Figure 6).
//!
//! Nodes are database objects; a node's weight is the total number of blocks
//! of that object referenced across the workload. An edge `(u, v)` exists
//! when some statement co-accesses `u` and `v` inside one *non-blocking
//! sub-plan*; its weight accumulates, per such sub-plan, the sum of the
//! blocks of both objects (weighted by the statement's `w_Q`).
//!
//! The graph keeps only pairwise co-access information — the paper's §4.1
//! simplification, validated by its experiments (and by this reproduction's
//! A4 ablation).

use dblayout_obs::counters::{self, Counter};
use dblayout_obs::{f, Collector};
use dblayout_partition::Graph;
use dblayout_planner::{PhysicalPlan, Subplan};

/// Builds the access graph over `n_objects` catalog objects from the
/// workload's execution plans and weights.
///
/// This is exactly Figure 6: node values accumulate each object's total
/// blocks per plan (step 3); for each non-blocking sub-plan, every pair of
/// distinct objects it accesses gains edge weight equal to the sum of both
/// objects' block counts in that sub-plan (steps 4-5). Statement weights
/// `w_Q` scale both node and edge contributions.
pub fn build_access_graph(n_objects: usize, plans: &[(PhysicalPlan, f64)]) -> Graph {
    let mut g = Graph::new(n_objects);
    extend_access_graph(&mut g, plans);
    g
}

/// Builds the access graph directly from pre-decomposed sub-plans — the
/// entry point for synthetic workloads (the `wkmega` mega-scale family)
/// whose statements are generated as sub-plan sets without a SQL text or
/// a plan tree. The accumulation arithmetic is exactly Figure 6, matching
/// [`build_access_graph`] step for step: node weights from every access,
/// pairwise edges within each non-blocking sub-plan, both scaled by the
/// statement weight `w_Q`.
pub fn build_access_graph_subplans(n_objects: usize, workload: &[(Vec<Subplan>, f64)]) -> Graph {
    let mut g = Graph::new(n_objects);
    for (subplans, weight) in workload {
        let mut node_updates = 0usize;
        let mut edge_updates = 0usize;
        for sub in subplans {
            for access in &sub.accesses {
                g.add_node_weight(access.object.index(), weight * access.blocks as f64);
                node_updates += 1;
            }
        }
        for sub in subplans {
            let objects = sub.objects();
            for (a_pos, &u) in objects.iter().enumerate() {
                for &v in &objects[a_pos + 1..] {
                    let bu = sub.blocks_of(u);
                    let bv = sub.blocks_of(v);
                    g.add_edge(u.index(), v.index(), weight * (bu + bv) as f64);
                    edge_updates += 1;
                }
            }
        }
        counters::add(Counter::GraphNodeUpdates, node_updates as u64);
        counters::add(Counter::GraphEdgeUpdates, edge_updates as u64);
    }
    g
}

/// Folds additional weighted plans into an existing access graph.
///
/// Node and edge weights only ever accumulate (`+=`), so extending a graph
/// statement-by-statement in arrival order produces bit-identical weights to
/// [`build_access_graph`] over the concatenated workload — the invariant the
/// server's incremental sessions rely on.
pub fn extend_access_graph(g: &mut Graph, plans: &[(PhysicalPlan, f64)]) {
    extend_access_graph_traced(g, plans, &Collector::default());
}

/// [`extend_access_graph`] with Figure-6 accumulation tracing: one
/// `graph.extend` span covering the batch, and per plan a `graph.plan`
/// event recording how many node-weight and edge-weight updates it
/// contributed. A disabled `collector` makes this identical to
/// [`extend_access_graph`].
pub fn extend_access_graph_traced(
    g: &mut Graph,
    plans: &[(PhysicalPlan, f64)],
    collector: &Collector,
) {
    let span = collector.span(
        "graph.extend",
        if collector.enabled() {
            vec![f("plans", plans.len()), f("objects", g.len())]
        } else {
            Vec::new()
        },
    );
    for (plan_idx, (plan, weight)) in plans.iter().enumerate() {
        let subplans = plan.subplans();
        let mut node_updates = 0usize;
        let mut edge_updates = 0usize;
        // Step 3: node values — total blocks of each object in the plan.
        for sub in &subplans {
            for access in &sub.accesses {
                g.add_node_weight(access.object.index(), weight * access.blocks as f64);
                node_updates += 1;
            }
        }
        // Steps 4-5: pairwise co-access within each non-blocking sub-plan.
        for sub in &subplans {
            let objects = sub.objects();
            for (a_pos, &u) in objects.iter().enumerate() {
                for &v in &objects[a_pos + 1..] {
                    let bu = sub.blocks_of(u);
                    let bv = sub.blocks_of(v);
                    g.add_edge(u.index(), v.index(), weight * (bu + bv) as f64);
                    edge_updates += 1;
                }
            }
        }
        // Always-on accounting (deterministic class): folds depend only
        // on the plans, never on tracing or thread count.
        counters::add(Counter::GraphNodeUpdates, node_updates as u64);
        counters::add(Counter::GraphEdgeUpdates, edge_updates as u64);
        if span.enabled() {
            span.event(
                "graph.plan",
                vec![
                    f("plan", plan_idx),
                    f("weight", *weight),
                    f("subplans", subplans.len()),
                    f("node_updates", node_updates),
                    f("edge_updates", edge_updates),
                ],
            );
        }
    }
    span.end_with(if collector.enabled() {
        vec![
            f("edges", g.edge_count()),
            f("total_edge_weight", g.total_edge_weight()),
        ]
    } else {
        Vec::new()
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::ObjectId;
    use dblayout_planner::PlanNode;

    fn scan(obj: u32, blocks: u64) -> PlanNode {
        PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64,
        }
    }

    /// Paper Example 2: Q1 co-accesses R1=500, R2=700, R3=300; Q2
    /// co-accesses R2=600, R3=100, R4=200. Per the Figure-6 algorithm text
    /// ("increment the weight of the edge by the sum of the number of
    /// blocks of the two objects"), edge (R2,R3) = (700+300) + (600+100) =
    /// 1700. (The paper's Figure 5 shows 1300 — it counts only one
    /// endpoint per query, inconsistent with its own algorithm text; we
    /// follow the text. Orderings are unaffected.)
    #[test]
    fn example2_arithmetic_follows_figure6_text() {
        let q1 = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "x".into(),
            rows: 1.0,
            left: Box::new(PlanNode::MergeJoin {
                on: "y".into(),
                rows: 1.0,
                left: Box::new(scan(1, 500)),
                right: Box::new(scan(2, 700)),
            }),
            right: Box::new(scan(3, 300)),
        });
        let q2 = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "x".into(),
            rows: 1.0,
            left: Box::new(PlanNode::MergeJoin {
                on: "y".into(),
                rows: 1.0,
                left: Box::new(scan(2, 600)),
                right: Box::new(scan(3, 100)),
            }),
            right: Box::new(scan(4, 200)),
        });
        let g = build_access_graph(5, &[(q1, 1.0), (q2, 1.0)]);
        // Node weights: R2 = 700 + 600.
        assert_eq!(g.node_weight(2), 1300.0);
        assert_eq!(g.node_weight(1), 500.0);
        assert_eq!(g.node_weight(4), 200.0);
        // Edge (R2,R3) = (700+300) + (600+100).
        assert_eq!(g.edge_weight(2, 3), 1700.0);
        // Edge (R1,R4): never co-accessed.
        assert_eq!(g.edge_weight(1, 4), 0.0);
    }

    #[test]
    fn blocking_cut_prevents_edges() {
        // HashJoin: build side scan(0) is NOT co-accessed with probe scan(1).
        let plan = PhysicalPlan::new(PlanNode::HashJoin {
            on: "x".into(),
            rows: 1.0,
            build: Box::new(scan(0, 100)),
            probe: Box::new(scan(1, 200)),
            spill_blocks: 0,
        });
        let g = build_access_graph(2, &[(plan, 1.0)]);
        assert_eq!(g.edge_weight(0, 1), 0.0);
        assert_eq!(g.node_weight(0), 100.0);
        assert_eq!(g.node_weight(1), 200.0);
    }

    #[test]
    fn statement_weights_scale_contributions() {
        let plan = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "x".into(),
            rows: 1.0,
            left: Box::new(scan(0, 100)),
            right: Box::new(scan(1, 50)),
        });
        let g = build_access_graph(2, &[(plan, 2.5)]);
        assert_eq!(g.node_weight(0), 250.0);
        assert_eq!(g.edge_weight(0, 1), 2.5 * 150.0);
    }

    #[test]
    fn edges_accumulate_across_statements() {
        let mk = || {
            PhysicalPlan::new(PlanNode::MergeJoin {
                on: "x".into(),
                rows: 1.0,
                left: Box::new(scan(0, 10)),
                right: Box::new(scan(1, 20)),
            })
        };
        let g = build_access_graph(2, &[(mk(), 1.0), (mk(), 1.0)]);
        assert_eq!(g.edge_weight(0, 1), 60.0);
    }

    #[test]
    fn three_way_coaccess_creates_clique() {
        let plan = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "x".into(),
            rows: 1.0,
            left: Box::new(PlanNode::NestedLoops {
                on: "y".into(),
                rows: 1.0,
                outer: Box::new(scan(0, 10)),
                inner: Box::new(scan(1, 20)),
            }),
            right: Box::new(scan(2, 30)),
        });
        let g = build_access_graph(3, &[(plan, 1.0)]);
        assert!(g.edge_weight(0, 1) > 0.0);
        assert!(g.edge_weight(0, 2) > 0.0);
        assert!(g.edge_weight(1, 2) > 0.0);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn incremental_extension_matches_batch_build() {
        let mk = |a: u32, b: u32, ba: u64, bb: u64| {
            PhysicalPlan::new(PlanNode::MergeJoin {
                on: "x".into(),
                rows: 1.0,
                left: Box::new(scan(a, ba)),
                right: Box::new(scan(b, bb)),
            })
        };
        let plans = vec![
            (mk(0, 1, 137, 251), 1.25),
            (mk(1, 2, 89, 17), 0.75),
            (mk(0, 2, 41, 333), 3.0),
        ];
        let batch = build_access_graph(4, &plans);
        let mut incremental = Graph::new(4);
        for p in &plans {
            extend_access_graph(&mut incremental, std::slice::from_ref(p));
        }
        for u in 0..4 {
            assert_eq!(
                batch.node_weight(u).to_bits(),
                incremental.node_weight(u).to_bits()
            );
            for v in u + 1..4 {
                assert_eq!(
                    batch.edge_weight(u, v).to_bits(),
                    incremental.edge_weight(u, v).to_bits()
                );
            }
        }
    }

    #[test]
    fn traced_extension_matches_untraced_and_records_accumulation() {
        use dblayout_obs::{Collector, RecordKind, RingSink};
        use std::sync::Arc;
        let plan = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "x".into(),
            rows: 1.0,
            left: Box::new(scan(0, 100)),
            right: Box::new(scan(1, 50)),
        });
        let plans = vec![(plan, 2.0)];
        let plain = build_access_graph(2, &plans);
        let ring = Arc::new(RingSink::new(64));
        let collector = Collector::deterministic(ring.clone());
        let mut traced = Graph::new(2);
        extend_access_graph_traced(&mut traced, &plans, &collector);
        for u in 0..2 {
            assert_eq!(
                plain.node_weight(u).to_bits(),
                traced.node_weight(u).to_bits()
            );
        }
        assert_eq!(
            plain.edge_weight(0, 1).to_bits(),
            traced.edge_weight(0, 1).to_bits()
        );
        let records = ring.drain();
        let plan_event = records.iter().find(|r| r.name == "graph.plan").unwrap();
        assert_eq!(plan_event.field_u64("node_updates"), Some(2));
        assert_eq!(plan_event.field_u64("edge_updates"), Some(1));
        let end = records
            .iter()
            .find(|r| r.kind == RecordKind::SpanEnd)
            .unwrap();
        assert_eq!(end.field_u64("edges"), Some(1));
    }

    #[test]
    fn subplan_builder_matches_plan_builder_bit_for_bit() {
        let mk = |a: u32, b: u32, ba: u64, bb: u64| {
            PhysicalPlan::new(PlanNode::MergeJoin {
                on: "x".into(),
                rows: 1.0,
                left: Box::new(scan(a, ba)),
                right: Box::new(scan(b, bb)),
            })
        };
        let plans = vec![
            (mk(0, 1, 137, 251), 1.25),
            (mk(1, 2, 89, 17), 0.75),
            (mk(0, 2, 41, 333), 3.0),
        ];
        let via_plans = build_access_graph(4, &plans);
        let workload: Vec<(Vec<_>, f64)> = plans.iter().map(|(p, w)| (p.subplans(), *w)).collect();
        let via_subplans = build_access_graph_subplans(4, &workload);
        for u in 0..4 {
            assert_eq!(
                via_plans.node_weight(u).to_bits(),
                via_subplans.node_weight(u).to_bits()
            );
            for v in u + 1..4 {
                assert_eq!(
                    via_plans.edge_weight(u, v).to_bits(),
                    via_subplans.edge_weight(u, v).to_bits()
                );
            }
        }
    }

    #[test]
    fn empty_workload_graph_is_silent() {
        let g = build_access_graph(4, &[]);
        assert_eq!(g.total_edge_weight(), 0.0);
        assert_eq!(g.node_weight(0), 0.0);
    }
}
