//! Renders a search trace into a human-readable narrative.
//!
//! `dblayout explain` records the whole Figure-3 pipeline (Analyze
//! Workload → TS-GREEDY → final costing) through a deterministic
//! [`Collector`](dblayout_obs::Collector) and feeds the records here. The
//! narrative names every greedy iteration's winning merge and its cost
//! delta — the audit trail that makes a layout recommendation reviewable —
//! and is byte-identical across runs for the same inputs (costs and the
//! search itself are deterministic, and the deterministic collector omits
//! wall-clock fields).

use dblayout_obs::{Record, RecordKind};

/// Names used to render object/disk ids; falls back to `obj<i>` / `d<i>`
/// past the end of a slice.
pub struct NarrativeNames<'a> {
    /// `objects[i]` names catalog object `i`.
    pub objects: &'a [String],
    /// `disks[j]` names drive `j`.
    pub disks: &'a [String],
}

impl NarrativeNames<'_> {
    fn object(&self, i: usize) -> String {
        match self.objects.get(i) {
            Some(n) => n.clone(),
            None => format!("obj{i}"),
        }
    }

    fn disk(&self, j: usize) -> String {
        match self.disks.get(j) {
            Some(n) => n.clone(),
            None => format!("d{j}"),
        }
    }

    fn object_list(&self, ids: &str) -> String {
        render_id_list(ids, |i| self.object(i))
    }

    fn disk_list(&self, ids: &str) -> String {
        render_id_list(ids, |j| self.disk(j))
    }
}

fn render_id_list(ids: &str, name: impl Fn(usize) -> String) -> String {
    let mut out = String::new();
    for part in ids.split(',').filter(|p| !p.is_empty()) {
        if !out.is_empty() {
            out.push_str(", ");
        }
        match part.parse::<usize>() {
            Ok(i) => out.push_str(&name(i)),
            Err(_) => out.push_str(part),
        }
    }
    out
}

fn ms(v: f64) -> String {
    format!("{v:.3}")
}

/// Renders the trace of one advisor run as a narrative. Records are
/// processed in `seq` order; unknown record names are ignored, so the
/// renderer tolerates traces richer than it understands.
pub fn render_narrative(records: &[Record], names: &NarrativeNames) -> String {
    let mut ordered: Vec<&Record> = records.iter().collect();
    ordered.sort_by_key(|r| r.seq);

    let mut out = String::new();
    let mut iter_open: Option<u64> = None; // current iteration span id
    let mut iter_no: u64 = 0;
    let mut candidates_seen: u64 = 0;
    let mut costed: u64 = 0;
    let mut subplan_no: u64 = 0;
    // Per open costmodel.subplan span: each disk's (id, transfer, seek).
    type DiskTerms = Vec<(u64, f64, f64)>;
    let mut subplan_terms: Vec<(u64, DiskTerms)> = Vec::new();

    for r in &ordered {
        match (r.kind, r.name.as_str()) {
            (RecordKind::SpanEnd, "graph.extend") => {
                let edges = r.field_u64("edges").unwrap_or(0);
                let weight = r.field_f64("total_edge_weight").unwrap_or(0.0);
                out.push_str(&format!(
                    "Analyze Workload: access graph has {edges} co-access edge(s), total edge weight {weight:.1}\n",
                ));
            }
            (RecordKind::SpanStart, "tsgreedy.search") => {
                out.push_str(&format!(
                    "TS-GREEDY: {} object(s) in {} co-location group(s) on {} disk(s), k={}\n",
                    r.field_u64("objects").unwrap_or(0),
                    r.field_u64("groups").unwrap_or(0),
                    r.field_u64("disks").unwrap_or(0),
                    r.field_u64("k").unwrap_or(0),
                ));
            }
            (RecordKind::Event, "tsgreedy.partition") => {
                out.push_str(&format!(
                    "Step 1 — minimize co-location: {} partition(s)\n",
                    r.field_u64("parts").unwrap_or(0),
                ));
            }
            (RecordKind::Event, "tsgreedy.assign") => {
                let merged = matches!(
                    r.field("merged"),
                    Some(dblayout_obs::FieldValue::Bool(true))
                );
                out.push_str(&format!(
                    "  partition {} [{}] ({} blocks) -> disks {{{}}}{}\n",
                    r.field_u64("partition").unwrap_or(0),
                    names.object_list(r.field_str("groups").unwrap_or("")),
                    r.field_u64("blocks").unwrap_or(0),
                    names.disk_list(r.field_str("disks").unwrap_or("")),
                    if merged {
                        " (merged: no disjoint disk set fits)"
                    } else {
                        ""
                    },
                ));
            }
            (RecordKind::Event, "tsgreedy.step1") => {
                out.push_str(&format!(
                    "  step-1 layout cost: {} ms\n",
                    ms(r.field_f64("cost_ms").unwrap_or(0.0)),
                ));
                out.push_str("Step 2 — grow I/O parallelism:\n");
            }
            (RecordKind::SpanStart, "tsgreedy.iteration") => {
                iter_open = Some(r.span);
                iter_no = r.field_u64("iter").unwrap_or(iter_no + 1);
                candidates_seen = 0;
                costed = 0;
            }
            (RecordKind::Event, "tsgreedy.candidate") if iter_open == Some(r.span) => {
                candidates_seen += 1;
                if r.field("cost_ms").is_some() {
                    costed += 1;
                }
            }
            (RecordKind::Event, "tsgreedy.adopt") => {
                let cost = r.field_f64("cost_ms").unwrap_or(0.0);
                let delta = r.field_f64("delta_ms").unwrap_or(0.0);
                out.push_str(&format!(
                    "  iteration {iter_no}: {candidates_seen} candidate(s) ({costed} costed) — adopt: widen [{}] onto {{{}}}, cost {} -> {} ms (delta {} ms)\n",
                    names.object_list(r.field_str("objects").unwrap_or("")),
                    names.disk_list(r.field_str("add_disks").unwrap_or("")),
                    ms(cost - delta),
                    ms(cost),
                    ms(delta),
                ));
            }
            (RecordKind::Event, "tsgreedy.no_move") => {
                out.push_str(&format!(
                    "  iteration {iter_no}: {candidates_seen} candidate(s) ({costed} costed) — no improving move; search stops\n",
                ));
            }
            (RecordKind::SpanEnd, "tsgreedy.iteration") => {
                iter_open = None;
            }
            (RecordKind::SpanEnd, "tsgreedy.search") => {
                out.push_str(&format!(
                    "Result: {} iteration(s), {} cost evaluation(s); cost {} -> {} ms\n",
                    r.field_u64("iterations").unwrap_or(0),
                    r.field_u64("cost_evaluations").unwrap_or(0),
                    ms(r.field_f64("initial_cost_ms").unwrap_or(0.0)),
                    ms(r.field_f64("final_cost_ms").unwrap_or(0.0)),
                ));
            }
            (RecordKind::SpanStart, "costmodel.subplan") => {
                if subplan_no == 0 {
                    out.push_str("Cost breakdown of the recommended layout (per sub-plan):\n");
                }
                subplan_no += 1;
                subplan_terms.push((r.span, Vec::new()));
            }
            (RecordKind::Event, "costmodel.disk") => {
                if let Some((_, terms)) = subplan_terms.iter_mut().find(|(span, _)| *span == r.span)
                {
                    terms.push((
                        r.field_u64("disk").unwrap_or(0),
                        r.field_f64("transfer_ms").unwrap_or(0.0),
                        r.field_f64("seek_ms").unwrap_or(0.0),
                    ));
                }
            }
            (RecordKind::SpanEnd, "costmodel.subplan") => {
                let pos = subplan_terms.iter().position(|(span, _)| *span == r.span);
                let terms = match pos {
                    Some(p) => subplan_terms.swap_remove(p).1,
                    None => Vec::new(),
                };
                let cost = r.field_f64("cost_ms").unwrap_or(0.0);
                let bottleneck = r.field("bottleneck_disk").and_then(|v| match v {
                    dblayout_obs::FieldValue::U64(j) => Some(*j),
                    _ => None,
                });
                match bottleneck.and_then(|j| {
                    terms.iter().find(|(disk, _, _)| *disk == j).copied()
                }) {
                    Some((j, transfer, seek)) => out.push_str(&format!(
                        "  sub-plan {subplan_no}: {} ms — bottleneck {} (transfer {} + seek {} ms)\n",
                        ms(cost),
                        names.disk(j as usize),
                        ms(transfer),
                        ms(seek),
                    )),
                    None => out.push_str(&format!(
                        "  sub-plan {subplan_no}: {} ms\n",
                        ms(cost),
                    )),
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{Advisor, AdvisorConfig};
    use dblayout_catalog::tpch::tpch_catalog;
    use dblayout_disksim::paper_disks;
    use dblayout_obs::{Collector, RingSink};
    use std::sync::Arc;

    fn explain_run() -> (Vec<Record>, String) {
        let catalog = tpch_catalog(0.1);
        let disks = paper_disks();
        let ring = Arc::new(RingSink::new(usize::MAX));
        let collector = Collector::deterministic(ring.clone());
        let mut cfg = AdvisorConfig::default();
        cfg.search.collector = collector.clone();
        let advisor = Advisor::new(&catalog, &disks);
        let rec = advisor
            .recommend_sql(
                "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;",
                &cfg,
            )
            .unwrap();
        // Final costing of the winning layout with a traced model, as the
        // CLI does.
        let mut model = cfg.search.cost_model.clone();
        model.collector = collector;
        let workload = crate::costmodel::decompose_workload(&rec.plans);
        model.workload_cost_subplans(&workload, &rec.layout, &disks);
        let records = ring.drain();
        let object_names: Vec<String> = catalog.objects().iter().map(|o| o.name.clone()).collect();
        let disk_names: Vec<String> = (0..disks.len()).map(|j| format!("d{j}")).collect();
        let names = NarrativeNames {
            objects: &object_names,
            disks: &disk_names,
        };
        (records.clone(), render_narrative(&records, &names))
    }

    #[test]
    fn narrative_names_every_iterations_winning_merge() {
        let (records, narrative) = explain_run();
        let adopts = records
            .iter()
            .filter(|r| r.name == "tsgreedy.adopt")
            .count();
        assert!(adopts >= 1, "search adopted no move:\n{narrative}");
        for i in 1..=adopts {
            assert!(
                narrative.contains(&format!("iteration {i}: ")),
                "missing iteration {i} in:\n{narrative}"
            );
        }
        assert_eq!(
            narrative.matches("— adopt: widen [").count(),
            adopts,
            "{narrative}"
        );
        assert!(narrative.contains("delta"), "{narrative}");
        assert!(narrative.contains("lineitem"), "{narrative}");
        assert!(narrative.contains("no improving move"), "{narrative}");
        assert!(narrative.contains("Cost breakdown"), "{narrative}");
    }

    #[test]
    fn narrative_is_deterministic_across_runs() {
        let (r1, n1) = explain_run();
        let (r2, n2) = explain_run();
        assert_eq!(n1, n2);
        // The raw traces are identical too (deterministic collector).
        let l1: Vec<String> = r1.iter().map(|r| r.to_jsonl()).collect();
        let l2: Vec<String> = r2.iter().map(|r| r.to_jsonl()).collect();
        assert_eq!(l1, l2);
    }

    #[test]
    fn renderer_ignores_unknown_records() {
        let records = vec![Record {
            seq: 0,
            kind: RecordKind::Event,
            span: 0,
            parent: None,
            name: "future.thing".into(),
            fields: Vec::new(),
            elapsed_us: None,
        }];
        let names = NarrativeNames {
            objects: &[],
            disks: &[],
        };
        assert_eq!(render_narrative(&records, &names), "");
    }
}
