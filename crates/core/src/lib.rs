#![warn(missing_docs)]

//! `dblayout-core` — the database layout advisor of *Automating Layout of
//! Relational Databases* (Agrawal, Chaudhuri, Das, Narasayya — ICDE 2003).
//!
//! Given a database (catalog + statistics), a weighted SQL workload, and a
//! set of disk drives, the advisor recommends a **database layout** — which
//! fraction of each object (table / index / materialized view) to place on
//! each drive — minimizing the estimated total I/O response time of the
//! workload, optionally under manageability and availability constraints.
//!
//! The crate mirrors the paper's architecture (Figure 3):
//!
//! * [`access_graph`] — *Analyze Workload*: build the weighted co-access
//!   graph from execution plans, cutting at blocking operators (Figure 6);
//! * [`costmodel`] — the analytic I/O response-time model balancing
//!   transfer parallelism against co-access seeks (Figure 7);
//! * [`tsgreedy`] — the two-step search: max-cut graph partitioning to
//!   separate co-accessed objects, then greedy parallelism widening
//!   (Figure 9, TS-GREEDY);
//! * [`exhaustive`] — brute-force enumeration for small instances (the
//!   quality yardstick the paper compares TS-GREEDY against);
//! * [`par`] — `dblayout-par`, the deterministic scoped-thread evaluation
//!   pool: candidates are scored in parallel but adopted in sequential
//!   candidate order, so results are byte-identical at any thread count;
//! * [`constraints`] — `Co-Located(R_i, R_k)`, `Avail-Requirement(R_i)`,
//!   and the incremental data-movement bound (§2.3);
//! * [`advisor`] — the end-to-end front-end: SQL text in, recommended
//!   layout + estimated improvement out.
//!
//! The FULL STRIPING baseline is [`Layout::full_striping`] (re-exported
//! from `dblayout-disksim`, which owns layout/disk types shared with the
//! execution oracle).
//!
//! # Quickstart
//!
//! ```
//! use dblayout_catalog::tpch::tpch_catalog;
//! use dblayout_core::advisor::{Advisor, AdvisorConfig};
//! use dblayout_disksim::paper_disks;
//!
//! let catalog = tpch_catalog(0.1);
//! let disks = paper_disks();
//! let workload = "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;";
//! let rec = Advisor::new(&catalog, &disks)
//!     .recommend_sql(workload, &AdvisorConfig::default())
//!     .unwrap();
//! assert!(rec.estimated_improvement_pct >= 0.0);
//! ```

pub mod access_graph;
pub mod advisor;
pub mod concurrency;
pub mod constraints;
pub mod costmodel;
pub mod deploy;
pub mod exhaustive;
pub mod explain;
pub mod par;
pub mod tsgreedy;

pub use access_graph::{
    build_access_graph, build_access_graph_subplans, extend_access_graph,
    extend_access_graph_traced,
};
pub use advisor::{Advisor, AdvisorConfig, AdvisorError, Recommendation};
pub use concurrency::{
    build_concurrent_access_graph, concurrent_cost_workload, ConcurrentWorkload,
};
pub use constraints::{ConstraintViolation, Constraints};
pub use costmodel::{
    statement_cost, workload_cost, CostDelta, CostModel, DeltaEvaluator, EvalScratch,
};
pub use dblayout_disksim::{Layout, LayoutError};
pub use deploy::{compile_filegroups, render_script, DeploymentPlan, Filegroup};
pub use exhaustive::exhaustive_search;
pub use explain::{render_narrative, NarrativeNames};
pub use par::{available_parallelism, with_pool};
pub use tsgreedy::{ts_greedy, Partitioner, TsGreedyConfig, TsGreedyResult};
