//! Manageability and availability constraints (paper §2.3).
//!
//! * `Co-Located(R_i, R_k)` — both objects must occupy exactly the same set
//!   of disks (same filegroup), e.g. for unit-of-backup manageability;
//! * `Avail-Requirement(R_i) = A` — every disk holding any part of `R_i`
//!   must have availability class `A`;
//! * data-movement bound — the recommended layout must be reachable from
//!   the current layout by moving at most `max_data_movement_blocks`
//!   (the §2.3.1 incremental-solution constraint).

use std::fmt;

use dblayout_catalog::ObjectId;
use dblayout_disksim::{Availability, DiskSpec, Layout};

/// A violated constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintViolation {
    /// Two co-located objects sit on different disk sets.
    NotCoLocated {
        /// First object.
        a: ObjectId,
        /// Second object.
        b: ObjectId,
    },
    /// An object touches a disk of the wrong availability class.
    AvailabilityViolated {
        /// The object.
        object: ObjectId,
        /// Offending disk.
        disk: usize,
        /// Required class.
        required: Availability,
    },
    /// Too much data movement from the current layout.
    TooMuchMovement {
        /// Blocks that would move.
        moved: u64,
        /// The configured bound.
        bound: u64,
    },
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintViolation::NotCoLocated { a, b } => {
                write!(f, "objects #{} and #{} must share a disk set", a.0, b.0)
            }
            ConstraintViolation::AvailabilityViolated {
                object,
                disk,
                required,
            } => write!(
                f,
                "object #{} placed on disk {} which lacks required availability {:?}",
                object.0, disk, required
            ),
            ConstraintViolation::TooMuchMovement { moved, bound } => {
                write!(f, "layout requires moving {moved} blocks > bound {bound}")
            }
        }
    }
}

impl std::error::Error for ConstraintViolation {}

/// The constraint set handed to the search (all optional).
#[derive(Debug, Clone, Default)]
pub struct Constraints {
    /// Pairs that must share identical disk sets.
    pub co_located: Vec<(ObjectId, ObjectId)>,
    /// Per-object availability requirements.
    pub avail: Vec<(ObjectId, Availability)>,
    /// Bound on blocks moved relative to `current_layout`.
    pub max_data_movement_blocks: Option<u64>,
    /// The currently deployed layout (required when a movement bound is set).
    pub current_layout: Option<Layout>,
}

impl Constraints {
    /// No constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// Declares `a` and `b` co-located.
    pub fn co_locate(mut self, a: ObjectId, b: ObjectId) -> Self {
        self.co_located.push((a, b));
        self
    }

    /// Requires availability class `req` for `object`.
    pub fn require_avail(mut self, object: ObjectId, req: Availability) -> Self {
        self.avail.push((object, req));
        self
    }

    /// Bounds data movement from `current`.
    pub fn bound_movement(mut self, current: Layout, max_blocks: u64) -> Self {
        self.current_layout = Some(current);
        self.max_data_movement_blocks = Some(max_blocks);
        self
    }

    /// Union-find grouping of objects by co-location: `group[i]` is the
    /// representative object index of object `i`'s co-location group.
    pub fn co_location_groups(&self, n_objects: usize) -> Vec<usize> {
        let mut parent: Vec<usize> = (0..n_objects).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for &(a, b) in &self.co_located {
            let ra = find(&mut parent, a.index());
            let rb = find(&mut parent, b.index());
            if ra != rb {
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi] = lo;
            }
        }
        (0..n_objects).map(|i| find(&mut parent, i)).collect()
    }

    /// Disks object `i` may touch (availability requirements applied).
    /// `None` means unrestricted.
    pub fn eligible_disks(&self, object: ObjectId, disks: &[DiskSpec]) -> Option<Vec<usize>> {
        let req = self
            .avail
            .iter()
            .find(|(o, _)| *o == object)
            .map(|(_, a)| *a)?;
        Some(
            disks
                .iter()
                .enumerate()
                .filter(|(_, d)| d.avail == req)
                .map(|(j, _)| j)
                .collect(),
        )
    }

    /// Checks every constraint against a concrete layout.
    pub fn check(&self, layout: &Layout, disks: &[DiskSpec]) -> Result<(), ConstraintViolation> {
        for &(a, b) in &self.co_located {
            if layout.disks_of(a.index()) != layout.disks_of(b.index()) {
                return Err(ConstraintViolation::NotCoLocated { a, b });
            }
        }
        for &(object, required) in &self.avail {
            for j in layout.disks_of(object.index()) {
                if disks[j].avail != required {
                    return Err(ConstraintViolation::AvailabilityViolated {
                        object,
                        disk: j,
                        required,
                    });
                }
            }
        }
        if let (Some(bound), Some(current)) =
            (self.max_data_movement_blocks, self.current_layout.as_ref())
        {
            let moved = layout.data_movement_from(current);
            if moved > bound {
                return Err(ConstraintViolation::TooMuchMovement { moved, bound });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_disksim::uniform_disks;

    fn disks() -> Vec<DiskSpec> {
        let mut d = uniform_disks(4, 10_000, 10.0, 20.0);
        d[0].avail = Availability::Mirroring;
        d[1].avail = Availability::Mirroring;
        d
    }

    #[test]
    fn co_location_ok_when_same_disks() {
        let mut l = Layout::empty(vec![100, 100], 4);
        l.place(0, &[(2, 1.0), (3, 1.0)]);
        l.place(1, &[(2, 1.0), (3, 2.0)]); // fractions differ, disk set same
        let c = Constraints::none().co_locate(ObjectId(0), ObjectId(1));
        c.check(&l, &disks()).unwrap();
    }

    #[test]
    fn co_location_violation_detected() {
        let mut l = Layout::empty(vec![100, 100], 4);
        l.place(0, &[(2, 1.0)]);
        l.place(1, &[(3, 1.0)]);
        let c = Constraints::none().co_locate(ObjectId(0), ObjectId(1));
        assert!(matches!(
            c.check(&l, &disks()),
            Err(ConstraintViolation::NotCoLocated { .. })
        ));
    }

    #[test]
    fn availability_enforced() {
        let mut l = Layout::empty(vec![100], 4);
        l.place(0, &[(0, 1.0), (2, 1.0)]); // disk 2 is not mirrored
        let c = Constraints::none().require_avail(ObjectId(0), Availability::Mirroring);
        assert!(matches!(
            c.check(&l, &disks()),
            Err(ConstraintViolation::AvailabilityViolated { disk: 2, .. })
        ));
        let mut ok = Layout::empty(vec![100], 4);
        ok.place(0, &[(0, 1.0), (1, 1.0)]);
        c.check(&ok, &disks()).unwrap();
    }

    #[test]
    fn eligible_disks_filters_by_class() {
        let c = Constraints::none().require_avail(ObjectId(0), Availability::Mirroring);
        assert_eq!(c.eligible_disks(ObjectId(0), &disks()), Some(vec![0, 1]));
        assert_eq!(c.eligible_disks(ObjectId(1), &disks()), None);
    }

    #[test]
    fn movement_bound_enforced() {
        let ds = disks();
        let current = Layout::full_striping(vec![400], &ds);
        let mut proposed = Layout::empty(vec![400], 4);
        proposed.place(0, &[(0, 1.0)]); // move 300 blocks onto disk 0
        let c = Constraints::none().bound_movement(current.clone(), 100);
        assert!(matches!(
            c.check(&proposed, &ds),
            Err(ConstraintViolation::TooMuchMovement {
                moved: 300,
                bound: 100
            })
        ));
        let generous = Constraints::none().bound_movement(current, 500);
        generous.check(&proposed, &ds).unwrap();
    }

    #[test]
    fn groups_are_transitive() {
        let c = Constraints::none()
            .co_locate(ObjectId(0), ObjectId(1))
            .co_locate(ObjectId(1), ObjectId(2));
        let groups = c.co_location_groups(4);
        assert_eq!(groups[0], groups[1]);
        assert_eq!(groups[1], groups[2]);
        assert_ne!(groups[3], groups[0]);
    }

    #[test]
    fn empty_constraints_always_pass() {
        let ds = disks();
        let l = Layout::full_striping(vec![10, 20], &ds);
        Constraints::none().check(&l, &ds).unwrap();
    }
}
