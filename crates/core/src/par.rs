//! `dblayout-par` — a std-only scoped-thread evaluation pool with a
//! deterministic reduction contract.
//!
//! TS-GREEDY's step-2 loop scores hundreds of candidate moves per
//! iteration through the Figure-7 cost model — the dominant hot path.
//! [`with_pool`] fans that scoring across a persistent worker pool while
//! keeping the search's output **byte-identical at any thread count**:
//!
//! * Work is split into *contiguous* chunks ([`chunk_range`]), so worker
//!   `w` always owns the same candidate indices for a given
//!   `(len, threads)` — no work stealing, no racy assignment.
//! * Workers only *score*; they never adopt. The caller reduces the
//!   per-worker results in worker order, which is candidate-enumeration
//!   order, so tie-breaking ("earliest strictly-better candidate wins")
//!   matches a sequential scan exactly.
//! * Floating-point arithmetic happens per candidate against an immutable
//!   snapshot; no cross-candidate accumulation order depends on thread
//!   interleaving.
//!
//! The pool is spawned once per search (not per iteration) via
//! [`std::thread::scope`], so per-iteration dispatch costs two channel
//! hops per worker rather than a thread spawn. A worker that dies
//! mid-iteration (a panic in the scoring closure) is tolerated: its chunk
//! is recomputed inline by the dispatcher, so a transient worker failure
//! degrades throughput, never correctness. See DESIGN.md §7 for the full
//! determinism argument.

use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use dblayout_obs::counters::{self, Counter};

/// Worker threads the host offers, with a floor of 1 (the CLI's
/// `--threads` default; [`std::thread::available_parallelism`] can fail in
/// restricted environments, in which case parallelism is unavailable
/// anyway).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Adaptive chunking: how many of `threads` workers to actually engage for
/// `items` units of work.
///
/// At small scale the two channel hops per worker cost more than the work
/// itself (the tpch_mix 4-thread regression: ~70 candidates per iteration
/// split four ways lost to the 1-thread run), so dispatch width scales
/// with the work: one worker per `min_chunk` items, clamped to
/// `[1, threads]`. `min_chunk == 0` disables adaptation and always engages
/// every worker (the escape hatch for tests that exercise the full fan-out
/// on small fixtures). Deterministic: a pure function of its inputs, so a
/// given instance sees the same dispatch widths at every thread count —
/// and a 1-thread run is unaffected entirely.
pub fn effective_workers(items: usize, threads: usize, min_chunk: usize) -> usize {
    if threads <= 1 {
        return 1;
    }
    if min_chunk == 0 {
        return threads;
    }
    (items / min_chunk).clamp(1, threads)
}

/// The contiguous slice of `0..len` owned by worker `w` of `workers`.
///
/// Balanced to within one item, deterministic in its inputs, and covering:
/// concatenating the ranges for `w = 0..workers` yields exactly `0..len`
/// in order — the property the in-order reduction relies on.
pub fn chunk_range(len: usize, workers: usize, w: usize) -> Range<usize> {
    let workers = workers.max(1);
    if w >= workers {
        return len..len;
    }
    let base = len / workers;
    let rem = len % workers;
    let start = w * base + w.min(rem);
    let size = base + usize::from(w < rem);
    start..(start + size).min(len)
}

/// One worker's channel pair: jobs in, results out. A dedicated result
/// lane per worker (rather than one shared channel) means a dead worker is
/// detected by its closed channel instead of a hung `recv`.
struct Lane<J, O> {
    job_tx: Sender<Arc<J>>,
    result_rx: Receiver<O>,
}

/// Handle to a running evaluation pool; see [`with_pool`].
pub struct Pool<'p, J, O> {
    threads: usize,
    process: &'p (dyn Fn(usize, &J) -> O + Sync),
    /// Empty when `threads == 1`: dispatch then runs inline on the caller's
    /// thread and no workers exist at all.
    lanes: Vec<Lane<J, O>>,
}

impl<J, O> Pool<'_, J, O> {
    /// The pool's worker count (at least 1; 1 means inline execution).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Ships one job snapshot to every worker and collects their outputs
    /// in worker order (`outputs[w]` is worker `w`'s result).
    ///
    /// With one thread the closure runs inline as worker 0. If a worker
    /// died (its scoring closure panicked on an earlier job), its chunk is
    /// recomputed inline here with the same `(w, job)` arguments, so the
    /// returned vector always has `threads()` entries with identical
    /// content to an all-healthy run.
    pub fn dispatch(&self, job: Arc<J>) -> Vec<O> {
        self.dispatch_to(job, self.threads)
    }

    /// [`Pool::dispatch`] restricted to the first `workers` lanes — the
    /// adaptive-chunking entry point (see [`effective_workers`]).
    ///
    /// `workers` is clamped to `[1, threads()]`. With `workers == 1` the
    /// closure runs inline as worker 0 with zero channel hops even when
    /// the pool has live workers — small iterations fall back to exactly
    /// the serial path. The returned vector has `workers` entries; the
    /// caller's `process` must derive chunk ownership from the job (which
    /// therefore carries the engaged-worker count, not the pool width).
    pub fn dispatch_to(&self, job: Arc<J>, workers: usize) -> Vec<O> {
        let workers = workers.clamp(1, self.threads);
        if self.lanes.is_empty() || workers == 1 {
            return vec![(self.process)(0, &job)];
        }
        let engaged = &self.lanes[..workers];
        let delivered: Vec<bool> = engaged
            .iter()
            .map(|lane| lane.job_tx.send(job.clone()).is_ok())
            .collect();
        let mut outputs = Vec::with_capacity(workers);
        for (w, lane) in engaged.iter().enumerate() {
            let out = if delivered[w] {
                lane.result_rx.recv().ok()
            } else {
                None
            };
            outputs.push(out.unwrap_or_else(|| {
                // Scheduling-class accounting: fallbacks vary with timing
                // and never enter the deterministic fingerprint.
                counters::incr(Counter::ParPoolFallbacks);
                (self.process)(w, &job)
            }));
        }
        outputs
    }
}

/// Runs `body` with a pool of `threads` workers, each applying `process`
/// to every dispatched job; tears the pool down (joining all workers)
/// before returning `body`'s result.
///
/// `process(w, &job)` must derive worker `w`'s share of the work from the
/// job itself (conventionally via [`chunk_range`]) and must not mutate
/// shared state — the determinism contract is that `process` is a pure
/// function of `(w, job)`. `threads <= 1` spawns nothing and evaluates
/// inline, so the single-threaded path has zero concurrency overhead.
pub fn with_pool<J, O, R>(
    threads: usize,
    process: &(impl Fn(usize, &J) -> O + Sync),
    body: impl FnOnce(&Pool<'_, J, O>) -> R,
) -> R
where
    J: Send + Sync,
    O: Send,
{
    let threads = threads.max(1);
    if threads == 1 {
        return body(&Pool {
            threads,
            process,
            lanes: Vec::new(),
        });
    }
    std::thread::scope(|scope| {
        let mut lanes = Vec::with_capacity(threads);
        for w in 0..threads {
            let (job_tx, job_rx) = channel::<Arc<J>>();
            let (result_tx, result_rx) = channel::<O>();
            scope.spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    // A panicking scorer must not unwind through the scope
                    // (that would re-raise at join and kill the search the
                    // dispatcher just rescued): catch it, drop this
                    // worker's lanes, and let `dispatch` recompute the
                    // chunk inline. The job snapshot is immutable, so a
                    // mid-score panic leaves no partial state behind.
                    let out =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| process(w, &job)));
                    drop(job); // release the snapshot before handing back
                    match out {
                        Ok(out) => {
                            if result_tx.send(out).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
            });
            lanes.push(Lane { job_tx, result_rx });
        }
        body(&Pool {
            threads,
            process,
            lanes,
        })
        // Dropping the pool closes every job channel; workers drain and
        // exit, and the scope joins them.
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn chunk_ranges_partition_the_input() {
        for len in [0usize, 1, 2, 7, 8, 9, 100] {
            for workers in [1usize, 2, 3, 4, 8, 13] {
                let mut covered = Vec::new();
                for w in 0..workers {
                    let r = chunk_range(len, workers, w);
                    assert!(r.start <= r.end);
                    covered.extend(r);
                }
                let expected: Vec<usize> = (0..len).collect();
                assert_eq!(covered, expected, "len={len} workers={workers}");
                // Balanced to within one item.
                let sizes: Vec<usize> = (0..workers)
                    .map(|w| chunk_range(len, workers, w).len())
                    .collect();
                let (min, max) = (sizes.iter().min(), sizes.iter().max());
                assert!(max.unwrap_or(&0) - min.unwrap_or(&0) <= 1);
            }
        }
        // Out-of-range workers own nothing.
        assert!(chunk_range(10, 4, 4).is_empty());
    }

    #[test]
    fn dispatch_outputs_are_identical_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let score = |w: usize, job: &Vec<u64>| -> Vec<u64> {
            chunk_range(job.len(), 4, w)
                .map(|i| job[i] * 3 + 1)
                .collect()
        };
        // Reference: 4 "workers" inline.
        let reference: Vec<u64> = (0..4).flat_map(|w| score(w, &items)).collect();
        for threads in [1usize, 2, 4, 8] {
            let score_t = |w: usize, job: &Vec<u64>| -> Vec<u64> {
                chunk_range(job.len(), threads, w)
                    .map(|i| job[i] * 3 + 1)
                    .collect()
            };
            let flat: Vec<u64> = with_pool(threads, &score_t, |pool| {
                assert_eq!(pool.threads(), threads.max(1));
                pool.dispatch(Arc::new(items.clone()))
                    .into_iter()
                    .flatten()
                    .collect()
            });
            assert_eq!(flat, reference, "threads={threads}");
        }
    }

    #[test]
    fn pool_survives_repeated_dispatch() {
        let sum = |w: usize, job: &Vec<u64>| -> u64 {
            chunk_range(job.len(), 3, w).map(|i| job[i]).sum()
        };
        with_pool(3, &sum, |pool| {
            for round in 0..10u64 {
                let items: Vec<u64> = (0..round * 10).collect();
                let total: u64 = pool.dispatch(Arc::new(items.clone())).into_iter().sum();
                assert_eq!(total, items.iter().sum::<u64>());
            }
        });
    }

    #[test]
    fn dead_worker_chunk_is_recomputed_inline() {
        // Worker 1 panics on its first job only; the dispatcher must
        // recover its chunk inline and later dispatches must keep working.
        static TRIPPED: AtomicBool = AtomicBool::new(false);
        TRIPPED.store(false, Ordering::SeqCst);
        let score = |w: usize, job: &Vec<u64>| -> u64 {
            if w == 1 && !TRIPPED.swap(true, Ordering::SeqCst) {
                panic!("induced worker failure");
            }
            chunk_range(job.len(), 3, w).map(|i| job[i]).sum()
        };
        with_pool(3, &score, |pool| {
            let items: Vec<u64> = (0..30).collect();
            let expected: u64 = items.iter().sum();
            let first: u64 = pool.dispatch(Arc::new(items.clone())).into_iter().sum();
            assert_eq!(first, expected);
            // Worker 1 is gone; its chunk keeps being served inline.
            let second: u64 = pool.dispatch(Arc::new(items)).into_iter().sum();
            assert_eq!(second, expected);
        });
    }

    #[test]
    fn effective_workers_scales_with_work() {
        assert_eq!(effective_workers(0, 4, 256), 1);
        assert_eq!(effective_workers(255, 4, 256), 1);
        assert_eq!(effective_workers(512, 4, 256), 2);
        assert_eq!(effective_workers(10_000, 4, 256), 4);
        // 0 disables adaptation; 1 thread is always inline.
        assert_eq!(effective_workers(1, 4, 0), 4);
        assert_eq!(effective_workers(1_000_000, 1, 256), 1);
    }

    #[test]
    fn dispatch_to_engages_only_requested_lanes() {
        type Job = (Vec<u64>, usize);
        let sum = |w: usize, job: &Job| -> u64 {
            chunk_range(job.0.len(), job.1, w).map(|i| job.0[i]).sum()
        };
        with_pool(4, &sum, |pool| {
            let items: Vec<u64> = (0..41).collect();
            let expected: u64 = items.iter().sum();
            for workers in [1usize, 2, 3, 4, 9] {
                let eff = workers.clamp(1, 4);
                let outs = pool.dispatch_to(Arc::new((items.clone(), eff)), workers);
                assert_eq!(outs.len(), eff, "workers={workers}");
                assert_eq!(outs.iter().sum::<u64>(), expected, "workers={workers}");
            }
        });
    }

    #[test]
    fn single_thread_runs_inline_without_workers() {
        let tid = std::thread::current().id();
        let check = move |_w: usize, _job: &()| -> bool { std::thread::current().id() == tid };
        let inline = with_pool(1, &check, |pool| pool.dispatch(Arc::new(())));
        assert_eq!(inline, vec![true]);
        // threads == 0 is clamped to 1.
        let clamped = with_pool(0, &check, |pool| pool.dispatch(Arc::new(())));
        assert_eq!(clamped, vec![true]);
    }
}
