//! TS-GREEDY: the two-step greedy search (paper §6.2, Figure 9).
//!
//! **Step 1 — minimize co-location.** Partition the access graph into `m`
//! parts maximizing the cut (co-accessed objects land apart), then assign
//! partitions, in descending total-node-weight order, to the smallest set
//! of yet-unused drives (fastest first) that can hold them; when drives run
//! out, merge with the already-assigned partition that shares the least
//! co-access.
//!
//! **Step 2 — grow I/O parallelism.** Repeatedly try widening each object
//! by up to `k` additional drives (allocating proportionally to transfer
//! rates, footnote 1), keep the single best-improving move, and stop when
//! no move improves the estimated workload cost.
//!
//! Extensions beyond the paper's description (its §6.2 omits them "due to
//! lack of space"): co-location constraints make whole groups move
//! together, availability constraints restrict each group's eligible
//! drives, and a data-movement bound rejects moves that stray too far from
//! the current layout.

use std::collections::BinaryHeap;
use std::sync::Arc;

use dblayout_disksim::{DiskSpec, Layout};
use dblayout_obs::counters::{self, Counter};
use dblayout_obs::{f, Collector, Span};
use dblayout_partition::{
    max_cut_partition, multilevel_max_cut, multilevel_max_cut_with, Graph, MultilevelConfig,
};
use dblayout_planner::Subplan;

use crate::constraints::Constraints;
use crate::costmodel::{CostModel, DeltaEvaluator, EvalScratch};
use crate::par;

/// Step-1 partitioning engine (see DESIGN.md §11).
#[derive(Debug, Clone)]
pub enum Partitioner {
    /// KL directly on the (contracted) access graph — the paper's
    /// algorithm, O(n²·deg) per pass. Fine to hundreds of nodes.
    Direct,
    /// The multilevel V-cycle: heavy-edge coarsen, KL on the coarsest
    /// graph, uncoarsen with boundary refinement. Near-linear, built for
    /// the mega-scale family.
    Multilevel(MultilevelConfig),
    /// [`Partitioner::Direct`] at or below `threshold` graph nodes,
    /// [`Partitioner::Multilevel`] (default config) above. The default:
    /// paper-scale searches stay bit-identical to Direct (multilevel
    /// never engages), mega-scale searches get the near-linear path.
    Auto {
        /// Largest node count still sent to Direct.
        threshold: usize,
    },
}

impl Default for Partitioner {
    fn default() -> Self {
        // Below ~200 nodes a KL pass is microseconds — coarsening
        // overhead isn't worth buying back, and Direct keeps the
        // committed paper-scale results bit-identical.
        Partitioner::Auto { threshold: 192 }
    }
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct TsGreedyConfig {
    /// Maximum drives added per greedy move (paper's `k`; experiments use 1).
    pub k: usize,
    /// Manageability/availability constraints.
    pub constraints: Constraints,
    /// Cost model used for the objective.
    pub cost_model: CostModel,
    /// Trace collector for search decisions (disabled by default; the hot
    /// loop pays one branch per iteration when off). See DESIGN.md §6 for
    /// the span taxonomy.
    pub collector: Collector,
    /// Worker threads for candidate scoring (`dblayout-par`). 1 (the
    /// default) evaluates inline with no concurrency machinery; any value
    /// produces byte-identical layouts, costs, and deterministic traces —
    /// candidates are scored in parallel but adopted in the fixed
    /// sequential candidate order (DESIGN.md §7). The CLI defaults this to
    /// the host's available parallelism.
    pub threads: usize,
    /// Score every candidate with a full Figure-7 re-evaluation instead of
    /// the incremental delta evaluator. The delta path is bit-identical to
    /// full re-evaluation, so this knob never changes results; it is kept
    /// as the reference engine (the differential baseline `search_bench`
    /// measures speedup against).
    pub full_reevaluation: bool,
    /// Start the greedy search from this layout instead of running step 1
    /// (`dblayout-relayout`). Seeded searches also enumerate *narrow*
    /// (drop one drive) and *swap* (drop one, add one) moves per group, so
    /// the search can walk away from the seed under a movement bound —
    /// pure widening from an already-deployed layout usually has nowhere
    /// to go. `None` (the default) is the paper's two-step search,
    /// bit-identical to the pre-seeding behaviour.
    pub seed: Option<Layout>,
    /// Step-1 partitioning engine. The default ([`Partitioner::Auto`])
    /// keeps paper-scale instances on the direct KL path bit-for-bit and
    /// switches to multilevel coarsening above its node threshold.
    pub partitioner: Partitioner,
    /// Pruned widening: re-score only the `prune_width` groups with the
    /// highest stale gain each iteration (priority-queue selection,
    /// gain-descending with group-id-ascending ties; unexamined groups
    /// rank +∞). `0` (the default) scores every group every iteration —
    /// the paper's exact greedy, and the bit-compatible baseline. When
    /// the pruned frontier finds no improving move, one full sweep
    /// decides between adopting and terminating, so a pruned search never
    /// stops while the unpruned one would keep going.
    pub prune_width: usize,
    /// Adaptive dispatch: engage one worker per `min_chunk` candidates,
    /// clamped to `[1, threads]` ([`par::effective_workers`]). Iterations
    /// below the threshold run inline — the fix for small-instance
    /// parallel regressions where two channel hops per worker outweighed
    /// the scoring work. `0` always engages every worker. Either setting
    /// yields byte-identical results at any thread count.
    pub min_chunk: usize,
    /// Stop after this many adopted moves (`0` = run to convergence).
    /// A measurement budget for benchmarks on mega-scale instances; the
    /// prefix of adopted moves is identical to an unbudgeted run's.
    pub max_iterations: usize,
}

impl Default for TsGreedyConfig {
    fn default() -> Self {
        Self {
            k: 1,
            constraints: Constraints::none(),
            cost_model: CostModel::default(),
            collector: Collector::default(),
            threads: 1,
            full_reevaluation: false,
            seed: None,
            partitioner: Partitioner::default(),
            prune_width: 0,
            // One chunk ≈ the work that amortizes a dispatch round-trip
            // (measured on tpch_mix, where 4-thread dispatch of ~70
            // candidates lost to the serial scan).
            min_chunk: 256,
            max_iterations: 0,
        }
    }
}

/// Search failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The constraints admit no placement for some object.
    Infeasible(String),
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::Infeasible(why) => write!(f, "constraints are infeasible: {why}"),
        }
    }
}

impl std::error::Error for SearchError {}

/// Outcome of a TS-GREEDY run.
#[derive(Debug, Clone)]
pub struct TsGreedyResult {
    /// The recommended layout.
    pub layout: Layout,
    /// The layout the greedy loop started from: step 1's pure
    /// co-location minimization, or the caller's seed in seeded mode.
    pub initial_layout: Layout,
    /// Workload cost of `initial_layout`.
    pub initial_cost: f64,
    /// Workload cost of `layout`.
    pub final_cost: f64,
    /// Greedy iterations adopted.
    pub iterations: usize,
    /// Cost-model invocations (for scalability reporting).
    pub cost_evaluations: usize,
}

/// Runs TS-GREEDY.
///
/// * `sizes[i]` — object sizes in blocks (`|R_i|`);
/// * `graph` — the workload's access graph over the same object ids;
/// * `workload` — pre-decomposed weighted sub-plans (see
///   [`crate::costmodel::decompose_workload`]);
/// * `disks` — the drive set.
pub fn ts_greedy(
    sizes: &[u64],
    graph: &Graph,
    workload: &[(Vec<Subplan>, f64)],
    disks: &[DiskSpec],
    cfg: &TsGreedyConfig,
) -> Result<TsGreedyResult, SearchError> {
    assert_eq!(sizes.len(), graph.len(), "graph must cover all objects");
    let n = sizes.len();
    let m = disks.len();
    assert!(m >= 1, "need at least one disk");

    // ---- Group objects by co-location constraints. ----
    let group_of = cfg.constraints.co_location_groups(n);
    let mut reps: Vec<usize> = group_of.clone();
    reps.sort_unstable();
    reps.dedup();
    let group_index: Vec<usize> = group_of
        .iter()
        .map(|g| reps.partition_point(|&r| r < *g))
        .collect();
    let g_count = reps.len();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); g_count];
    for (i, &gi) in group_index.iter().enumerate() {
        members[gi].push(i);
    }

    let collector = &cfg.collector;
    let search_span = collector.span(
        "tsgreedy.search",
        if collector.enabled() {
            vec![
                f("objects", n),
                f("groups", g_count),
                f("disks", m),
                f("k", cfg.k),
            ]
        } else {
            Vec::new()
        },
    );

    // Contracted access graph over groups.
    let mut cg = Graph::new(g_count);
    for (i, &gi) in group_index.iter().enumerate() {
        cg.add_node_weight(gi, graph.node_weight(i));
    }
    for (u, v, w) in graph.edges() {
        let (gu, gv) = (group_index[u], group_index[v]);
        if gu != gv {
            cg.add_edge(gu, gv, w);
        }
    }

    // Eligible disks per group (availability intersection).
    let mut eligible: Vec<Vec<usize>> = Vec::with_capacity(g_count);
    for mem in &members {
        let mut allowed: Vec<usize> = (0..m).collect();
        for &i in mem {
            if let Some(e) = cfg
                .constraints
                .eligible_disks(dblayout_catalog::ObjectId(i as u32), disks)
            {
                allowed.retain(|j| e.contains(j));
            }
        }
        if allowed.is_empty() {
            return Err(SearchError::Infeasible(format!(
                "co-location group of object {} has no disk satisfying its availability requirements",
                mem[0]
            )));
        }
        eligible.push(allowed);
    }

    let seeded = cfg.seed.is_some();
    let mut layout = if let Some(seed) = &cfg.seed {
        // ---- Seeded mode (dblayout-relayout): adopt the caller's layout
        // as the starting point and skip step 1 entirely. The seed is the
        // deployed layout of a running system, so it must already be
        // Definition-2 valid for these objects and drives.
        if seed.object_count() != n || seed.disk_count() != m {
            return Err(SearchError::Infeasible(format!(
                "seed layout is {}x{} but the search covers {n} objects on {m} disks",
                seed.object_count(),
                seed.disk_count()
            )));
        }
        if let Err(e) = seed.validate(disks) {
            return Err(SearchError::Infeasible(format!(
                "seed layout is invalid: {e}"
            )));
        }
        if search_span.enabled() {
            search_span.event("tsgreedy.seed", vec![f("objects", n), f("disks", m)]);
        }
        seed.clone()
    } else {
        step1_layout(
            sizes,
            disks,
            &cg,
            &members,
            &eligible,
            &group_index,
            &cfg.partitioner,
            &search_span,
        )
    };

    let model = &cfg.cost_model;
    let mut evals = 0usize;

    let mut eval = model.delta_evaluator(workload, &layout, disks);
    evals += 1;
    // Building the evaluator runs one full Figure-7 costing of `layout`.
    counters::incr(Counter::CostmodelFullRecosts);
    let mut cost = eval.total();
    let initial_layout = layout.clone();
    let initial_cost = cost;
    if search_span.enabled() {
        search_span.event("tsgreedy.step1", vec![f("cost_ms", initial_cost)]);
    }

    // ---- Step 2: greedy parallelism widening (dblayout-par). ----
    // A move touches only one co-location group, so the delta evaluator
    // re-costs just the sub-plans reading that group's objects, re-summing
    // in full-evaluation order — bit-identical totals at a fraction of the
    // work. Validity is checked the same way: only the moved rows are
    // re-examined and per-disk usage is patched with exact integer deltas,
    // so the verdict matches `Layout::validate` on every candidate. Candidates are *scored* in parallel against an immutable
    // per-iteration snapshot and *adopted* in the fixed sequential
    // candidate order: each worker owns a contiguous chunk of the
    // enumeration, tracks its chunk's earliest strict minimum, and the
    // reduction merges chunk winners in worker (= candidate) order with a
    // strict `<` — exactly the sequential scan's earliest-wins tie
    // semantics, so the chosen layout is byte-identical at any thread
    // count (DESIGN.md §7).
    let threads = cfg.threads.max(1);
    let full_reevaluation = cfg.full_reevaluation;

    /// One candidate move: re-place `group` onto (current ∖ `drop`) ∪
    /// `add`. Classic widening keeps `drop` empty; seeded searches also
    /// enumerate narrow (`add` empty) and swap (one of each) moves.
    struct Move {
        group: usize,
        add: Vec<usize>,
        drop: Vec<usize>,
    }
    /// Per-candidate scoring outcome, in enumeration order.
    enum Scored {
        InvalidLayout,
        ConstraintViolation,
        Costed(f64),
    }
    /// A chunk's earliest strictly-improving minimum. Workers report only
    /// the winning index and cost; the dispatcher re-derives the winning
    /// layout and its cost delta once per *adopted* iteration, so the hot
    /// scoring loop never clones a layout or materializes a delta.
    struct ChunkBest {
        index: usize,
        cost: f64,
    }
    struct Chunk {
        outcomes: Vec<Scored>,
        best: Option<ChunkBest>,
    }
    /// Reusable per-worker scratch: the cost evaluator's touched-set
    /// buffer plus the incremental validity check's usage/apportionment
    /// buffers. One per chunk invocation; every allocation in the
    /// candidate loop lives here.
    #[derive(Default)]
    struct WorkerScratch {
        eval: EvalScratch,
        usage: Vec<u64>,
        row: Vec<u64>,
        apportion: Vec<(usize, f64)>,
    }
    /// Immutable per-iteration snapshot shipped to every worker.
    struct Job<'a> {
        layout: Layout,
        eval: DeltaEvaluator<'a>,
        cost: f64,
        current_sets: Vec<Vec<usize>>,
        moves: Vec<Move>,
        /// Engaged worker count for this dispatch (adaptive chunking);
        /// chunk ownership derives from this, not the pool width.
        workers: usize,
        /// `layout.disk_count() == disks.len()` (Definition 2 dimensions).
        dims_ok: bool,
        /// `layout.blocks_on(i)` for every object, flattened with stride
        /// `disks.len()` (incremental engine only).
        base_blocks: Vec<u64>,
        /// `layout.disk_usage()` (incremental engine only).
        base_usage: Vec<u64>,
        /// Per-object row verdicts of `layout` (incremental engine only).
        row_bad: Vec<bool>,
        /// How many entries of `row_bad` are true.
        bad_rows: usize,
    }

    impl Job<'_> {
        /// Incremental Definition-2 check: the same verdict as
        /// `trial.validate(disks).is_ok()` given that `trial` differs from
        /// `self.layout` only in `moved`'s rows. Unmoved rows keep the
        /// snapshot's verdicts, and per-disk usage is patched by swapping
        /// the moved objects' old block counts for their new ones — exact
        /// integer arithmetic (`blocks_on` is deterministic per row), so
        /// the capacity comparison is bit-for-bit the full scan's.
        fn trial_is_valid(
            &self,
            trial: &Layout,
            moved: &[usize],
            disks: &[DiskSpec],
            scratch: &mut WorkerScratch,
        ) -> bool {
            if !self.dims_ok {
                return false;
            }
            let moved_bad = moved.iter().filter(|&&i| self.row_bad[i]).count();
            if self.bad_rows != moved_bad {
                return false; // an unmoved row was already invalid
            }
            if !moved.iter().all(|&i| trial.row_is_valid(i)) {
                return false;
            }
            let m = disks.len();
            scratch.usage.clear();
            scratch.usage.extend_from_slice(&self.base_usage);
            for &i in moved {
                trial.blocks_on_into(i, &mut scratch.row, &mut scratch.apportion);
                let base = &self.base_blocks[i * m..(i + 1) * m];
                for (j, &b) in base.iter().enumerate() {
                    // `usage[j]` still includes `base[j]` (each moved
                    // object is swapped out exactly once), so the
                    // subtraction cannot underflow.
                    scratch.usage[j] = scratch.usage[j] - b + scratch.row[j];
                }
            }
            scratch
                .usage
                .iter()
                .zip(disks)
                .all(|(&used, d)| used <= d.capacity_blocks)
        }
    }

    let members_ref = &members;
    let constraints = &cfg.constraints;
    // Widen `mv.group` onto its current disks ∪ `mv.add` inside `trial`
    // (which must hold the base placement for every other group).
    let widen = |trial: &mut Layout, job: &Job<'_>, mv: &Move| {
        let mut new_set: Vec<usize> = job.current_sets[mv.group]
            .iter()
            .copied()
            .filter(|j| !mv.drop.contains(j))
            .collect();
        new_set.extend_from_slice(&mv.add);
        for &i in &members_ref[mv.group] {
            trial.place_proportional(i, &new_set, disks);
        }
    };
    let score = |w: usize, job: &Job<'_>| -> Chunk {
        let range = par::chunk_range(job.moves.len(), job.workers, w);
        // Scheduling-class accounting: one relaxed add per chunk, so the
        // per-candidate loop below stays free of atomics. Chunk sizes
        // (and re-scored chunks after a dead-worker fallback) depend on
        // the engaged-worker count, so this never joins the deterministic
        // set.
        counters::add(Counter::ParChunkItems, range.len() as u64);
        let mut outcomes = Vec::with_capacity(range.len());
        let mut best: Option<ChunkBest> = None;
        if full_reevaluation {
            // Reference engine: the pre-dblayout-par per-candidate work —
            // a fresh layout clone and a full Definition-2 scan per move.
            for idx in range {
                let mv = &job.moves[idx];
                let mut trial = job.layout.clone();
                widen(&mut trial, job, mv);
                if trial.validate(disks).is_err() {
                    outcomes.push(Scored::InvalidLayout);
                    continue;
                }
                if constraints.check(&trial, disks).is_err() {
                    outcomes.push(Scored::ConstraintViolation);
                    continue;
                }
                let c = job.eval.cost_of_full(&trial);
                outcomes.push(Scored::Costed(c));
                if c < job.cost - 1e-9 && best.as_ref().is_none_or(|b| c < b.cost) {
                    best = Some(ChunkBest {
                        index: idx,
                        cost: c,
                    });
                }
            }
        } else {
            // Incremental engine: one scratch layout per chunk. Each
            // candidate rewrites only the moved group's rows, is validated
            // incrementally against the snapshot, scored through the
            // allocation-free kernel, and restores the rows afterwards —
            // no per-candidate layout clone, no O(objects) validation, no
            // delta materialization.
            let mut trial = job.layout.clone();
            let mut scratch = WorkerScratch::default();
            for idx in range {
                let mv = &job.moves[idx];
                let moved: &[usize] = &members_ref[mv.group];
                widen(&mut trial, job, mv);
                let outcome = if !job.trial_is_valid(&trial, moved, disks, &mut scratch) {
                    Scored::InvalidLayout
                } else if constraints.check(&trial, disks).is_err() {
                    Scored::ConstraintViolation
                } else {
                    let c = job.eval.cost_of_move(&trial, moved, &mut scratch.eval);
                    if c < job.cost - 1e-9 && best.as_ref().is_none_or(|b| c < b.cost) {
                        best = Some(ChunkBest {
                            index: idx,
                            cost: c,
                        });
                    }
                    Scored::Costed(c)
                };
                outcomes.push(outcome);
                for &i in moved {
                    trial.copy_row_from(&job.layout, i);
                }
            }
        }
        Chunk { outcomes, best }
    };

    // Validity snapshot for the incremental engine's O(moved) checks,
    // maintained across iterations: adopting a move refreshes only the
    // moved rows. (The full engine re-derives everything per candidate.)
    let mut base_blocks: Vec<u64> = Vec::new(); // flat, stride m
    let mut base_usage: Vec<u64> = vec![0u64; m];
    let mut row_bad: Vec<bool> = Vec::new();
    let mut bad_rows = 0usize;
    let mut rowbuf: Vec<u64> = Vec::new();
    let mut rembuf: Vec<(usize, f64)> = Vec::new();
    if !full_reevaluation {
        base_blocks = vec![0u64; n * m];
        for i in 0..n {
            layout.blocks_on_into(i, &mut rowbuf, &mut rembuf);
            base_blocks[i * m..(i + 1) * m].copy_from_slice(&rowbuf);
            for (j, b) in rowbuf.iter().enumerate() {
                base_usage[j] += b;
            }
        }
        row_bad = (0..n).map(|i| !layout.row_is_valid(i)).collect();
        bad_rows = row_bad.iter().filter(|&&b| b).count();
    }

    // Pruned widening state: optimistic (+∞) stale gains until a group is
    // first examined, then its best observed cost improvement. A full
    // sweep arbitrates before any termination.
    let mut group_gain: Vec<f64> = vec![f64::INFINITY; g_count];
    let mut force_full = false;
    let prune = cfg.prune_width;

    let mut iterations = 0usize;
    par::with_pool(threads, &score, |pool| loop {
        let iter_span = search_span.child(
            "tsgreedy.iteration",
            if search_span.enabled() {
                vec![f("iter", iterations + 1)]
            } else {
                Vec::new()
            },
        );
        // Priority-queue pruning: pick the `prune` groups with the best
        // stale gains (descending, ties to the smaller group id — the
        // heap's ordering is total, so the active set is deterministic).
        let pruning = prune > 0 && prune < g_count && !force_full;
        let active: Vec<bool> = if pruning {
            let mut heap: BinaryHeap<GroupRank> = (0..g_count)
                .map(|g| GroupRank {
                    gain: group_gain[g],
                    group: g,
                })
                .collect();
            let mut act = vec![false; g_count];
            for _ in 0..prune {
                if let Some(top) = heap.pop() {
                    act[top.group] = true;
                }
            }
            act
        } else {
            vec![true; g_count]
        };
        // Enumerate this iteration's moves in the canonical sequential
        // order (group-major, combination order preserved) — chunk indices
        // and the reduction below both key off this ordering. Pruned-out
        // groups contribute no moves but keep their `current_sets` slot
        // (move records index into it by group id).
        let mut current_sets: Vec<Vec<usize>> = Vec::with_capacity(g_count);
        let mut moves: Vec<Move> = Vec::new();
        for g in 0..g_count {
            let current_set = layout.disks_of(members[g][0]);
            if !active[g] {
                current_sets.push(current_set);
                continue;
            }
            let candidates: Vec<usize> = eligible[g]
                .iter()
                .copied()
                .filter(|j| !current_set.contains(j))
                .collect();
            for combo in combinations_up_to(&candidates, cfg.k) {
                moves.push(Move {
                    group: g,
                    add: combo,
                    drop: Vec::new(),
                });
            }
            if seeded {
                // Narrow: shed one drive (an object must keep ≥ 1 drive).
                if current_set.len() >= 2 {
                    for &d in &current_set {
                        moves.push(Move {
                            group: g,
                            add: Vec::new(),
                            drop: vec![d],
                        });
                    }
                }
                // Swap: trade one current drive for one eligible candidate.
                for &d in &current_set {
                    for &c in &candidates {
                        moves.push(Move {
                            group: g,
                            add: vec![c],
                            drop: vec![d],
                        });
                    }
                }
            }
            current_sets.push(current_set);
        }
        // Adaptive dispatch width: a pure function of the candidate count,
        // so it is identical at every thread count (and trivially so for
        // a 1-thread pool).
        let workers = par::effective_workers(moves.len(), threads, cfg.min_chunk);
        let job = Arc::new(Job {
            layout: layout.clone(),
            eval: eval.clone(),
            cost,
            current_sets,
            moves,
            workers,
            dims_ok: layout.disk_count() == disks.len(),
            base_blocks: base_blocks.clone(),
            base_usage: base_usage.clone(),
            row_bad: row_bad.clone(),
            bad_rows,
        });
        let chunks = pool.dispatch_to(job.clone(), workers);

        // Deterministic reduction. Concatenating chunk outcomes in worker
        // order replays the candidate enumeration exactly, so trace events
        // are emitted by this (the only emitting) thread with the same
        // order and content as a sequential scan.
        if iter_span.enabled() {
            let mut idx = 0usize;
            for chunk in &chunks {
                for outcome in &chunk.outcomes {
                    let mv = &job.moves[idx];
                    idx += 1;
                    let fields = match outcome {
                        Scored::InvalidLayout => candidate_fields(
                            mv.group,
                            &members[mv.group],
                            &mv.add,
                            &mv.drop,
                            None,
                            "invalid_layout",
                        ),
                        Scored::ConstraintViolation => candidate_fields(
                            mv.group,
                            &members[mv.group],
                            &mv.add,
                            &mv.drop,
                            None,
                            "constraint_violation",
                        ),
                        Scored::Costed(c) => {
                            let reason = if *c < cost - 1e-9 {
                                "improves"
                            } else {
                                "no_improvement"
                            };
                            candidate_fields(
                                mv.group,
                                &members[mv.group],
                                &mv.add,
                                &mv.drop,
                                Some((*c, *c - cost)),
                                reason,
                            )
                        }
                    };
                    iter_span.event("tsgreedy.candidate", fields);
                }
            }
            // Per-worker candidate counts are scheduling detail: they vary
            // with the thread count, so they only appear on timed
            // (wall-clock) collectors, never in deterministic traces.
            if collector.timed() {
                let counts: Vec<usize> = chunks.iter().map(|ch| ch.outcomes.len()).collect();
                iter_span.event(
                    "tsgreedy.workers",
                    vec![
                        f("threads", pool.threads()),
                        f("candidates_per_worker", id_list(&counts)),
                    ],
                );
            }
        }
        let scored = chunks
            .iter()
            .map(|ch| {
                ch.outcomes
                    .iter()
                    .filter(|o| matches!(o, Scored::Costed(_)))
                    .count()
            })
            .sum::<usize>();
        evals += scored;
        // Deterministic-class accounting, batched on the dispatcher
        // thread so the reduction (not the workers) owns the counts: the
        // totals replay the sequential enumeration exactly and are
        // byte-identical at any thread count. Every enumerated candidate
        // gets one Definition-2 validity check (incremental or full-scan
        // — same verdicts, same count), and every scored candidate costs
        // one re-cost on the engine's evaluator.
        counters::add(
            Counter::TsgreedyCandidatesEnumerated,
            job.moves.len() as u64,
        );
        counters::add(Counter::TsgreedyValidityChecks, job.moves.len() as u64);
        counters::add(Counter::TsgreedyCandidatesScored, scored as u64);
        counters::add(
            if full_reevaluation {
                Counter::CostmodelFullRecosts
            } else {
                Counter::CostmodelDeltaRecosts
            },
            scored as u64,
        );

        // Refresh pruning gains for every group examined this iteration:
        // a group's stale gain becomes its best observed improvement
        // (negative when nothing improves, -∞ when nothing was even
        // costable), so exhausted groups sink in the priority queue.
        if prune > 0 {
            for (g, gain) in group_gain.iter_mut().enumerate() {
                if active[g] {
                    *gain = f64::NEG_INFINITY;
                }
            }
            let mut idx = 0usize;
            for chunk in &chunks {
                for outcome in &chunk.outcomes {
                    let g = job.moves[idx].group;
                    idx += 1;
                    if let Scored::Costed(c) = outcome {
                        let gain = cost - *c;
                        if gain > group_gain[g] {
                            group_gain[g] = gain;
                        }
                    }
                }
            }
        }

        let mut best: Option<ChunkBest> = None;
        for chunk in chunks {
            if let Some(b) = chunk.best {
                if best.as_ref().is_none_or(|cur| b.cost < cur.cost) {
                    best = Some(b);
                }
            }
        }
        match best {
            Some(b) => {
                let mv = &job.moves[b.index];
                if iter_span.enabled() {
                    let mut fields = vec![
                        f("group", mv.group),
                        f("objects", id_list(&members[mv.group])),
                        f("add_disks", id_list(&mv.add)),
                    ];
                    if !mv.drop.is_empty() {
                        fields.push(f("drop_disks", id_list(&mv.drop)));
                    }
                    fields.push(f("cost_ms", b.cost));
                    fields.push(f("delta_ms", b.cost - cost));
                    iter_span.event("tsgreedy.adopt", fields);
                }
                // Re-derive the winning trial and its delta — once per
                // *adopted* iteration rather than inside every chunk's
                // running-best update. `widen` is deterministic, so this
                // is bit-for-bit the layout the worker scored.
                let mut trial = job.layout.clone();
                widen(&mut trial, &job, mv);
                let delta = if full_reevaluation {
                    counters::incr(Counter::CostmodelFullRecosts);
                    eval.evaluate_full(&trial)
                } else {
                    counters::incr(Counter::CostmodelDeltaRecosts);
                    eval.evaluate_move(&trial, &members[mv.group])
                };
                evals += 1;
                debug_assert_eq!(delta.total.to_bits(), b.cost.to_bits());
                layout = trial;
                eval.apply(&delta);
                cost = b.cost;
                iterations += 1;
                counters::incr(Counter::TsgreedyCandidatesAdopted);
                force_full = false;
                // Patch the validity snapshot's moved rows in place.
                if !full_reevaluation {
                    for &i in &members[mv.group] {
                        layout.blocks_on_into(i, &mut rowbuf, &mut rembuf);
                        let old = &base_blocks[i * m..(i + 1) * m];
                        for (j, (&b_new, &b_old)) in rowbuf.iter().zip(old.iter()).enumerate() {
                            base_usage[j] = base_usage[j] - b_old + b_new;
                        }
                        base_blocks[i * m..(i + 1) * m].copy_from_slice(&rowbuf);
                        let was = row_bad[i];
                        let now = !layout.row_is_valid(i);
                        bad_rows -= usize::from(was);
                        bad_rows += usize::from(now);
                        row_bad[i] = now;
                    }
                }
                iter_span.end();
                if cfg.max_iterations != 0 && iterations >= cfg.max_iterations {
                    break;
                }
            }
            None => {
                if pruning {
                    // The pruned frontier is dry; one full sweep decides
                    // between another adoption and termination, so pruning
                    // never stops a search the full enumeration would
                    // still be improving.
                    if iter_span.enabled() {
                        iter_span.event("tsgreedy.prune_dry", vec![f("cost_ms", cost)]);
                    }
                    iter_span.end();
                    force_full = true;
                    continue;
                }
                if iter_span.enabled() {
                    iter_span.event("tsgreedy.no_move", vec![f("cost_ms", cost)]);
                }
                iter_span.end();
                break;
            }
        }
    });

    search_span.end_with(if collector.enabled() {
        vec![
            f("iterations", iterations),
            f("cost_evaluations", evals),
            f("initial_cost_ms", initial_cost),
            f("final_cost_ms", cost),
        ]
    } else {
        Vec::new()
    });

    Ok(TsGreedyResult {
        layout,
        initial_layout,
        initial_cost,
        final_cost: cost,
        iterations,
        cost_evaluations: evals,
    })
}

/// Priority-queue entry for pruned widening: max-heap on stale gain with
/// ascending-group-id ties, so the active set is a deterministic function
/// of the gain table.
#[derive(PartialEq)]
struct GroupRank {
    gain: f64,
    group: usize,
}

impl Eq for GroupRank {}

impl Ord for GroupRank {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.group.cmp(&self.group))
    }
}

impl PartialOrd for GroupRank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Step 1 of TS-GREEDY (Figure 9): max-cut partition the contracted group
/// graph, assign partitions (heaviest first) to the smallest fastest-first
/// prefix of unused drives that fits, merge with the least co-accessed
/// placed partition when drives run out, and stripe eligible-wide as a
/// last-resort repair if the result is invalid.
#[allow(clippy::too_many_arguments)] // internal plumbing for ts_greedy only
fn step1_layout(
    sizes: &[u64],
    disks: &[DiskSpec],
    cg: &Graph,
    members: &[Vec<usize>],
    eligible: &[Vec<usize>],
    group_index: &[usize],
    partitioner: &Partitioner,
    search_span: &Span,
) -> Layout {
    let m = disks.len();
    let g_count = members.len();
    let p = m.min(g_count).max(1);
    let (assignment, method) = match partitioner {
        Partitioner::Direct => (max_cut_partition(cg, p), "direct"),
        Partitioner::Multilevel(ml) => (multilevel_max_cut_with(cg, p, ml), "multilevel"),
        Partitioner::Auto { threshold } => {
            if cg.len() > *threshold {
                (multilevel_max_cut(cg, p), "multilevel")
            } else {
                (max_cut_partition(cg, p), "direct")
            }
        }
    };
    let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); p]; // group ids
    for (gi, &part) in assignment.iter().enumerate() {
        partitions[part].push(gi);
    }
    partitions.retain(|pt| !pt.is_empty());

    // Descending total node weight.
    partitions.sort_by(|a, b| {
        let wa: f64 = a.iter().map(|&g| cg.node_weight(g)).sum();
        let wb: f64 = b.iter().map(|&g| cg.node_weight(g)).sum();
        wb.total_cmp(&wa)
    });

    let mut layout = Layout::empty(sizes.to_vec(), m);
    let mut remaining: Vec<u64> = disks.iter().map(|d| d.capacity_blocks).collect();
    let mut used = vec![false; m];
    // Disk sets already assigned, parallel to the partitions placed so far.
    let mut placed: Vec<(Vec<usize>, Vec<usize>)> = Vec::new(); // (groups, disk set)

    // Disks sorted fastest-first.
    let mut by_rate: Vec<usize> = (0..m).collect();
    by_rate.sort_by(|&a, &b| {
        disks[b]
            .read_mb_s
            .total_cmp(&disks[a].read_mb_s)
            .then(a.cmp(&b))
    });

    if search_span.enabled() {
        search_span.event(
            "tsgreedy.partition",
            vec![
                f("parts", partitions.len()),
                f("groups", g_count),
                f("method", method),
            ],
        );
    }

    for (part_idx, part) in partitions.iter().enumerate() {
        let part_blocks: u64 = part
            .iter()
            .flat_map(|&g| members[g].iter())
            .map(|&i| sizes[i])
            .sum();
        // Smallest fastest-first prefix of unused disks that fits.
        let unused: Vec<usize> = by_rate.iter().copied().filter(|&j| !used[j]).collect();
        let mut chosen: Option<Vec<usize>> = None;
        for take in 1..=unused.len() {
            let set = &unused[..take];
            if fits(part_blocks, set, disks, &remaining) {
                chosen = Some(set.to_vec());
                break;
            }
        }
        let merged = chosen.is_none();
        let disk_set = match chosen {
            Some(set) => {
                for &j in &set {
                    used[j] = true;
                }
                set
            }
            None => {
                // No disjoint set fits: merge with the previously placed
                // partition sharing the least co-access (Figure 9 step 3).
                let mut best: Option<(usize, f64)> = None;
                for (idx, (groups, _)) in placed.iter().enumerate() {
                    let mut w = 0.0;
                    for &g in part {
                        for &h in groups {
                            w += cg.edge_weight(g, h);
                        }
                    }
                    if best.is_none_or(|(_, bw)| w < bw) {
                        best = Some((idx, w));
                    }
                }
                match best {
                    Some((idx, _)) => placed[idx].1.clone(),
                    // No placed partition at all (e.g. one huge partition,
                    // tiny disks): fall back to every disk.
                    None => (0..m).collect(),
                }
            }
        };

        for &g in part {
            let set: Vec<usize> = disk_set
                .iter()
                .copied()
                .filter(|j| eligible[g].contains(j))
                .collect();
            let set = if set.is_empty() {
                eligible[g].clone() // availability overrides the partition
            } else {
                set
            };
            for &i in &members[g] {
                layout.place_proportional(i, &set, disks);
                let per_disk = layout.blocks_on(i);
                for (j, b) in per_disk.iter().enumerate() {
                    remaining[j] = remaining[j].saturating_sub(*b);
                }
            }
        }
        if search_span.enabled() {
            search_span.event(
                "tsgreedy.assign",
                vec![
                    f("partition", part_idx),
                    f("groups", id_list(part)),
                    f("blocks", part_blocks),
                    f("disks", id_list(&disk_set)),
                    f("merged", merged),
                ],
            );
        }
        placed.push((part.clone(), disk_set));
    }

    // Capacity overruns from merged/overridden placements surface here.
    if layout.validate(disks).is_err() {
        // Last-resort repair: stripe everything eligible-wide.
        for (i, _) in sizes.iter().enumerate() {
            let set = eligible[group_index[i]].clone();
            layout.place_proportional(i, &set, disks);
        }
    }
    layout
}

/// Renders a list of indices as a stable comma-joined trace field
/// (`"0,3,5"`).
fn id_list(ids: &[usize]) -> String {
    let mut out = String::new();
    for (pos, id) in ids.iter().enumerate() {
        if pos > 0 {
            out.push(',');
        }
        out.push_str(&id.to_string());
    }
    out
}

/// Fields for a `tsgreedy.candidate` event; `outcome` carries the
/// predicted cost and delta when the candidate was actually costed. The
/// `drop_disks` field appears only for seeded-mode narrow/swap moves, so
/// classic (unseeded) traces keep their exact pre-seeding bytes.
fn candidate_fields(
    group: usize,
    members: &[usize],
    combo: &[usize],
    dropped: &[usize],
    outcome: Option<(f64, f64)>,
    reason: &str,
) -> Vec<(String, dblayout_obs::FieldValue)> {
    let mut fields = vec![
        f("group", group),
        f("objects", id_list(members)),
        f("add_disks", id_list(combo)),
    ];
    if !dropped.is_empty() {
        fields.push(f("drop_disks", id_list(dropped)));
    }
    if let Some((cost_ms, delta_ms)) = outcome {
        fields.push(f("cost_ms", cost_ms));
        fields.push(f("delta_ms", delta_ms));
    }
    fields.push(f("reason", reason));
    fields
}

/// Does placing `blocks` proportionally (by read rate) on `set` fit within
/// each member's remaining capacity?
fn fits(blocks: u64, set: &[usize], disks: &[DiskSpec], remaining: &[u64]) -> bool {
    let total_rate: f64 = set.iter().map(|&j| disks[j].read_mb_s).sum();
    set.iter().all(|&j| {
        let share = (blocks as f64 * disks[j].read_mb_s / total_rate).ceil() as u64;
        share <= remaining[j]
    })
}

/// All non-empty subsets of `items` with at most `k` elements.
fn combinations_up_to(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut stack: Vec<(usize, Vec<usize>)> = vec![(0, Vec::new())];
    while let Some((start, prefix)) = stack.pop() {
        #[allow(clippy::needless_range_loop)] // i seeds the next stack frame
        for i in start..items.len() {
            let mut next = prefix.clone();
            next.push(items[i]);
            if next.len() < k {
                stack.push((i + 1, next.clone()));
            }
            out.push(next);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_graph::build_access_graph;
    use crate::costmodel::decompose_workload;
    use dblayout_catalog::ObjectId;
    use dblayout_disksim::uniform_disks;
    use dblayout_planner::{PhysicalPlan, PlanNode};

    fn scan(obj: u32, blocks: u64) -> PlanNode {
        PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64,
        }
    }

    fn merge_join(a: u32, ab: u64, b: u32, bb: u64) -> PhysicalPlan {
        PhysicalPlan::new(PlanNode::MergeJoin {
            on: "k".into(),
            rows: 1.0,
            left: Box::new(scan(a, ab)),
            right: Box::new(scan(b, bb)),
        })
    }

    /// Example-5 style: co-accessed A(300) + B(150) on 3 identical disks
    /// should end up separated (the paper's L3 shape).
    #[test]
    fn separates_co_accessed_objects() {
        let disks = uniform_disks(3, 100_000, 10.0, 20.0);
        let sizes = vec![300u64, 150];
        let plans = vec![(merge_join(0, 300, 1, 150), 1.0)];
        let graph = build_access_graph(2, &plans);
        let workload = decompose_workload(&plans);
        let r = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .unwrap();
        let d0 = r.layout.disks_of(0);
        let d1 = r.layout.disks_of(1);
        assert!(
            d0.iter().all(|j| !d1.contains(j)),
            "disjoint: {d0:?} vs {d1:?}"
        );
        // And it must beat full striping.
        let fs = Layout::full_striping(sizes, &disks);
        let fs_cost = CostModel::default().workload_cost_subplans(&workload, &fs, &disks);
        assert!(r.final_cost < fs_cost);
    }

    /// A single hot object with no co-access should end up striped wide
    /// (step 2 recovers FULL STRIPING's parallelism).
    #[test]
    fn lone_object_gets_wide_striping() {
        let disks = uniform_disks(6, 100_000, 10.0, 20.0);
        let sizes = vec![600u64];
        let plans = vec![(PhysicalPlan::new(scan(0, 600)), 1.0)];
        let graph = build_access_graph(1, &plans);
        let workload = decompose_workload(&plans);
        let r = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .unwrap();
        assert_eq!(r.layout.disks_of(0).len(), 6, "{:?}", r.layout.disks_of(0));
        assert!(r.iterations >= 1);
    }

    /// APB-like shape: two large objects never co-accessed → TS-GREEDY
    /// should converge to (essentially) full striping for both.
    #[test]
    fn no_coaccess_converges_to_full_striping_cost() {
        let disks = uniform_disks(4, 100_000, 10.0, 20.0);
        let sizes = vec![400u64, 400];
        let plans = vec![
            (PhysicalPlan::new(scan(0, 400)), 1.0),
            (PhysicalPlan::new(scan(1, 400)), 1.0),
        ];
        let graph = build_access_graph(2, &plans);
        let workload = decompose_workload(&plans);
        let r = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .unwrap();
        let fs = Layout::full_striping(sizes, &disks);
        let fs_cost = CostModel::default().workload_cost_subplans(&workload, &fs, &disks);
        assert!(
            (r.final_cost - fs_cost).abs() / fs_cost < 1e-6,
            "{} vs {}",
            r.final_cost,
            fs_cost
        );
    }

    #[test]
    fn greedy_never_worse_than_step1() {
        let disks = uniform_disks(5, 100_000, 10.0, 20.0);
        let sizes = vec![500, 250, 100, 80];
        let plans = vec![
            (merge_join(0, 500, 1, 250), 2.0),
            (PhysicalPlan::new(scan(2, 100)), 1.0),
            (merge_join(2, 100, 3, 80), 1.0),
        ];
        let graph = build_access_graph(4, &plans);
        let workload = decompose_workload(&plans);
        let r = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .unwrap();
        assert!(r.final_cost <= r.initial_cost + 1e-9);
        assert!(r.cost_evaluations >= 1);
        r.layout.validate(&disks).unwrap();
    }

    #[test]
    fn co_location_constraint_keeps_groups_together() {
        let disks = uniform_disks(4, 100_000, 10.0, 20.0);
        let sizes = vec![200u64, 200, 200];
        // 0 and 1 heavily co-accessed (would separate), but constrained
        // to co-locate.
        let plans = vec![(merge_join(0, 200, 1, 200), 1.0)];
        let graph = build_access_graph(3, &plans);
        let workload = decompose_workload(&plans);
        let cfg = TsGreedyConfig {
            constraints: Constraints::none().co_locate(ObjectId(0), ObjectId(1)),
            ..Default::default()
        };
        let r = ts_greedy(&sizes, &graph, &workload, &disks, &cfg).unwrap();
        assert_eq!(r.layout.disks_of(0), r.layout.disks_of(1));
        cfg.constraints.check(&r.layout, &disks).unwrap();
    }

    #[test]
    fn availability_constraint_restricts_placement() {
        use dblayout_disksim::Availability;
        let mut disks = uniform_disks(4, 100_000, 10.0, 20.0);
        disks[2].avail = Availability::Mirroring;
        disks[3].avail = Availability::Mirroring;
        let sizes = vec![100u64, 100];
        let plans = vec![
            (PhysicalPlan::new(scan(0, 100)), 1.0),
            (PhysicalPlan::new(scan(1, 100)), 1.0),
        ];
        let graph = build_access_graph(2, &plans);
        let workload = decompose_workload(&plans);
        let cfg = TsGreedyConfig {
            constraints: Constraints::none().require_avail(ObjectId(0), Availability::Mirroring),
            ..Default::default()
        };
        let r = ts_greedy(&sizes, &graph, &workload, &disks, &cfg).unwrap();
        for j in r.layout.disks_of(0) {
            assert_eq!(disks[j].avail, Availability::Mirroring);
        }
    }

    #[test]
    fn infeasible_availability_reported() {
        use dblayout_disksim::Availability;
        let disks = uniform_disks(2, 100_000, 10.0, 20.0); // all Avail::None
        let sizes = vec![100u64];
        let plans = vec![(PhysicalPlan::new(scan(0, 100)), 1.0)];
        let graph = build_access_graph(1, &plans);
        let workload = decompose_workload(&plans);
        let cfg = TsGreedyConfig {
            constraints: Constraints::none().require_avail(ObjectId(0), Availability::Parity),
            ..Default::default()
        };
        assert!(matches!(
            ts_greedy(&sizes, &graph, &workload, &disks, &cfg),
            Err(SearchError::Infeasible(_))
        ));
    }

    #[test]
    fn movement_bound_limits_departure_from_current() {
        let disks = uniform_disks(3, 100_000, 10.0, 20.0);
        let sizes = vec![300u64, 150];
        let plans = vec![(merge_join(0, 300, 1, 150), 1.0)];
        let graph = build_access_graph(2, &plans);
        let workload = decompose_workload(&plans);
        let current = Layout::full_striping(sizes.clone(), &disks);
        let cfg = TsGreedyConfig {
            constraints: Constraints::none().bound_movement(current.clone(), 0),
            ..Default::default()
        };
        let r = ts_greedy(&sizes, &graph, &workload, &disks, &cfg).unwrap();
        // With zero movement allowed, step 2 cannot adopt anything that
        // moves data; the result must respect the bound... step 1 itself
        // produces a fresh layout, so the *final* check matters: every
        // adopted greedy move had to satisfy the constraint; step-1-only
        // results may violate it, in which case no move was adopted and
        // the caller sees the violation via Constraints::check.
        if cfg.constraints.check(&r.layout, &disks).is_ok() {
            assert_eq!(r.layout.data_movement_from(&current), 0);
        }
    }

    #[test]
    fn k2_explores_pairs() {
        let disks = uniform_disks(5, 100_000, 10.0, 20.0);
        let sizes = vec![500u64];
        let plans = vec![(PhysicalPlan::new(scan(0, 500)), 1.0)];
        let graph = build_access_graph(1, &plans);
        let workload = decompose_workload(&plans);
        let r1 = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .unwrap();
        let r2 = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // k=2 reaches full width in fewer iterations, same final cost.
        assert!(r2.iterations <= r1.iterations);
        assert!((r2.final_cost - r1.final_cost).abs() < 1e-9);
    }

    #[test]
    fn combinations_enumeration() {
        let items = vec![3, 5, 9];
        let mut c1 = combinations_up_to(&items, 1);
        c1.sort();
        assert_eq!(c1, vec![vec![3], vec![5], vec![9]]);
        let c2 = combinations_up_to(&items, 2);
        assert_eq!(c2.len(), 6); // 3 singles + 3 pairs
        let c3 = combinations_up_to(&items, 3);
        assert_eq!(c3.len(), 7);
        assert!(combinations_up_to(&[], 2).is_empty());
    }

    /// Every placement fraction's raw bits, for byte-level layout equality.
    fn layout_bits(l: &Layout) -> Vec<u64> {
        let mut bits = Vec::new();
        for i in 0..l.object_count() {
            for j in 0..l.disk_count() {
                bits.push(l.fraction(i, j).to_bits());
            }
        }
        bits
    }

    /// A mixed workload (two joins + a hot scan) whose search runs several
    /// iterations — enough work that chunking actually splits candidates.
    #[allow(clippy::type_complexity)]
    fn parallel_fixture() -> (
        Vec<u64>,
        dblayout_partition::Graph,
        Vec<(Vec<Subplan>, f64)>,
        Vec<DiskSpec>,
    ) {
        let disks = uniform_disks(6, 100_000, 10.0, 20.0);
        let sizes = vec![500u64, 250, 180, 120, 90];
        let plans = vec![
            (merge_join(0, 500, 1, 250), 4.0),
            (merge_join(2, 180, 3, 120), 2.0),
            (PhysicalPlan::new(scan(4, 90)), 1.0),
        ];
        let graph = build_access_graph(5, &plans);
        let workload = decompose_workload(&plans);
        (sizes, graph, workload, disks)
    }

    /// The dblayout-par contract at unit scope: any thread count yields a
    /// bit-identical layout, costs, and search counters.
    #[test]
    fn parallel_search_is_bit_identical_at_any_thread_count() {
        let (sizes, graph, workload, disks) = parallel_fixture();
        let reference = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .unwrap();
        assert!(
            reference.iterations >= 2,
            "fixture too easy to exercise chunking"
        );
        for threads in [2usize, 3, 4, 8] {
            // min_chunk 0 forces real fan-out on this small fixture; the
            // adaptive default must land on the same bits via its serial
            // fallback.
            for min_chunk in [0usize, 256] {
                let r = ts_greedy(
                    &sizes,
                    &graph,
                    &workload,
                    &disks,
                    &TsGreedyConfig {
                        threads,
                        min_chunk,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    layout_bits(&r.layout),
                    layout_bits(&reference.layout),
                    "threads={threads} min_chunk={min_chunk}"
                );
                assert_eq!(r.final_cost.to_bits(), reference.final_cost.to_bits());
                assert_eq!(r.initial_cost.to_bits(), reference.initial_cost.to_bits());
                assert_eq!(r.iterations, reference.iterations);
                assert_eq!(r.cost_evaluations, reference.cost_evaluations);
            }
        }
    }

    /// The incremental delta evaluator never changes what the search does:
    /// forcing full re-evaluation of every candidate lands on the same
    /// bits (it is the reference engine the bench measures against).
    #[test]
    fn full_reevaluation_engine_is_bit_identical_to_incremental() {
        let (sizes, graph, workload, disks) = parallel_fixture();
        let incremental = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .unwrap();
        let full = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig {
                full_reevaluation: true,
                threads: 2,
                min_chunk: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(layout_bits(&full.layout), layout_bits(&incremental.layout));
        assert_eq!(full.final_cost.to_bits(), incremental.final_cost.to_bits());
        assert_eq!(full.iterations, incremental.iterations);
        assert_eq!(full.cost_evaluations, incremental.cost_evaluations);
    }

    /// Capacity-tight disks force `invalid_layout` rejections; the
    /// incremental engine's patched-usage validity check must classify
    /// every candidate exactly like the full engine's `Layout::validate`,
    /// which the deterministic trace (with per-candidate reasons) records.
    #[test]
    fn engines_agree_on_capacity_rejections() {
        use dblayout_obs::RingSink;
        let disks = uniform_disks(4, 160, 10.0, 20.0);
        let sizes = vec![300u64, 200];
        let plans = vec![
            (merge_join(0, 300, 1, 200), 2.0),
            (PhysicalPlan::new(scan(0, 300)), 1.0),
        ];
        let graph = build_access_graph(2, &plans);
        let workload = decompose_workload(&plans);
        let trace_with = |full: bool| -> Vec<String> {
            let ring = Arc::new(RingSink::new(usize::MAX));
            let cfg = TsGreedyConfig {
                full_reevaluation: full,
                collector: Collector::deterministic(ring.clone()),
                ..Default::default()
            };
            ts_greedy(&sizes, &graph, &workload, &disks, &cfg).unwrap();
            ring.drain().iter().map(|r| r.to_jsonl()).collect()
        };
        let full = trace_with(true);
        assert!(
            full.iter().any(|l| l.contains("invalid_layout")),
            "fixture produced no capacity rejections"
        );
        assert_eq!(trace_with(false), full);
    }

    /// Deterministic traces are part of the identity contract: the same
    /// search at different thread counts emits byte-identical records.
    #[test]
    fn deterministic_trace_is_byte_identical_across_thread_counts() {
        use dblayout_obs::RingSink;
        let (sizes, graph, workload, disks) = parallel_fixture();
        let trace_at = |threads: usize| -> Vec<String> {
            let ring = Arc::new(RingSink::new(usize::MAX));
            let cfg = TsGreedyConfig {
                threads,
                min_chunk: 0, // real fan-out, not the serial fallback
                collector: Collector::deterministic(ring.clone()),
                ..Default::default()
            };
            ts_greedy(&sizes, &graph, &workload, &disks, &cfg).unwrap();
            ring.drain().iter().map(|r| r.to_jsonl()).collect()
        };
        let reference = trace_at(1);
        assert!(
            reference.iter().any(|l| l.contains("tsgreedy.candidate")),
            "trace records no candidates"
        );
        // No per-worker scheduling detail leaks into deterministic traces.
        assert!(reference.iter().all(|l| !l.contains("tsgreedy.workers")));
        for threads in [2usize, 4, 8] {
            assert_eq!(trace_at(threads), reference, "threads={threads}");
        }
    }

    /// Pruned widening with a width covering every group takes the exact
    /// unpruned code path — bit-identical results.
    #[test]
    fn prune_width_covering_all_groups_is_bit_identical_to_unpruned() {
        let (sizes, graph, workload, disks) = parallel_fixture();
        let unpruned = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .unwrap();
        let wide = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig {
                prune_width: 64, // ≥ group count: pruning never engages
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(layout_bits(&wide.layout), layout_bits(&unpruned.layout));
        assert_eq!(wide.final_cost.to_bits(), unpruned.final_cost.to_bits());
        assert_eq!(wide.cost_evaluations, unpruned.cost_evaluations);
    }

    /// A genuinely pruned search (width < groups) still terminates at a
    /// full-sweep local optimum, stays valid, and is thread-invariant.
    #[test]
    fn pruned_widening_is_thread_invariant_and_locally_optimal() {
        let (sizes, graph, workload, disks) = parallel_fixture();
        let run = |threads: usize| {
            ts_greedy(
                &sizes,
                &graph,
                &workload,
                &disks,
                &TsGreedyConfig {
                    prune_width: 2,
                    threads,
                    min_chunk: 0,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let reference = run(1);
        assert!(reference.final_cost <= reference.initial_cost + 1e-9);
        reference.layout.validate(&disks).unwrap();
        // Termination required a full sweep that found nothing: re-seeding
        // an unpruned search from the pruned result must adopt no moves.
        let resumed = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig {
                seed: Some(reference.layout.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        // Seeded mode also enumerates narrow/swap moves, so allow equal-
        // cost wandering but never a pure-widening improvement miss.
        assert!(resumed.final_cost >= reference.final_cost - 1e-9);
        for threads in [2usize, 4, 8] {
            let r = run(threads);
            assert_eq!(
                layout_bits(&r.layout),
                layout_bits(&reference.layout),
                "threads={threads}"
            );
            assert_eq!(r.final_cost.to_bits(), reference.final_cost.to_bits());
            assert_eq!(r.cost_evaluations, reference.cost_evaluations);
        }
    }

    /// `max_iterations` caps adopted moves, and the capped run's layout is
    /// the uncapped run's prefix (same greedy trajectory, stopped early).
    #[test]
    fn max_iterations_caps_adopted_moves() {
        let disks = uniform_disks(6, 100_000, 10.0, 20.0);
        let sizes = vec![600u64];
        let plans = vec![(PhysicalPlan::new(scan(0, 600)), 1.0)];
        let graph = build_access_graph(1, &plans);
        let workload = decompose_workload(&plans);
        let capped = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig {
                max_iterations: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(capped.iterations, 2);
        // Widening one drive at a time from a 1-disk start: after two
        // adoptions the object spans exactly 3 drives.
        assert_eq!(capped.layout.disks_of(0).len(), 3);
    }

    /// Forcing the multilevel partitioner on a paper-scale graph matches
    /// Direct bit-for-bit (no coarsening levels engage below the floor),
    /// and Auto's threshold selects between the same two paths.
    #[test]
    fn multilevel_partitioner_matches_direct_at_small_scale() {
        let (sizes, graph, workload, disks) = parallel_fixture();
        let run = |partitioner: Partitioner| {
            ts_greedy(
                &sizes,
                &graph,
                &workload,
                &disks,
                &TsGreedyConfig {
                    partitioner,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let direct = run(Partitioner::Direct);
        let auto_default = run(Partitioner::default());
        let multilevel = run(Partitioner::Multilevel(Default::default()));
        let auto_forced = run(Partitioner::Auto { threshold: 0 });
        for (name, r) in [
            ("auto", &auto_default),
            ("multilevel", &multilevel),
            ("auto-forced", &auto_forced),
        ] {
            assert_eq!(
                layout_bits(&r.layout),
                layout_bits(&direct.layout),
                "{name}"
            );
            assert_eq!(
                r.final_cost.to_bits(),
                direct.final_cost.to_bits(),
                "{name}"
            );
        }
    }

    /// Timed collectors do get the per-worker scheduling event.
    #[test]
    fn timed_trace_records_per_worker_candidate_counts() {
        use dblayout_obs::RingSink;
        let (sizes, graph, workload, disks) = parallel_fixture();
        let ring = Arc::new(RingSink::new(usize::MAX));
        let cfg = TsGreedyConfig {
            threads: 4,
            min_chunk: 0, // force full fan-out on this small fixture
            collector: Collector::new(ring.clone()),
            ..Default::default()
        };
        ts_greedy(&sizes, &graph, &workload, &disks, &cfg).unwrap();
        let workers: Vec<_> = ring
            .drain()
            .into_iter()
            .filter(|r| r.name == "tsgreedy.workers")
            .collect();
        assert!(!workers.is_empty());
        for w in workers {
            assert_eq!(w.field_u64("threads"), Some(4));
            let counts = w.field_str("candidates_per_worker").unwrap_or("");
            assert_eq!(counts.split(',').count(), 4, "counts = {counts:?}");
        }
    }
}
