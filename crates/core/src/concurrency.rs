//! Concurrency-aware workload analysis — the paper's stated future work.
//!
//! §2.2: "Since we model the workload as a *set* of statements, we do not
//! take into account the impact on database layout by statements that
//! execute concurrently with one another. In particular, this has the
//! effect of underestimating the amount of co-access between objects."
//! §9 names "extending the cost model to capture effect of concurrent
//! execution" as the important open problem.
//!
//! This module implements the workload-model half: given *overlap
//! information* — groups of statements known to execute concurrently (from
//! profiler timestamps or a declared multiprogramming mix) — it augments
//! the Figure-6 access graph with **cross-statement co-access edges**:
//! objects read by two concurrently-running pipelines contend on any disk
//! they share exactly like objects co-accessed within one pipeline, scaled
//! by an overlap factor (1.0 = the statements fully overlap in time).
//!
//! The augmented graph drives TS-GREEDY's step-1 separation; the validation
//! side lives in `dblayout_disksim::Simulator::execute_concurrent`, which
//! interleaves the statements' block streams for real.

use dblayout_partition::Graph;
use dblayout_planner::PhysicalPlan;

use crate::access_graph::build_access_graph;

/// A workload annotated with concurrency groups.
#[derive(Debug, Clone)]
pub struct ConcurrentWorkload {
    /// The statements with weights, as usual.
    pub statements: Vec<(PhysicalPlan, f64)>,
    /// Indices of statements that overlap in time. A statement may appear
    /// in several groups; singleton groups add nothing.
    pub groups: Vec<Vec<usize>>,
    /// Fraction of each statement's execution assumed to overlap with its
    /// group peers (`0.0..=1.0`).
    pub overlap_factor: f64,
}

impl ConcurrentWorkload {
    /// A workload where every statement runs alone (degenerates to the
    /// paper's set model).
    pub fn sequential(statements: Vec<(PhysicalPlan, f64)>) -> Self {
        Self {
            statements,
            groups: Vec::new(),
            overlap_factor: 0.0,
        }
    }

    /// A workload where all statements run concurrently (a steady-state
    /// multiprogramming mix).
    pub fn fully_concurrent(statements: Vec<(PhysicalPlan, f64)>, overlap_factor: f64) -> Self {
        let group: Vec<usize> = (0..statements.len()).collect();
        Self {
            statements,
            groups: vec![group],
            overlap_factor,
        }
    }
}

/// Builds the concurrency-augmented access graph over `n_objects`: the
/// plain Figure-6 graph plus, for every pair of distinct statements in a
/// group, edges between each object of one statement's sub-plans and each
/// object of the other's, weighted by the co-accessed blocks scaled by the
/// overlap factor and both statements' weights (geometric mean).
pub fn build_concurrent_access_graph(n_objects: usize, workload: &ConcurrentWorkload) -> Graph {
    let mut g = build_access_graph(n_objects, &workload.statements);
    if workload.overlap_factor <= 0.0 {
        return g;
    }
    for group in &workload.groups {
        for (pos, &s) in group.iter().enumerate() {
            for &t in &group[pos + 1..] {
                if s == t {
                    continue;
                }
                let (ps, ws) = &workload.statements[s];
                let (pt, wt) = &workload.statements[t];
                let w = workload.overlap_factor * (ws * wt).sqrt();
                for sub_s in ps.subplans() {
                    for sub_t in pt.subplans() {
                        for &u in &sub_s.objects() {
                            for &v in &sub_t.objects() {
                                if u == v {
                                    continue;
                                }
                                let bu = sub_s.blocks_of(u);
                                let bv = sub_t.blocks_of(v);
                                g.add_edge(u.index(), v.index(), w * (bu + bv) as f64);
                            }
                        }
                    }
                }
            }
        }
    }
    g
}

/// Compiles a concurrent workload into the cost-model form the search
/// consumes — the §9 "extend the cost model" half of the extension.
///
/// Each concurrency group becomes **one synthetic statement** whose single
/// sub-plan merges every member statement's accesses: objects read by
/// overlapping pipelines contend like intra-statement co-access, so the
/// Figure-7 seek term applies across statements. Blocks contributed by a
/// group member are scaled by its weight and by the overlap factor (the
/// non-overlapping remainder is charged as the member's ordinary
/// sequential cost). Ungrouped statements pass through unchanged.
pub fn concurrent_cost_workload(
    workload: &ConcurrentWorkload,
) -> Vec<(Vec<dblayout_planner::Subplan>, f64)> {
    use dblayout_planner::{ObjectAccess, Subplan};
    let overlap = workload.overlap_factor.clamp(0.0, 1.0);
    let mut grouped = vec![false; workload.statements.len()];
    let mut out: Vec<(Vec<Subplan>, f64)> = Vec::new();

    for group in &workload.groups {
        // dblayout::allow(R3, reason = "overlap is clamped to [0, 1] above; 0.0 is the exact sentinel for no-overlap, not a computed value")
        if group.len() < 2 || overlap == 0.0 {
            continue;
        }
        let mut merged = Subplan::default();
        for &s in group {
            grouped[s] = true;
            let (plan, w) = &workload.statements[s];
            for sub in plan.subplans() {
                merged.temp_write_blocks += sub.temp_write_blocks;
                merged.temp_read_blocks += sub.temp_read_blocks;
                for a in &sub.accesses {
                    let blocks = ((a.blocks as f64) * w * overlap).round() as u64;
                    merged.add(ObjectAccess {
                        object: a.object,
                        blocks,
                        rows: a.rows,
                        kind: a.kind,
                    });
                }
            }
        }
        out.push((vec![merged], 1.0));
        // The non-overlapping remainder of each member runs sequentially.
        if overlap < 1.0 {
            for &s in group {
                let (plan, w) = &workload.statements[s];
                out.push((plan.subplans(), w * (1.0 - overlap)));
            }
        }
    }
    for (s, (plan, w)) in workload.statements.iter().enumerate() {
        if !grouped[s] {
            out.push((plan.subplans(), *w));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::ObjectId;
    use dblayout_planner::PlanNode;

    fn scan(obj: u32, blocks: u64) -> PhysicalPlan {
        PhysicalPlan::new(PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64,
        })
    }

    #[test]
    fn sequential_matches_plain_graph() {
        let stmts = vec![(scan(0, 100), 1.0), (scan(1, 200), 1.0)];
        let w = ConcurrentWorkload::sequential(stmts.clone());
        let g = build_concurrent_access_graph(2, &w);
        let plain = build_access_graph(2, &stmts);
        assert_eq!(g.edge_weight(0, 1), plain.edge_weight(0, 1));
        assert_eq!(g.edge_weight(0, 1), 0.0);
    }

    #[test]
    fn concurrent_scans_gain_cross_edges() {
        let stmts = vec![(scan(0, 100), 1.0), (scan(1, 200), 1.0)];
        let w = ConcurrentWorkload::fully_concurrent(stmts, 1.0);
        let g = build_concurrent_access_graph(2, &w);
        assert_eq!(g.edge_weight(0, 1), 300.0);
    }

    #[test]
    fn overlap_factor_scales_cross_edges() {
        let stmts = vec![(scan(0, 100), 1.0), (scan(1, 200), 1.0)];
        let half = ConcurrentWorkload::fully_concurrent(stmts, 0.5);
        let g = build_concurrent_access_graph(2, &half);
        assert_eq!(g.edge_weight(0, 1), 150.0);
    }

    #[test]
    fn weights_combine_geometrically() {
        let stmts = vec![(scan(0, 100), 4.0), (scan(1, 200), 1.0)];
        let w = ConcurrentWorkload::fully_concurrent(stmts, 1.0);
        let g = build_concurrent_access_graph(2, &w);
        // sqrt(4*1) = 2 → 2 × 300.
        assert_eq!(g.edge_weight(0, 1), 600.0);
        // Node weights still use plain statement weights.
        assert_eq!(g.node_weight(0), 400.0);
    }

    #[test]
    fn groups_restrict_cross_edges() {
        let stmts = vec![
            (scan(0, 100), 1.0),
            (scan(1, 100), 1.0),
            (scan(2, 100), 1.0),
        ];
        let w = ConcurrentWorkload {
            statements: stmts,
            groups: vec![vec![0, 1]],
            overlap_factor: 1.0,
        };
        let g = build_concurrent_access_graph(3, &w);
        assert!(g.edge_weight(0, 1) > 0.0);
        assert_eq!(g.edge_weight(0, 2), 0.0);
        assert_eq!(g.edge_weight(1, 2), 0.0);
    }

    #[test]
    fn within_statement_edges_still_present() {
        let join = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "k".into(),
            rows: 1.0,
            left: Box::new(PlanNode::TableScan {
                object: ObjectId(0),
                name: "a".into(),
                blocks: 50,
                rows: 50.0,
            }),
            right: Box::new(PlanNode::TableScan {
                object: ObjectId(1),
                name: "b".into(),
                blocks: 70,
                rows: 70.0,
            }),
        });
        let stmts = vec![(join, 1.0), (scan(2, 30), 1.0)];
        let w = ConcurrentWorkload::fully_concurrent(stmts, 1.0);
        let g = build_concurrent_access_graph(3, &w);
        assert_eq!(g.edge_weight(0, 1), 120.0); // within-statement
        assert_eq!(g.edge_weight(0, 2), 80.0); // cross-statement 50+30
        assert_eq!(g.edge_weight(1, 2), 100.0); // cross-statement 70+30
    }

    #[test]
    fn cost_workload_merges_groups_into_one_subplan() {
        let stmts = vec![(scan(0, 100), 1.0), (scan(1, 200), 1.0)];
        let w = ConcurrentWorkload::fully_concurrent(stmts, 1.0);
        let cw = concurrent_cost_workload(&w);
        assert_eq!(cw.len(), 1);
        let (subs, weight) = &cw[0];
        assert_eq!(*weight, 1.0);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].objects().len(), 2);
        assert_eq!(subs[0].blocks_of(ObjectId(0)), 100);
        assert_eq!(subs[0].blocks_of(ObjectId(1)), 200);
    }

    #[test]
    fn cost_workload_partial_overlap_splits_sequential_remainder() {
        let stmts = vec![(scan(0, 100), 1.0), (scan(1, 200), 1.0)];
        let w = ConcurrentWorkload::fully_concurrent(stmts, 0.25);
        let cw = concurrent_cost_workload(&w);
        // merged group + two sequential remainders at weight 0.75.
        assert_eq!(cw.len(), 3);
        assert_eq!(cw[0].0[0].blocks_of(ObjectId(0)), 25);
        assert!((cw[1].1 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn cost_workload_sequential_passthrough() {
        let stmts = vec![(scan(0, 100), 2.0)];
        let w = ConcurrentWorkload::sequential(stmts);
        let cw = concurrent_cost_workload(&w);
        assert_eq!(cw.len(), 1);
        assert!((cw[0].1 - 2.0).abs() < 1e-9);
    }
}
