//! The analytic I/O response-time cost model (paper §5, Figure 7).
//!
//! For a statement `Q` with plan `P_Q` under layout `L`:
//!
//! ```text
//! Cost(Q, L) = Σ over non-blocking sub-plans P of P_Q of
//!              max over disks D_j of ( TransferCost_j + SeekCost_j )
//! TransferCost_j = Σ_i x_ij · B(|R_i|, P) / T_j
//! SeekCost_j     = k · S_j · min_i ( x_ij · B(|R_i|, P) )   if k > 1 else 0
//! ```
//!
//! where `k` is the number of objects on `D_j` accessed in `P`, `T_j` is the
//! read or write transfer rate as appropriate, `S_j` the average seek time,
//! and the `min` ranges over the objects accessed in `P` that live on `D_j`.
//! The seek model assumes co-accessed objects are read at rates proportional
//! to their block counts, so the least-represented object's block count
//! bounds the number of alternations.
//!
//! Temp-object I/O is **excluded by default** — the paper's implementation
//! "did not factor in the I/O times of temporary objects" (§7.2), and its
//! validation attributes some mis-orderings to exactly that. Enable
//! [`CostModel::include_temp_io`] to add a tempdb lane (our extension).

use dblayout_disksim::{DiskSpec, Layout};
use dblayout_obs::{f, Collector};
use dblayout_planner::{PhysicalPlan, Subplan};

/// Configurable cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Include tempdb spill I/O in statement costs (extension; the paper's
    /// implementation did not).
    pub include_temp_io: bool,
    /// The tempdb drive used when `include_temp_io` is set.
    pub tempdb: DiskSpec,
    /// Trace collector for per-sub-plan cost terms. Disabled by default —
    /// the search calls [`CostModel::subplan_cost`] thousands of times per
    /// run, so the hot path pays exactly one branch when off. Enable only
    /// for one-shot breakdowns (e.g. `dblayout explain`'s final costing of
    /// the recommended layout).
    pub collector: Collector,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            include_temp_io: false,
            tempdb: dblayout_disksim::tempdb_disk(),
            collector: Collector::default(),
        }
    }
}

impl CostModel {
    /// `Cost(Q, L)` in milliseconds.
    pub fn statement_cost(&self, plan: &PhysicalPlan, layout: &Layout, disks: &[DiskSpec]) -> f64 {
        self.statement_cost_subplans(&plan.subplans(), layout, disks)
    }

    /// Cost of one non-blocking sub-plan: the bottleneck disk's time.
    #[inline]
    pub fn subplan_cost(&self, sub: &Subplan, layout: &Layout, disks: &[DiskSpec]) -> f64 {
        if self.collector.enabled() {
            return self.subplan_cost_traced(sub, layout, disks);
        }
        self.subplan_cost_untraced(sub, layout, disks)
    }

    /// The collector-free hot path. The search costs thousands of layouts
    /// per run, so the per-statement entry points branch on the collector
    /// once and then stay on this function; it must not touch
    /// `self.collector` at all.
    #[inline]
    fn subplan_cost_untraced(&self, sub: &Subplan, layout: &Layout, disks: &[DiskSpec]) -> f64 {
        let totals = object_totals(sub);
        let mut max_cost = 0.0f64;
        for (j, disk) in disks.iter().enumerate() {
            let (transfer, seek, _) = disk_term(sub, &totals, layout, j, disk);
            max_cost = max_cost.max(transfer + seek);
        }
        if self.include_temp_io {
            // tempdb is its own drive: it participates in the bottleneck max.
            max_cost = max_cost.max(self.temp_ms(sub));
        }
        max_cost
    }

    /// [`CostModel::subplan_cost`] with per-disk term events — identical
    /// arithmetic (both paths share [`disk_term`]), plus a
    /// `costmodel.subplan` span recording each contributing disk's transfer
    /// and seek milliseconds and the bottleneck. Kept out of line so the
    /// untraced hot path stays small enough to inline into the search loop.
    #[cold]
    #[inline(never)]
    fn subplan_cost_traced(&self, sub: &Subplan, layout: &Layout, disks: &[DiskSpec]) -> f64 {
        let totals = object_totals(sub);
        let span = self.collector.span(
            "costmodel.subplan",
            vec![
                f("objects", totals.len()),
                f("accesses", sub.accesses.len()),
            ],
        );
        let mut max_cost = 0.0f64;
        let mut bottleneck: i64 = -1; // -1: no disk contributes (or tempdb)
        for (j, disk) in disks.iter().enumerate() {
            let (transfer, seek, k) = disk_term(sub, &totals, layout, j, disk);
            if k > 0 {
                span.event(
                    "costmodel.disk",
                    vec![
                        f("disk", j),
                        f("objects", k),
                        f("transfer_ms", transfer),
                        f("seek_ms", seek),
                    ],
                );
            }
            if transfer + seek > max_cost {
                bottleneck = j as i64;
            }
            max_cost = max_cost.max(transfer + seek);
        }
        let mut temp_ms = 0.0f64;
        if self.include_temp_io {
            temp_ms = self.temp_ms(sub);
            if temp_ms > max_cost {
                bottleneck = -1;
            }
            max_cost = max_cost.max(temp_ms);
        }
        span.end_with(vec![
            f("cost_ms", max_cost),
            f("bottleneck_disk", bottleneck),
            f("temp_ms", temp_ms),
        ]);
        max_cost
    }

    /// Tempdb spill time for one sub-plan (the extension lane).
    fn temp_ms(&self, sub: &Subplan) -> f64 {
        (sub.temp_write_blocks as f64) * self.tempdb.write_ms_per_block()
            + (sub.temp_read_blocks as f64) * self.tempdb.read_ms_per_block()
    }

    /// `Σ_Q w_Q · Cost(Q, L)` — the optimization objective (Figure 2).
    pub fn workload_cost(
        &self,
        plans: &[(PhysicalPlan, f64)],
        layout: &Layout,
        disks: &[DiskSpec],
    ) -> f64 {
        plans
            .iter()
            .map(|(plan, w)| w * self.statement_cost(plan, layout, disks))
            .sum()
    }

    /// Cost of one pre-decomposed statement (sum over its sub-plans). The
    /// collector branch is taken once here, not per sub-plan — this is the
    /// call the search's candidate loop makes.
    pub fn statement_cost_subplans(
        &self,
        subs: &[Subplan],
        layout: &Layout,
        disks: &[DiskSpec],
    ) -> f64 {
        if self.collector.enabled() {
            return subs
                .iter()
                .map(|s| self.subplan_cost_traced(s, layout, disks))
                .sum();
        }
        subs.iter()
            .map(|s| self.subplan_cost_untraced(s, layout, disks))
            .sum()
    }

    /// Workload cost over pre-decomposed sub-plans. The search invokes the
    /// cost model thousands of times per run (paper §3: "the scalability of
    /// the solution relies on the cost model being computationally
    /// efficient"), so it decomposes each plan once up front.
    pub fn workload_cost_subplans(
        &self,
        workload: &[(Vec<Subplan>, f64)],
        layout: &Layout,
        disks: &[DiskSpec],
    ) -> f64 {
        workload
            .iter()
            .map(|(subs, w)| w * self.statement_cost_subplans(subs, layout, disks))
            .sum()
    }
}

/// Aggregates each object's total blocks across a sub-plan's accesses.
/// Objects may appear once per access kind; the seek term needs per-object
/// totals (built once — [`CostModel::subplan_cost`] is the search's hot
/// loop), while transfer is charged at each access's own rate.
#[inline]
fn object_totals(sub: &Subplan) -> Vec<(usize, u64)> {
    let mut totals: Vec<(usize, u64)> = Vec::with_capacity(sub.accesses.len());
    for access in &sub.accesses {
        let idx = access.object.index();
        match totals.iter_mut().find(|(o, _)| *o == idx) {
            Some((_, t)) => *t += access.blocks,
            None => totals.push((idx, access.blocks)),
        }
    }
    totals
}

/// One disk's Figure-7 terms for a sub-plan: `(transfer_ms, seek_ms, k)`
/// where `k` is how many accessed objects live on the disk. Shared by the
/// traced and untraced cost paths so their arithmetic cannot diverge.
#[inline]
fn disk_term(
    sub: &Subplan,
    totals: &[(usize, u64)],
    layout: &Layout,
    j: usize,
    disk: &DiskSpec,
) -> (f64, f64, usize) {
    let mut k = 0usize;
    let mut min_share = f64::INFINITY;
    for &(obj, total_blocks) in totals {
        let x = layout.fraction(obj, j);
        if x <= 0.0 || total_blocks == 0 {
            continue;
        }
        k += 1;
        min_share = min_share.min(x * total_blocks as f64);
    }
    let mut transfer = 0.0;
    for access in &sub.accesses {
        let x = layout.fraction(access.object.index(), j);
        if x <= 0.0 {
            continue;
        }
        let ms_per_block = if access.kind.is_read() {
            disk.read_ms_per_block()
        } else {
            disk.write_ms_per_block()
        };
        transfer += x * access.blocks as f64 * ms_per_block;
    }
    let seek = if k > 1 {
        k as f64 * disk.avg_seek_ms * min_share
    } else {
        0.0
    };
    (transfer, seek, k)
}

/// Decomposes a weighted workload once, for repeated cost evaluation.
pub fn decompose_workload(plans: &[(PhysicalPlan, f64)]) -> Vec<(Vec<Subplan>, f64)> {
    plans.iter().map(|(p, w)| (p.subplans(), *w)).collect()
}

/// [`CostModel::statement_cost`] with the default model.
pub fn statement_cost(plan: &PhysicalPlan, layout: &Layout, disks: &[DiskSpec]) -> f64 {
    CostModel::default().statement_cost(plan, layout, disks)
}

/// [`CostModel::workload_cost`] with the default model.
pub fn workload_cost(plans: &[(PhysicalPlan, f64)], layout: &Layout, disks: &[DiskSpec]) -> f64 {
    CostModel::default().workload_cost(plans, layout, disks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::ObjectId;
    use dblayout_disksim::uniform_disks;
    use dblayout_planner::PlanNode;

    fn scan(obj: u32, blocks: u64) -> PlanNode {
        PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64,
        }
    }

    /// A=300, B=150 merge-joined; 3 identical disks (Example 5 setup).
    fn example5() -> (PhysicalPlan, Vec<DiskSpec>, Vec<u64>) {
        let plan = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "a=b".into(),
            rows: 100.0,
            left: Box::new(scan(0, 300)),
            right: Box::new(scan(1, 150)),
        });
        let disks = uniform_disks(3, 100_000, 10.0, 20.0);
        (plan, disks, vec![300, 150])
    }

    #[test]
    fn example5_cost_ordering_l3_l1_l2() {
        let (plan, disks, sizes) = example5();
        let t = disks[0].read_ms_per_block(); // 1/T in ms per block
        let s = disks[0].avg_seek_ms;

        // L1: full striping — cost = 150/T + 100·S per the paper.
        let l1 = Layout::full_striping(sizes.clone(), &disks);
        let c1 = statement_cost(&plan, &l1, &disks);
        assert!(
            (c1 - (150.0 * t + 2.0 * 50.0 * s)).abs() < 1e-6,
            "c1 = {c1}"
        );

        // L2: A on D1,D2; B on D2,D3 — bottleneck D2 = 225/T + 150·S.
        let mut l2 = Layout::empty(sizes.clone(), 3);
        l2.place(0, &[(0, 1.0), (1, 1.0)]);
        l2.place(1, &[(1, 1.0), (2, 1.0)]);
        let c2 = statement_cost(&plan, &l2, &disks);
        assert!(
            (c2 - (225.0 * t + 2.0 * 75.0 * s)).abs() < 1e-6,
            "c2 = {c2}"
        );

        // L3: A on D1,D2; B on D3 — no co-location, cost = 150/T.
        let mut l3 = Layout::empty(sizes, 3);
        l3.place(0, &[(0, 1.0), (1, 1.0)]);
        l3.place(1, &[(2, 1.0)]);
        let c3 = statement_cost(&plan, &l3, &disks);
        assert!((c3 - 150.0 * t).abs() < 1e-6, "c3 = {c3}");

        // Paper's conclusion: L3 < L1 < L2.
        assert!(c3 < c1 && c1 < c2);
    }

    #[test]
    fn single_object_scan_has_no_seek_cost() {
        let disks = uniform_disks(4, 100_000, 10.0, 20.0);
        let plan = PhysicalPlan::new(scan(0, 400));
        let striped = Layout::full_striping(vec![400], &disks);
        let c = statement_cost(&plan, &striped, &disks);
        let t = disks[0].read_ms_per_block();
        assert!((c - 100.0 * t).abs() < 1e-6);
    }

    #[test]
    fn wider_striping_reduces_single_scan_cost() {
        let disks = uniform_disks(8, 100_000, 10.0, 20.0);
        let plan = PhysicalPlan::new(scan(0, 800));
        let mut narrow = Layout::empty(vec![800], 8);
        narrow.place(0, &[(0, 1.0), (1, 1.0)]);
        let wide = Layout::full_striping(vec![800], &disks);
        assert!(statement_cost(&plan, &wide, &disks) < statement_cost(&plan, &narrow, &disks));
    }

    #[test]
    fn write_accesses_use_write_rate() {
        let disks = uniform_disks(1, 100_000, 10.0, 20.0);
        let read_plan = PhysicalPlan::new(scan(0, 100));
        let write_plan = PhysicalPlan::new(PlanNode::Insert {
            object: ObjectId(0),
            name: "t".into(),
            write_blocks: 100,
            rows: 100.0,
            child: None,
        });
        let layout = Layout::full_striping(vec![100], &disks);
        let cr = statement_cost(&read_plan, &layout, &disks);
        let cw = statement_cost(&write_plan, &layout, &disks);
        assert!(cw > cr, "writes are slower: {cw} vs {cr}");
    }

    #[test]
    fn blocking_subplans_sum() {
        let disks = uniform_disks(2, 100_000, 10.0, 20.0);
        // HashJoin: build(0) and probe(1) in different sub-plans → costs add.
        let plan = PhysicalPlan::new(PlanNode::HashJoin {
            on: "x".into(),
            rows: 1.0,
            build: Box::new(scan(0, 100)),
            probe: Box::new(scan(1, 100)),
            spill_blocks: 0,
        });
        let layout = Layout::full_striping(vec![100, 100], &disks);
        let c = statement_cost(&plan, &layout, &disks);
        let t = disks[0].read_ms_per_block();
        // Each sub-plan: 50 blocks on the bottleneck disk, no seeks.
        assert!((c - 2.0 * 50.0 * t).abs() < 1e-6, "c = {c}");
    }

    #[test]
    fn temp_io_excluded_by_default_included_on_flag() {
        let disks = uniform_disks(2, 100_000, 10.0, 20.0);
        let plan = PhysicalPlan::new(PlanNode::Sort {
            by: "k".into(),
            rows: 1e5,
            spill_blocks: 10_000,
            child: Box::new(scan(0, 10)),
        });
        let layout = Layout::full_striping(vec![10], &disks);
        let base = statement_cost(&plan, &layout, &disks);
        let with_temp = CostModel {
            include_temp_io: true,
            ..CostModel::default()
        }
        .statement_cost(&plan, &layout, &disks);
        assert!(with_temp > base * 10.0, "{with_temp} vs {base}");
    }

    #[test]
    fn workload_cost_weights_statements() {
        let disks = uniform_disks(2, 100_000, 10.0, 20.0);
        let plan = PhysicalPlan::new(scan(0, 100));
        let layout = Layout::full_striping(vec![100], &disks);
        let single = statement_cost(&plan, &layout, &disks);
        let total = workload_cost(&[(plan, 3.0)], &layout, &disks);
        assert!((total - 3.0 * single).abs() < 1e-9);
    }

    /// The traced path shares `disk_term` with the hot path; this guards
    /// against the two ever diverging.
    #[test]
    fn traced_cost_is_bit_identical_to_untraced() {
        use dblayout_obs::{Collector, RingSink};
        use std::sync::Arc;
        let (plan, disks, sizes) = example5();
        let layout = Layout::full_striping(sizes, &disks);
        let ring = Arc::new(RingSink::new(1024));
        let traced = CostModel {
            collector: Collector::deterministic(ring.clone()),
            ..CostModel::default()
        };
        let c0 = CostModel::default().statement_cost(&plan, &layout, &disks);
        let c1 = traced.statement_cost(&plan, &layout, &disks);
        assert_eq!(c0.to_bits(), c1.to_bits());
        let records = ring.drain();
        // One subplan span with per-disk term events and a bottleneck
        // summary on the span end.
        assert!(records.iter().any(|r| r.name == "costmodel.disk"));
        let end = records
            .iter()
            .find(|r| r.kind == dblayout_obs::RecordKind::SpanEnd)
            .unwrap();
        assert_eq!(
            end.field_f64("cost_ms").map(f64::to_bits),
            Some(c1.to_bits())
        );
    }

    #[test]
    fn heterogeneous_disks_bottleneck_on_slowest() {
        let mut disks = uniform_disks(2, 100_000, 10.0, 20.0);
        disks[1].read_mb_s = 10.0; // half speed
        let plan = PhysicalPlan::new(scan(0, 200));
        // Uniform 50/50 split: slow disk is the bottleneck.
        let mut even = Layout::empty(vec![200], 2);
        even.place(0, &[(0, 1.0), (1, 1.0)]);
        let c_even = statement_cost(&plan, &even, &disks);
        // Rate-proportional split equalizes finish times and costs less.
        let prop = Layout::full_striping(vec![200], &disks);
        let c_prop = statement_cost(&plan, &prop, &disks);
        assert!(c_prop < c_even, "{c_prop} vs {c_even}");
    }
}
