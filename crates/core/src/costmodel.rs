//! The analytic I/O response-time cost model (paper §5, Figure 7).
//!
//! For a statement `Q` with plan `P_Q` under layout `L`:
//!
//! ```text
//! Cost(Q, L) = Σ over non-blocking sub-plans P of P_Q of
//!              max over disks D_j of ( TransferCost_j + SeekCost_j )
//! TransferCost_j = Σ_i x_ij · B(|R_i|, P) / T_j
//! SeekCost_j     = k · S_j · min_i ( x_ij · B(|R_i|, P) )   if k > 1 else 0
//! ```
//!
//! where `k` is the number of objects on `D_j` accessed in `P`, `T_j` is the
//! read or write transfer rate as appropriate, `S_j` the average seek time,
//! and the `min` ranges over the objects accessed in `P` that live on `D_j`.
//! The seek model assumes co-accessed objects are read at rates proportional
//! to their block counts, so the least-represented object's block count
//! bounds the number of alternations.
//!
//! Temp-object I/O is **excluded by default** — the paper's implementation
//! "did not factor in the I/O times of temporary objects" (§7.2), and its
//! validation attributes some mis-orderings to exactly that. Enable
//! [`CostModel::include_temp_io`] to add a tempdb lane (our extension).

use std::sync::Arc;

use dblayout_disksim::{DiskSpec, Layout};
use dblayout_obs::{f, Collector};
use dblayout_planner::{PhysicalPlan, Subplan};

/// Configurable cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Include tempdb spill I/O in statement costs (extension; the paper's
    /// implementation did not).
    pub include_temp_io: bool,
    /// The tempdb drive used when `include_temp_io` is set.
    pub tempdb: DiskSpec,
    /// Trace collector for per-sub-plan cost terms. Disabled by default —
    /// the search calls [`CostModel::subplan_cost`] thousands of times per
    /// run, so the hot path pays exactly one branch when off. Enable only
    /// for one-shot breakdowns (e.g. `dblayout explain`'s final costing of
    /// the recommended layout).
    pub collector: Collector,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            include_temp_io: false,
            tempdb: dblayout_disksim::tempdb_disk(),
            collector: Collector::default(),
        }
    }
}

impl CostModel {
    /// `Cost(Q, L)` in milliseconds.
    pub fn statement_cost(&self, plan: &PhysicalPlan, layout: &Layout, disks: &[DiskSpec]) -> f64 {
        self.statement_cost_subplans(&plan.subplans(), layout, disks)
    }

    /// Cost of one non-blocking sub-plan: the bottleneck disk's time.
    #[inline]
    pub fn subplan_cost(&self, sub: &Subplan, layout: &Layout, disks: &[DiskSpec]) -> f64 {
        if self.collector.enabled() {
            return self.subplan_cost_traced(sub, layout, disks);
        }
        self.subplan_cost_untraced(sub, layout, disks)
    }

    /// The collector-free hot path. The search costs thousands of layouts
    /// per run, so the per-statement entry points branch on the collector
    /// once and then stay on this function; it must not touch
    /// `self.collector` at all.
    #[inline]
    fn subplan_cost_untraced(&self, sub: &Subplan, layout: &Layout, disks: &[DiskSpec]) -> f64 {
        let totals = object_totals(sub);
        self.subplan_cost_untraced_with(sub, &totals, layout, disks)
    }

    /// The innermost cost kernel, taking pre-aggregated per-object totals.
    /// `totals` must equal `object_totals(sub)` — the [`DeltaEvaluator`]
    /// caches them per sub-plan (they are layout-independent) so the
    /// mega-scale scoring loop allocates nothing per candidate.
    #[inline]
    fn subplan_cost_untraced_with(
        &self,
        sub: &Subplan,
        totals: &[(u32, u64)],
        layout: &Layout,
        disks: &[DiskSpec],
    ) -> f64 {
        let mut max_cost = 0.0f64;
        for (j, disk) in disks.iter().enumerate() {
            let (transfer, seek, _) = disk_term(sub, totals, layout, j, disk);
            max_cost = max_cost.max(transfer + seek);
        }
        if self.include_temp_io {
            // tempdb is its own drive: it participates in the bottleneck max.
            max_cost = max_cost.max(self.temp_ms(sub));
        }
        max_cost
    }

    /// [`CostModel::subplan_cost`] with per-disk term events — identical
    /// arithmetic (both paths share [`disk_term`]), plus a
    /// `costmodel.subplan` span recording each contributing disk's transfer
    /// and seek milliseconds and the bottleneck. Kept out of line so the
    /// untraced hot path stays small enough to inline into the search loop.
    #[cold]
    #[inline(never)]
    fn subplan_cost_traced(&self, sub: &Subplan, layout: &Layout, disks: &[DiskSpec]) -> f64 {
        let totals = object_totals(sub);
        let span = self.collector.span(
            "costmodel.subplan",
            vec![
                f("objects", totals.len()),
                f("accesses", sub.accesses.len()),
            ],
        );
        let mut max_cost = 0.0f64;
        let mut bottleneck: i64 = -1; // -1: no disk contributes (or tempdb)
        for (j, disk) in disks.iter().enumerate() {
            let (transfer, seek, k) = disk_term(sub, &totals, layout, j, disk);
            if k > 0 {
                span.event(
                    "costmodel.disk",
                    vec![
                        f("disk", j),
                        f("objects", k),
                        f("transfer_ms", transfer),
                        f("seek_ms", seek),
                    ],
                );
            }
            if transfer + seek > max_cost {
                bottleneck = j as i64;
            }
            max_cost = max_cost.max(transfer + seek);
        }
        let mut temp_ms = 0.0f64;
        if self.include_temp_io {
            temp_ms = self.temp_ms(sub);
            if temp_ms > max_cost {
                bottleneck = -1;
            }
            max_cost = max_cost.max(temp_ms);
        }
        span.end_with(vec![
            f("cost_ms", max_cost),
            f("bottleneck_disk", bottleneck),
            f("temp_ms", temp_ms),
        ]);
        max_cost
    }

    /// Tempdb spill time for one sub-plan (the extension lane).
    fn temp_ms(&self, sub: &Subplan) -> f64 {
        (sub.temp_write_blocks as f64) * self.tempdb.write_ms_per_block()
            + (sub.temp_read_blocks as f64) * self.tempdb.read_ms_per_block()
    }

    /// `Σ_Q w_Q · Cost(Q, L)` — the optimization objective (Figure 2).
    pub fn workload_cost(
        &self,
        plans: &[(PhysicalPlan, f64)],
        layout: &Layout,
        disks: &[DiskSpec],
    ) -> f64 {
        plans
            .iter()
            .map(|(plan, w)| w * self.statement_cost(plan, layout, disks))
            .sum()
    }

    /// Cost of one pre-decomposed statement (sum over its sub-plans). The
    /// collector branch is taken once here, not per sub-plan — this is the
    /// call the search's candidate loop makes.
    pub fn statement_cost_subplans(
        &self,
        subs: &[Subplan],
        layout: &Layout,
        disks: &[DiskSpec],
    ) -> f64 {
        if self.collector.enabled() {
            return subs
                .iter()
                .map(|s| self.subplan_cost_traced(s, layout, disks))
                .sum();
        }
        subs.iter()
            .map(|s| self.subplan_cost_untraced(s, layout, disks))
            .sum()
    }

    /// Workload cost over pre-decomposed sub-plans. The search invokes the
    /// cost model thousands of times per run (paper §3: "the scalability of
    /// the solution relies on the cost model being computationally
    /// efficient"), so it decomposes each plan once up front.
    pub fn workload_cost_subplans(
        &self,
        workload: &[(Vec<Subplan>, f64)],
        layout: &Layout,
        disks: &[DiskSpec],
    ) -> f64 {
        workload
            .iter()
            .map(|(subs, w)| w * self.statement_cost_subplans(subs, layout, disks))
            .sum()
    }

    /// Builds a [`DeltaEvaluator`] over `workload`, primed with a full
    /// evaluation of `layout` (its [`DeltaEvaluator::total`] equals
    /// [`CostModel::workload_cost_subplans`] bit for bit).
    pub fn delta_evaluator<'a>(
        &'a self,
        workload: &'a [(Vec<Subplan>, f64)],
        layout: &Layout,
        disks: &'a [DiskSpec],
    ) -> DeltaEvaluator<'a> {
        let mut touching: Vec<Vec<(u32, u32)>> = vec![Vec::new(); layout.object_count()];
        for (s, (subs, _)) in workload.iter().enumerate() {
            for (p, sub) in subs.iter().enumerate() {
                let pair = (s as u32, p as u32);
                for access in &sub.accesses {
                    if let Some(list) = touching.get_mut(access.object.index()) {
                        // Pairs arrive in increasing (s, p) order, so the
                        // last-entry guard keeps each list sorted + unique.
                        if list.last() != Some(&pair) {
                            list.push(pair);
                        }
                    }
                }
            }
        }
        // Per-object totals are layout-independent: aggregate them once
        // into a flat arena so the scoring loop never rebuilds them. The
        // arena is shared (`Arc`) because the search clones the evaluator
        // into every per-iteration job snapshot.
        let mut flat: Vec<(u32, u64)> = Vec::new();
        let spans: Vec<Vec<(u32, u32)>> = workload
            .iter()
            .map(|(subs, _)| {
                subs.iter()
                    .map(|sub| {
                        let start = flat.len() as u32;
                        flat.extend_from_slice(&object_totals(sub));
                        (start, flat.len() as u32 - start)
                    })
                    .collect()
            })
            .collect();
        let mut eval = DeltaEvaluator {
            model: self,
            workload,
            disks,
            sub_costs: Vec::new(),
            stmt_costs: Vec::new(),
            total: 0.0,
            touching,
            totals: Arc::new(SubplanTotals { flat, spans }),
        };
        eval.rebase(layout);
        eval
    }
}

/// Layout-independent per-object block totals for every sub-plan, stored
/// as one flat cache-friendly arena plus `(start, len)` spans per
/// `(statement, sub-plan)`. Built once per [`DeltaEvaluator`]; shared by
/// clones.
#[derive(Debug)]
struct SubplanTotals {
    flat: Vec<(u32, u64)>,
    spans: Vec<Vec<(u32, u32)>>,
}

impl SubplanTotals {
    #[inline]
    fn of(&self, s: usize, p: usize) -> &[(u32, u64)] {
        let (start, len) = self.spans[s][p];
        &self.flat[start as usize..(start + len) as usize]
    }
}

/// Reusable buffers for [`DeltaEvaluator::cost_of_move`]. One per scoring
/// worker; holding it outside the candidate loop makes scoring
/// allocation-free.
#[derive(Debug, Default)]
pub struct EvalScratch {
    touched: Vec<(u32, u32)>,
}

impl EvalScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Incremental Figure-7 evaluation over a fixed decomposed workload.
///
/// The evaluator keeps a ledger of every sub-plan's unweighted cost under a
/// *base* layout. [`DeltaEvaluator::evaluate_move`] re-costs only the
/// sub-plans touching the moved objects and re-sums statements and the
/// workload **in the original evaluation order**, substituting the
/// recomputed terms — the identical sequence of float additions a full
/// [`CostModel::workload_cost_subplans`] performs, with unchanged terms
/// reused. The resulting total is therefore bit-identical to a full
/// re-evaluation (0 ULPs), not merely close: the search can score thousands
/// of candidate moves incrementally without its trajectory ever diverging
/// from a naive implementation's. When a layout change is not expressible
/// as a known set of moved objects, fall back to
/// [`DeltaEvaluator::evaluate_full`] or [`DeltaEvaluator::rebase`].
#[derive(Debug, Clone)]
pub struct DeltaEvaluator<'a> {
    model: &'a CostModel,
    workload: &'a [(Vec<Subplan>, f64)],
    disks: &'a [DiskSpec],
    /// `sub_costs[s][p]` — unweighted cost of statement `s`'s sub-plan `p`
    /// under the base layout.
    sub_costs: Vec<Vec<f64>>,
    /// `stmt_costs[s]` — `w_s · Σ_p sub_costs[s][p]`, summed in `p` order.
    stmt_costs: Vec<f64>,
    /// `Σ_s stmt_costs[s]`, summed in `s` order — the workload objective.
    total: f64,
    /// For each object id, the sorted unique `(statement, sub-plan)` pairs
    /// whose sub-plan accesses it.
    touching: Vec<Vec<(u32, u32)>>,
    /// Cached `object_totals` per sub-plan (layout-independent).
    totals: Arc<SubplanTotals>,
}

/// The outcome of one [`DeltaEvaluator`] evaluation: the recomputed
/// sub-plan and statement costs, and the workload total under the trial
/// layout. [`DeltaEvaluator::apply`] installs it as the new base.
#[derive(Debug, Clone)]
pub struct CostDelta {
    /// Recomputed `(statement, sub-plan, unweighted cost)` triples, sorted.
    sub_updates: Vec<(u32, u32, f64)>,
    /// Recomputed weighted statement costs, sorted by statement.
    stmt_updates: Vec<(u32, f64)>,
    /// Workload cost (ms) under the evaluated layout — bit-identical to a
    /// full re-evaluation of that layout.
    pub total: f64,
}

impl DeltaEvaluator<'_> {
    /// Workload cost of the current base layout (ms).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Scores `layout`, where only the objects in `moved` changed placement
    /// relative to the base layout. Sub-plans not touching a moved object
    /// are reused from the ledger; everything else is recomputed.
    pub fn evaluate_move(&self, layout: &Layout, moved: &[usize]) -> CostDelta {
        let mut touched: Vec<(u32, u32)> = Vec::new();
        for &obj in moved {
            if let Some(list) = self.touching.get(obj) {
                touched.extend_from_slice(list);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        let sub_updates: Vec<(u32, u32, f64)> = touched
            .iter()
            .map(|&(s, p)| (s, p, self.recost_sub(s as usize, p as usize, layout)))
            .collect();
        self.finish(sub_updates)
    }

    /// Workload cost of `layout` (ms) without materializing a
    /// [`CostDelta`] — the allocation-free scoring kernel for the search's
    /// candidate loop. Bit-identical to `evaluate_move(layout,
    /// moved).total`: it replays the exact same addition order (per-statement
    /// sub-plan sums in `p` order, then the workload sum in `s` order,
    /// substituting recomputed terms), it just never stores the updates.
    /// `scratch` carries the reusable buffers; one per worker.
    pub fn cost_of_move(&self, layout: &Layout, moved: &[usize], scratch: &mut EvalScratch) -> f64 {
        scratch.touched.clear();
        for &obj in moved {
            if let Some(list) = self.touching.get(obj) {
                scratch.touched.extend_from_slice(list);
            }
        }
        scratch.touched.sort_unstable();
        scratch.touched.dedup();
        let touched = &scratch.touched;
        let mut total = 0.0f64;
        let mut i = 0usize;
        for (s, &stmt_cached) in self.stmt_costs.iter().enumerate() {
            if touched.get(i).is_none_or(|&(ts, _)| ts != s as u32) {
                total += stmt_cached;
                continue;
            }
            let w = self.workload[s].1;
            let mut sum = 0.0f64;
            for (p, &cached) in self.sub_costs[s].iter().enumerate() {
                if touched
                    .get(i)
                    .is_some_and(|&(ts, tp)| ts == s as u32 && tp == p as u32)
                {
                    sum += self.recost_sub(s, p, layout);
                    i += 1;
                } else {
                    sum += cached;
                }
            }
            total += w * sum;
        }
        total
    }

    /// Recomputes one sub-plan's unweighted cost under `layout`, using the
    /// cached layout-independent object totals. Arithmetic is identical to
    /// [`CostModel::subplan_cost`] (both funnel into the same kernel).
    #[inline]
    fn recost_sub(&self, s: usize, p: usize, layout: &Layout) -> f64 {
        let sub = &self.workload[s].0[p];
        if self.model.collector.enabled() {
            return self.model.subplan_cost_traced(sub, layout, self.disks);
        }
        self.model
            .subplan_cost_untraced_with(sub, self.totals.of(s, p), layout, self.disks)
    }

    /// Scores `layout` by recomputing every sub-plan — the fallback for
    /// arbitrary layout changes, and the reference the incremental path is
    /// differential-tested against (identical totals, bit for bit).
    pub fn evaluate_full(&self, layout: &Layout) -> CostDelta {
        let mut sub_updates = Vec::new();
        for (s, (subs, _)) in self.workload.iter().enumerate() {
            for (p, _) in subs.iter().enumerate() {
                sub_updates.push((s as u32, p as u32, self.recost_sub(s, p, layout)));
            }
        }
        self.finish(sub_updates)
    }

    /// [`DeltaEvaluator::evaluate_full`] without materializing the delta —
    /// the full-re-evaluation twin of [`DeltaEvaluator::cost_of_move`],
    /// used by the reference engine's scoring loop. Bit-identical to
    /// `evaluate_full(layout).total`.
    pub fn cost_of_full(&self, layout: &Layout) -> f64 {
        let mut total = 0.0f64;
        for (s, (subs, w)) in self.workload.iter().enumerate() {
            let mut sum = 0.0f64;
            for (p, _) in subs.iter().enumerate() {
                sum += self.recost_sub(s, p, layout);
            }
            total += w * sum;
        }
        total
    }

    /// Installs a previously evaluated delta as the new base (call after
    /// the search adopts the corresponding layout).
    pub fn apply(&mut self, delta: &CostDelta) {
        for &(s, p, c) in &delta.sub_updates {
            self.sub_costs[s as usize][p as usize] = c;
        }
        for &(s, c) in &delta.stmt_updates {
            self.stmt_costs[s as usize] = c;
        }
        self.total = delta.total;
    }

    /// Rebuilds the whole ledger against `layout` — the full-evaluation
    /// fallback when the base layout changed in ways no move describes.
    pub fn rebase(&mut self, layout: &Layout) {
        let sub_costs: Vec<Vec<f64>> = self
            .workload
            .iter()
            .map(|(subs, _)| {
                subs.iter()
                    .map(|sub| self.model.subplan_cost(sub, layout, self.disks))
                    .collect()
            })
            .collect();
        let stmt_costs: Vec<f64> = self
            .workload
            .iter()
            .zip(&sub_costs)
            .map(|((_, w), subs)| w * subs.iter().sum::<f64>())
            .collect();
        self.total = stmt_costs.iter().sum();
        self.sub_costs = sub_costs;
        self.stmt_costs = stmt_costs;
    }

    /// Folds recomputed sub-plan costs into statement and workload totals,
    /// replaying the exact addition order of a full evaluation.
    fn finish(&self, sub_updates: Vec<(u32, u32, f64)>) -> CostDelta {
        let mut stmt_updates: Vec<(u32, f64)> = Vec::new();
        let mut i = 0usize;
        while i < sub_updates.len() {
            let s = sub_updates[i].0;
            let w = self.workload[s as usize].1;
            let mut sum = 0.0f64;
            for (p, &cached) in self.sub_costs[s as usize].iter().enumerate() {
                let next_is_update = sub_updates
                    .get(i)
                    .is_some_and(|&(us, up, _)| us == s && up == p as u32);
                if next_is_update {
                    sum += sub_updates[i].2;
                    i += 1;
                } else {
                    sum += cached;
                }
            }
            stmt_updates.push((s, w * sum));
        }
        let mut total = 0.0f64;
        let mut u = 0usize;
        for (s, &cached) in self.stmt_costs.iter().enumerate() {
            let updated = stmt_updates.get(u).is_some_and(|&(us, _)| us == s as u32);
            if updated {
                total += stmt_updates[u].1;
                u += 1;
            } else {
                total += cached;
            }
        }
        CostDelta {
            sub_updates,
            stmt_updates,
            total,
        }
    }
}

/// Aggregates each object's total blocks across a sub-plan's accesses.
/// Objects may appear once per access kind; the seek term needs per-object
/// totals (built once — [`CostModel::subplan_cost`] is the search's hot
/// loop), while transfer is charged at each access's own rate.
#[inline]
fn object_totals(sub: &Subplan) -> Vec<(u32, u64)> {
    let mut totals: Vec<(u32, u64)> = Vec::with_capacity(sub.accesses.len());
    for access in &sub.accesses {
        let idx = access.object.0;
        match totals.iter_mut().find(|(o, _)| *o == idx) {
            Some((_, t)) => *t += access.blocks,
            None => totals.push((idx, access.blocks)),
        }
    }
    totals
}

/// One disk's Figure-7 terms for a sub-plan: `(transfer_ms, seek_ms, k)`
/// where `k` is how many accessed objects live on the disk. Shared by the
/// traced and untraced cost paths so their arithmetic cannot diverge.
#[inline]
fn disk_term(
    sub: &Subplan,
    totals: &[(u32, u64)],
    layout: &Layout,
    j: usize,
    disk: &DiskSpec,
) -> (f64, f64, usize) {
    let mut k = 0usize;
    let mut min_share = f64::INFINITY;
    for &(obj, total_blocks) in totals {
        let x = layout.fraction(obj as usize, j);
        if x <= 0.0 || total_blocks == 0 {
            continue;
        }
        k += 1;
        min_share = min_share.min(x * total_blocks as f64);
    }
    let mut transfer = 0.0;
    for access in &sub.accesses {
        let x = layout.fraction(access.object.index(), j);
        if x <= 0.0 {
            continue;
        }
        let ms_per_block = if access.kind.is_read() {
            disk.read_ms_per_block()
        } else {
            disk.write_ms_per_block()
        };
        transfer += x * access.blocks as f64 * ms_per_block;
    }
    let seek = if k > 1 {
        k as f64 * disk.avg_seek_ms * min_share
    } else {
        0.0
    };
    (transfer, seek, k)
}

/// Decomposes a weighted workload once, for repeated cost evaluation.
pub fn decompose_workload(plans: &[(PhysicalPlan, f64)]) -> Vec<(Vec<Subplan>, f64)> {
    plans.iter().map(|(p, w)| (p.subplans(), *w)).collect()
}

/// [`CostModel::statement_cost`] with the default model.
pub fn statement_cost(plan: &PhysicalPlan, layout: &Layout, disks: &[DiskSpec]) -> f64 {
    CostModel::default().statement_cost(plan, layout, disks)
}

/// [`CostModel::workload_cost`] with the default model.
pub fn workload_cost(plans: &[(PhysicalPlan, f64)], layout: &Layout, disks: &[DiskSpec]) -> f64 {
    CostModel::default().workload_cost(plans, layout, disks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::ObjectId;
    use dblayout_disksim::uniform_disks;
    use dblayout_planner::PlanNode;

    fn scan(obj: u32, blocks: u64) -> PlanNode {
        PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64,
        }
    }

    /// A=300, B=150 merge-joined; 3 identical disks (Example 5 setup).
    fn example5() -> (PhysicalPlan, Vec<DiskSpec>, Vec<u64>) {
        let plan = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "a=b".into(),
            rows: 100.0,
            left: Box::new(scan(0, 300)),
            right: Box::new(scan(1, 150)),
        });
        let disks = uniform_disks(3, 100_000, 10.0, 20.0);
        (plan, disks, vec![300, 150])
    }

    #[test]
    fn example5_cost_ordering_l3_l1_l2() {
        let (plan, disks, sizes) = example5();
        let t = disks[0].read_ms_per_block(); // 1/T in ms per block
        let s = disks[0].avg_seek_ms;

        // L1: full striping — cost = 150/T + 100·S per the paper.
        let l1 = Layout::full_striping(sizes.clone(), &disks);
        let c1 = statement_cost(&plan, &l1, &disks);
        assert!(
            (c1 - (150.0 * t + 2.0 * 50.0 * s)).abs() < 1e-6,
            "c1 = {c1}"
        );

        // L2: A on D1,D2; B on D2,D3 — bottleneck D2 = 225/T + 150·S.
        let mut l2 = Layout::empty(sizes.clone(), 3);
        l2.place(0, &[(0, 1.0), (1, 1.0)]);
        l2.place(1, &[(1, 1.0), (2, 1.0)]);
        let c2 = statement_cost(&plan, &l2, &disks);
        assert!(
            (c2 - (225.0 * t + 2.0 * 75.0 * s)).abs() < 1e-6,
            "c2 = {c2}"
        );

        // L3: A on D1,D2; B on D3 — no co-location, cost = 150/T.
        let mut l3 = Layout::empty(sizes, 3);
        l3.place(0, &[(0, 1.0), (1, 1.0)]);
        l3.place(1, &[(2, 1.0)]);
        let c3 = statement_cost(&plan, &l3, &disks);
        assert!((c3 - 150.0 * t).abs() < 1e-6, "c3 = {c3}");

        // Paper's conclusion: L3 < L1 < L2.
        assert!(c3 < c1 && c1 < c2);
    }

    #[test]
    fn single_object_scan_has_no_seek_cost() {
        let disks = uniform_disks(4, 100_000, 10.0, 20.0);
        let plan = PhysicalPlan::new(scan(0, 400));
        let striped = Layout::full_striping(vec![400], &disks);
        let c = statement_cost(&plan, &striped, &disks);
        let t = disks[0].read_ms_per_block();
        assert!((c - 100.0 * t).abs() < 1e-6);
    }

    #[test]
    fn wider_striping_reduces_single_scan_cost() {
        let disks = uniform_disks(8, 100_000, 10.0, 20.0);
        let plan = PhysicalPlan::new(scan(0, 800));
        let mut narrow = Layout::empty(vec![800], 8);
        narrow.place(0, &[(0, 1.0), (1, 1.0)]);
        let wide = Layout::full_striping(vec![800], &disks);
        assert!(statement_cost(&plan, &wide, &disks) < statement_cost(&plan, &narrow, &disks));
    }

    #[test]
    fn write_accesses_use_write_rate() {
        let disks = uniform_disks(1, 100_000, 10.0, 20.0);
        let read_plan = PhysicalPlan::new(scan(0, 100));
        let write_plan = PhysicalPlan::new(PlanNode::Insert {
            object: ObjectId(0),
            name: "t".into(),
            write_blocks: 100,
            rows: 100.0,
            child: None,
        });
        let layout = Layout::full_striping(vec![100], &disks);
        let cr = statement_cost(&read_plan, &layout, &disks);
        let cw = statement_cost(&write_plan, &layout, &disks);
        assert!(cw > cr, "writes are slower: {cw} vs {cr}");
    }

    #[test]
    fn blocking_subplans_sum() {
        let disks = uniform_disks(2, 100_000, 10.0, 20.0);
        // HashJoin: build(0) and probe(1) in different sub-plans → costs add.
        let plan = PhysicalPlan::new(PlanNode::HashJoin {
            on: "x".into(),
            rows: 1.0,
            build: Box::new(scan(0, 100)),
            probe: Box::new(scan(1, 100)),
            spill_blocks: 0,
        });
        let layout = Layout::full_striping(vec![100, 100], &disks);
        let c = statement_cost(&plan, &layout, &disks);
        let t = disks[0].read_ms_per_block();
        // Each sub-plan: 50 blocks on the bottleneck disk, no seeks.
        assert!((c - 2.0 * 50.0 * t).abs() < 1e-6, "c = {c}");
    }

    #[test]
    fn temp_io_excluded_by_default_included_on_flag() {
        let disks = uniform_disks(2, 100_000, 10.0, 20.0);
        let plan = PhysicalPlan::new(PlanNode::Sort {
            by: "k".into(),
            rows: 1e5,
            spill_blocks: 10_000,
            child: Box::new(scan(0, 10)),
        });
        let layout = Layout::full_striping(vec![10], &disks);
        let base = statement_cost(&plan, &layout, &disks);
        let with_temp = CostModel {
            include_temp_io: true,
            ..CostModel::default()
        }
        .statement_cost(&plan, &layout, &disks);
        assert!(with_temp > base * 10.0, "{with_temp} vs {base}");
    }

    #[test]
    fn workload_cost_weights_statements() {
        let disks = uniform_disks(2, 100_000, 10.0, 20.0);
        let plan = PhysicalPlan::new(scan(0, 100));
        let layout = Layout::full_striping(vec![100], &disks);
        let single = statement_cost(&plan, &layout, &disks);
        let total = workload_cost(&[(plan, 3.0)], &layout, &disks);
        assert!((total - 3.0 * single).abs() < 1e-9);
    }

    /// The traced path shares `disk_term` with the hot path; this guards
    /// against the two ever diverging.
    #[test]
    fn traced_cost_is_bit_identical_to_untraced() {
        use dblayout_obs::{Collector, RingSink};
        use std::sync::Arc;
        let (plan, disks, sizes) = example5();
        let layout = Layout::full_striping(sizes, &disks);
        let ring = Arc::new(RingSink::new(1024));
        let traced = CostModel {
            collector: Collector::deterministic(ring.clone()),
            ..CostModel::default()
        };
        let c0 = CostModel::default().statement_cost(&plan, &layout, &disks);
        let c1 = traced.statement_cost(&plan, &layout, &disks);
        assert_eq!(c0.to_bits(), c1.to_bits());
        let records = ring.drain();
        // One subplan span with per-disk term events and a bottleneck
        // summary on the span end.
        assert!(records.iter().any(|r| r.name == "costmodel.disk"));
        let end = records
            .iter()
            .find(|r| r.kind == dblayout_obs::RecordKind::SpanEnd)
            .unwrap();
        assert_eq!(
            end.field_f64("cost_ms").map(f64::to_bits),
            Some(c1.to_bits())
        );
    }

    /// Two statements over three objects: a merge join (0 ⋈ 1) weighted 5
    /// and a scan of 2 weighted 1 — enough structure that moving one
    /// object touches some but not all sub-plans.
    #[allow(clippy::type_complexity)]
    fn delta_fixture() -> (Vec<(Vec<Subplan>, f64)>, Vec<DiskSpec>, Layout) {
        let join = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "a=b".into(),
            rows: 100.0,
            left: Box::new(scan(0, 300)),
            right: Box::new(scan(1, 150)),
        });
        let lone = PhysicalPlan::new(scan(2, 90));
        let disks = uniform_disks(3, 100_000, 10.0, 20.0);
        let workload = decompose_workload(&[(join, 5.0), (lone, 1.0)]);
        let mut layout = Layout::empty(vec![300, 150, 90], 3);
        layout.place(0, &[(0, 1.0), (1, 1.0)]);
        layout.place(1, &[(2, 1.0)]);
        layout.place(2, &[(0, 0.5), (1, 0.25), (2, 0.25)]);
        (workload, disks, layout)
    }

    #[test]
    fn delta_evaluator_base_total_is_bit_identical_to_full_cost() {
        let (workload, disks, layout) = delta_fixture();
        let model = CostModel::default();
        let eval = model.delta_evaluator(&workload, &layout, &disks);
        let full = model.workload_cost_subplans(&workload, &layout, &disks);
        assert_eq!(eval.total().to_bits(), full.to_bits());
    }

    #[test]
    fn evaluate_move_is_bit_identical_to_full_reevaluation() {
        let (workload, disks, layout) = delta_fixture();
        let model = CostModel::default();
        let eval = model.delta_evaluator(&workload, &layout, &disks);
        // Move object 1 (touches only the join's sub-plan) onto all disks.
        let mut trial = layout.clone();
        trial.place(1, &[(0, 1.0), (1, 1.0), (2, 1.0)]);
        let delta = eval.evaluate_move(&trial, &[1]);
        let full = model.workload_cost_subplans(&workload, &trial, &disks);
        assert_eq!(delta.total.to_bits(), full.to_bits());
        // The explicit full-evaluation fallback agrees too.
        let via_full = eval.evaluate_full(&trial);
        assert_eq!(via_full.total.to_bits(), full.to_bits());
    }

    #[test]
    fn cost_of_move_is_bit_identical_to_evaluate_move() {
        let (workload, disks, layout) = delta_fixture();
        let model = CostModel::default();
        let eval = model.delta_evaluator(&workload, &layout, &disks);
        let mut scratch = EvalScratch::new();
        for (moved, split) in [
            (vec![1usize], vec![(0usize, 1.0), (1, 1.0), (2, 1.0)]),
            (vec![0], vec![(2, 1.0)]),
            (vec![2], vec![(0, 1.0), (1, 1.0)]),
            (vec![0, 1], vec![(1, 1.0)]),
        ] {
            let mut trial = layout.clone();
            for &obj in &moved {
                trial.place(obj, &split);
            }
            let fast = eval.cost_of_move(&trial, &moved, &mut scratch);
            let slow = eval.evaluate_move(&trial, &moved);
            assert_eq!(fast.to_bits(), slow.total.to_bits(), "moved {moved:?}");
            let full = eval.cost_of_full(&trial);
            assert_eq!(full.to_bits(), eval.evaluate_full(&trial).total.to_bits());
        }
    }

    #[test]
    fn apply_installs_the_trial_as_the_new_base() {
        let (workload, disks, layout) = delta_fixture();
        let model = CostModel::default();
        let mut eval = model.delta_evaluator(&workload, &layout, &disks);
        let mut trial = layout.clone();
        trial.place(2, &[(0, 1.0)]);
        let delta = eval.evaluate_move(&trial, &[2]);
        eval.apply(&delta);
        // After apply, the evaluator behaves as if constructed on `trial`:
        // further moves score bit-identically to a fresh evaluator.
        let fresh = model.delta_evaluator(&workload, &trial, &disks);
        assert_eq!(eval.total().to_bits(), fresh.total().to_bits());
        let mut next = trial.clone();
        next.place(0, &[(0, 1.0), (1, 1.0), (2, 1.0)]);
        let a = eval.evaluate_move(&next, &[0]);
        let b = fresh.evaluate_move(&next, &[0]);
        assert_eq!(a.total.to_bits(), b.total.to_bits());
    }

    #[test]
    fn rebase_resyncs_after_arbitrary_layout_change() {
        let (workload, disks, layout) = delta_fixture();
        let model = CostModel::default();
        let mut eval = model.delta_evaluator(&workload, &layout, &disks);
        // Change several objects at once without telling the evaluator
        // which — rebase is the recovery path.
        let other = Layout::full_striping(vec![300, 150, 90], &disks);
        eval.rebase(&other);
        let full = model.workload_cost_subplans(&workload, &other, &disks);
        assert_eq!(eval.total().to_bits(), full.to_bits());
    }

    #[test]
    fn heterogeneous_disks_bottleneck_on_slowest() {
        let mut disks = uniform_disks(2, 100_000, 10.0, 20.0);
        disks[1].read_mb_s = 10.0; // half speed
        let plan = PhysicalPlan::new(scan(0, 200));
        // Uniform 50/50 split: slow disk is the bottleneck.
        let mut even = Layout::empty(vec![200], 2);
        even.place(0, &[(0, 1.0), (1, 1.0)]);
        let c_even = statement_cost(&plan, &even, &disks);
        // Rate-proportional split equalizes finish times and costs less.
        let prop = Layout::full_striping(vec![200], &disks);
        let c_prop = statement_cost(&plan, &prop, &disks);
        assert!(c_prop < c_even, "{c_prop} vs {c_even}");
    }
}
