//! Deployment-script generation: turning a recommended [`Layout`] into the
//! filegroup DDL a DBA would run (paper §2.1 / Figure 1).
//!
//! Commercial systems express layouts through *filegroups* (SQL Server) or
//! *tablespaces* (Oracle, DB2): a filegroup is a set of files on one or
//! more drives, and each object is assigned to exactly one filegroup with
//! proportional fill across its files. A layout therefore compiles to:
//!
//! 1. one filegroup per distinct `(disk set, fraction row)` among objects,
//! 2. one file per `(filegroup, disk)` pair, sized to the blocks placed
//!    there,
//! 3. an object → filegroup assignment per object.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dblayout_catalog::{Catalog, ObjectKind, BLOCK_BYTES};
use dblayout_disksim::{DiskSpec, Layout};

/// One derived filegroup.
#[derive(Debug, Clone, PartialEq)]
pub struct Filegroup {
    /// Generated name, `FG_1 …`.
    pub name: String,
    /// The disks it spans (indices into the drive list).
    pub disks: Vec<usize>,
    /// Objects assigned to it (object indices).
    pub objects: Vec<usize>,
    /// Total blocks per disk across its objects.
    pub blocks_per_disk: Vec<u64>,
}

/// A layout compiled to filegroups.
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    /// Filegroups in deterministic order (largest first).
    pub filegroups: Vec<Filegroup>,
}

/// Compiles `layout` into filegroups: objects sharing a disk set (to within
/// fraction rounding) share a filegroup.
pub fn compile_filegroups(layout: &Layout) -> DeploymentPlan {
    // Key: quantized fraction row (per-mille), so objects with identical
    // placement share a group even across float noise.
    let mut groups: BTreeMap<Vec<u32>, Vec<usize>> = BTreeMap::new();
    for i in 0..layout.object_count() {
        let key: Vec<u32> = layout
            .fractions_of(i)
            .iter()
            .map(|f| (f * 1000.0).round() as u32)
            .collect();
        groups.entry(key).or_default().push(i);
    }
    let mut filegroups: Vec<Filegroup> = groups
        .into_values()
        .map(|objects| {
            let disks = layout.disks_of(objects[0]);
            let m = layout.disk_count();
            let mut blocks_per_disk = vec![0u64; m];
            for &i in &objects {
                for (j, b) in layout.blocks_on(i).into_iter().enumerate() {
                    blocks_per_disk[j] += b;
                }
            }
            Filegroup {
                name: String::new(),
                disks,
                objects,
                blocks_per_disk,
            }
        })
        .collect();
    // Largest filegroup first, then name them.
    filegroups.sort_by_key(|fg| std::cmp::Reverse(fg.blocks_per_disk.iter().sum::<u64>()));
    for (idx, fg) in filegroups.iter_mut().enumerate() {
        fg.name = format!("FG_{}", idx + 1);
    }
    DeploymentPlan { filegroups }
}

/// Renders a SQL Server-flavored deployment script for the plan: filegroup
/// and file DDL plus the object relocations (clustered objects move via
/// `CREATE CLUSTERED INDEX … WITH (DROP_EXISTING = ON)`; heaps and
/// nonclustered indexes via rebuild).
pub fn render_script(
    database: &str,
    catalog: &Catalog,
    layout: &Layout,
    disks: &[DiskSpec],
) -> String {
    let plan = compile_filegroups(layout);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- dblayout deployment script for database [{database}]"
    );
    let _ = writeln!(
        out,
        "-- {} filegroups over {} drives",
        plan.filegroups.len(),
        disks.len()
    );
    for fg in &plan.filegroups {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "ALTER DATABASE [{database}] ADD FILEGROUP [{}];",
            fg.name
        );
        for &j in &fg.disks {
            let mb = (fg.blocks_per_disk[j] * BLOCK_BYTES).div_ceil(1_000_000);
            let _ = writeln!(
                out,
                "ALTER DATABASE [{database}] ADD FILE (NAME = '{fg}_{disk}', \
                 FILENAME = '{disk}:\\{db}\\{fg}_{disk}.ndf', SIZE = {mb}MB) TO FILEGROUP [{fg}];",
                fg = fg.name,
                disk = disks[j].name,
                db = database,
                mb = mb
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "-- object relocations");
    for fg in &plan.filegroups {
        for &i in &fg.objects {
            let meta = catalog.meta(dblayout_catalog::ObjectId(i as u32));
            match meta.kind {
                ObjectKind::Table => {
                    let table = catalog.table(&meta.name).expect("table meta");
                    if let Some(key) = table.clustered_on.first() {
                        let _ = writeln!(
                            out,
                            "CREATE CLUSTERED INDEX [cix_{name}] ON [{name}] ([{key}]) \
                             WITH (DROP_EXISTING = ON) ON [{fg}];",
                            name = meta.name,
                            key = key,
                            fg = fg.name
                        );
                    } else {
                        let _ = writeln!(
                            out,
                            "-- heap [{}]: rebuild onto [{}] via ALTER TABLE ... REBUILD",
                            meta.name, fg.name
                        );
                    }
                }
                ObjectKind::Index => {
                    let index = catalog.index(&meta.name).expect("index meta");
                    let cols = index.key_columns.join("], [");
                    let _ = writeln!(
                        out,
                        "CREATE INDEX [{name}] ON [{table}] ([{cols}]) \
                         WITH (DROP_EXISTING = ON) ON [{fg}];",
                        name = meta.name,
                        table = index.table,
                        cols = cols,
                        fg = fg.name
                    );
                }
                ObjectKind::MaterializedView => {
                    let _ = writeln!(
                        out,
                        "-- materialized view [{}]: recreate its clustered index ON [{}]",
                        meta.name, fg.name
                    );
                }
                ObjectKind::Temp => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::tpch::tpch_catalog;
    use dblayout_disksim::uniform_disks;

    fn setup() -> (Catalog, Vec<DiskSpec>, Layout) {
        let catalog = tpch_catalog(0.05);
        let disks = uniform_disks(4, 400_000, 10.0, 20.0);
        let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
        let mut layout = Layout::full_striping(sizes, &disks);
        let li = catalog.object_id("lineitem").unwrap().index();
        let or = catalog.object_id("orders").unwrap().index();
        layout.place_proportional(li, &[0, 1], &disks);
        layout.place_proportional(or, &[2, 3], &disks);
        (catalog, disks, layout)
    }

    #[test]
    fn objects_with_same_placement_share_filegroup() {
        let (_, _, layout) = setup();
        let plan = compile_filegroups(&layout);
        // Three distinct placements: striped-all, {0,1}, {2,3}.
        assert_eq!(plan.filegroups.len(), 3);
        let total_objects: usize = plan.filegroups.iter().map(|f| f.objects.len()).sum();
        assert_eq!(total_objects, layout.object_count());
    }

    #[test]
    fn filegroups_named_largest_first() {
        let (_, _, layout) = setup();
        let plan = compile_filegroups(&layout);
        assert_eq!(plan.filegroups[0].name, "FG_1");
        let sizes: Vec<u64> = plan
            .filegroups
            .iter()
            .map(|f| f.blocks_per_disk.iter().sum())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn script_contains_ddl_for_every_object_and_file() {
        let (catalog, disks, layout) = setup();
        let script = render_script("tpch", &catalog, &layout, &disks);
        assert!(script.contains("ADD FILEGROUP [FG_1]"));
        assert!(script.contains("TO FILEGROUP"));
        // Every table relocates via its clustered index.
        for t in catalog.tables() {
            assert!(
                script.contains(&format!("ON [{}]", t.name)),
                "missing relocation for {}",
                t.name
            );
        }
        // Nonclustered indexes rebuilt too.
        assert!(script.contains("idx_lineitem_shipdate"));
    }

    #[test]
    fn file_sizes_cover_the_blocks() {
        let (_, disks, layout) = setup();
        let plan = compile_filegroups(&layout);
        for fg in &plan.filegroups {
            for &j in &fg.disks {
                assert!(
                    fg.blocks_per_disk[j] > 0,
                    "{} on {}",
                    fg.name,
                    disks[j].name
                );
            }
        }
    }
}
