//! The end-to-end advisor (paper §3, Figure 3).
//!
//! Inputs: a database (catalog), a workload (weighted SQL DML statements or
//! a workload file), a disk-drive list, and optional constraints. Output: a
//! recommended layout plus "an estimate of the percentage improvement in
//! I/O response time if the recommended layout were to be actually
//! implemented".
//!
//! Pipeline: parse → optimize each statement (no-execute plans) → *Analyze
//! Workload* (access graph) → *Search* (TS-GREEDY) → report costs against
//! the FULL STRIPING baseline.

use std::fmt;

use dblayout_catalog::Catalog;
use dblayout_disksim::{DiskSpec, Layout, LayoutError};
use dblayout_obs::counters::{self, Counter};
use dblayout_obs::prof::PhaseTimer;
use dblayout_partition::Graph;
use dblayout_planner::{plan_statement, PhysicalPlan, PlanError, Subplan};
use dblayout_sql::{parse_workload_file, ParseError, Statement};

use crate::access_graph::extend_access_graph_traced;
use crate::costmodel::{decompose_workload, CostModel};
use crate::tsgreedy::{ts_greedy, SearchError, TsGreedyConfig, TsGreedyResult};

/// Advisor configuration.
#[derive(Debug, Clone, Default)]
pub struct AdvisorConfig {
    /// TS-GREEDY search settings (includes constraints and cost model).
    pub search: TsGreedyConfig,
    /// Wall-clock phase attribution (`dblayout-prof`). Disabled by
    /// default (free); when enabled the pipeline records `analyze` /
    /// `build-graph` / `search` / `cost` phases into the shared profile.
    pub prof: PhaseTimer,
}

/// Anything that can go wrong end to end.
#[derive(Debug, Clone, PartialEq)]
pub enum AdvisorError {
    /// Workload text failed to parse.
    Parse(ParseError),
    /// A statement failed to plan (unknown table/column, ...).
    Plan(PlanError),
    /// A layout failed validation.
    Layout(LayoutError),
    /// The search could not satisfy the constraints.
    Search(SearchError),
    /// The workload is empty.
    EmptyWorkload,
}

impl fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdvisorError::Parse(e) => write!(f, "workload parse error: {e}"),
            AdvisorError::Plan(e) => write!(f, "planning error: {e}"),
            AdvisorError::Layout(e) => write!(f, "layout error: {e}"),
            AdvisorError::Search(e) => write!(f, "search error: {e}"),
            AdvisorError::EmptyWorkload => write!(f, "the workload contains no statements"),
        }
    }
}

impl std::error::Error for AdvisorError {}

impl From<ParseError> for AdvisorError {
    fn from(e: ParseError) -> Self {
        AdvisorError::Parse(e)
    }
}
impl From<PlanError> for AdvisorError {
    fn from(e: PlanError) -> Self {
        AdvisorError::Plan(e)
    }
}
impl From<LayoutError> for AdvisorError {
    fn from(e: LayoutError) -> Self {
        AdvisorError::Layout(e)
    }
}
impl From<SearchError> for AdvisorError {
    fn from(e: SearchError) -> Self {
        AdvisorError::Search(e)
    }
}

/// The advisor's output.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Recommended layout.
    pub layout: Layout,
    /// The FULL STRIPING baseline layout over the same disks.
    pub full_striping: Layout,
    /// Estimated workload I/O response time under the recommendation (ms).
    pub recommended_cost_ms: f64,
    /// Estimated workload I/O response time under full striping (ms).
    pub full_striping_cost_ms: f64,
    /// `100 · (fs − rec) / fs` — the headline number of Figure 10.
    pub estimated_improvement_pct: f64,
    /// The workload's access graph (diagnostics / visualization).
    pub access_graph: Graph,
    /// The execution plans the advice was computed from, with weights —
    /// reusable for simulation or re-costing.
    pub plans: Vec<(PhysicalPlan, f64)>,
    /// Search statistics.
    pub search: SearchStats,
}

/// Search statistics carried out of TS-GREEDY.
#[derive(Debug, Clone, Copy)]
pub struct SearchStats {
    /// Greedy iterations adopted.
    pub iterations: usize,
    /// Cost-model invocations.
    pub cost_evaluations: usize,
    /// Cost of the step-1 (partition-only) layout.
    pub step1_cost_ms: f64,
}

/// The layout advisor bound to a database and a drive set.
pub struct Advisor<'a> {
    catalog: &'a Catalog,
    disks: &'a [DiskSpec],
}

impl<'a> Advisor<'a> {
    /// Binds the advisor to a catalog and disk set.
    pub fn new(catalog: &'a Catalog, disks: &'a [DiskSpec]) -> Self {
        Self { catalog, disks }
    }

    /// Plans every statement ("Analyze Workload" requires only the
    /// optimizer's plan, never execution — paper §4.2).
    pub fn plan_workload(
        &self,
        workload: &[(Statement, f64)],
    ) -> Result<Vec<(PhysicalPlan, f64)>, AdvisorError> {
        workload
            .iter()
            .map(|(stmt, w)| Ok((plan_statement(self.catalog, stmt)?, *w)))
            .collect()
    }

    /// Full recommendation from pre-parsed weighted statements.
    pub fn recommend(
        &self,
        workload: &[(Statement, f64)],
        cfg: &AdvisorConfig,
    ) -> Result<Recommendation, AdvisorError> {
        if workload.is_empty() {
            return Err(AdvisorError::EmptyWorkload);
        }
        let plans = {
            let _phase = cfg.prof.phase("analyze");
            self.plan_workload(workload)?
        };
        self.recommend_from_plans(plans, cfg)
    }

    /// Full recommendation from a workload file (see
    /// [`dblayout_sql::parse_workload_file`] for the format).
    pub fn recommend_sql(
        &self,
        workload_text: &str,
        cfg: &AdvisorConfig,
    ) -> Result<Recommendation, AdvisorError> {
        let entries = parse_workload_file(workload_text)?;
        let workload: Vec<(Statement, f64)> = entries
            .into_iter()
            .map(|e| (e.statement, e.weight))
            .collect();
        self.recommend(&workload, cfg)
    }

    /// Recommendation from already-planned statements (lets experiments
    /// reuse one set of plans across many advisor runs).
    pub fn recommend_from_plans(
        &self,
        plans: Vec<(PhysicalPlan, f64)>,
        cfg: &AdvisorConfig,
    ) -> Result<Recommendation, AdvisorError> {
        if plans.is_empty() {
            return Err(AdvisorError::EmptyWorkload);
        }
        let n_objects = self.catalog.objects().len();
        // The search collector also witnesses the Analyze-Workload pass, so
        // one `dblayout explain` trace covers the whole Figure-3 pipeline.
        let mut graph = dblayout_partition::Graph::new(n_objects);
        {
            let _phase = cfg.prof.phase("build-graph");
            extend_access_graph_traced(&mut graph, &plans, &cfg.search.collector);
        }
        let workload = {
            let _phase = cfg.prof.phase("analyze");
            decompose_workload(&plans)
        };
        self.recommend_prepared(plans, graph, &workload, cfg)
    }

    /// Recommendation from a pre-built access graph and pre-decomposed
    /// sub-plan workload (lets a long-lived service maintain both
    /// incrementally and skip the per-request *Analyze Workload* pass).
    ///
    /// `graph` and `workload` must correspond to `plans` — i.e. be what
    /// [`build_access_graph`] / [`decompose_workload`] would produce from
    /// them — or the costs reported will not match the layout searched.
    pub fn recommend_prepared(
        &self,
        plans: Vec<(PhysicalPlan, f64)>,
        graph: Graph,
        workload: &[(Vec<Subplan>, f64)],
        cfg: &AdvisorConfig,
    ) -> Result<Recommendation, AdvisorError> {
        if plans.is_empty() {
            return Err(AdvisorError::EmptyWorkload);
        }
        let sizes: Vec<u64> = self
            .catalog
            .objects()
            .iter()
            .map(|o| o.size_blocks)
            .collect();

        let TsGreedyResult {
            layout,
            initial_cost,
            final_cost,
            iterations,
            cost_evaluations,
            ..
        } = {
            let _phase = cfg.prof.phase("search");
            ts_greedy(&sizes, &graph, workload, self.disks, &cfg.search)?
        };

        let model: &CostModel = &cfg.search.cost_model;
        let _phase = cfg.prof.phase("cost");
        let full_striping = Layout::full_striping(sizes, self.disks);
        full_striping.validate(self.disks)?;
        counters::incr(Counter::CostmodelFullRecosts);
        let fs_cost = model.workload_cost_subplans(workload, &full_striping, self.disks);

        // Never recommend worse than the trivial baseline: when the search
        // plateaus above FULL STRIPING (possible only under tight
        // constraints), fall back to it if it satisfies the constraints.
        let (layout, rec_cost) = if final_cost > fs_cost
            && cfg
                .search
                .constraints
                .check(&full_striping, self.disks)
                .is_ok()
        {
            (full_striping.clone(), fs_cost)
        } else {
            (layout, final_cost)
        };

        let improvement = if fs_cost > 0.0 {
            100.0 * (fs_cost - rec_cost) / fs_cost
        } else {
            0.0
        };

        Ok(Recommendation {
            layout,
            full_striping,
            recommended_cost_ms: rec_cost,
            full_striping_cost_ms: fs_cost,
            estimated_improvement_pct: improvement,
            access_graph: graph,
            plans,
            search: SearchStats {
                iterations,
                cost_evaluations,
                step1_cost_ms: initial_cost,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::tpch::tpch_catalog;
    use dblayout_disksim::{paper_disks, uniform_disks};

    #[test]
    fn merge_join_workload_improves_over_full_striping() {
        let catalog = tpch_catalog(0.1);
        let disks = paper_disks();
        let advisor = Advisor::new(&catalog, &disks);
        let rec = advisor
            .recommend_sql(
                "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;",
                &AdvisorConfig::default(),
            )
            .unwrap();
        assert!(
            rec.estimated_improvement_pct > 10.0,
            "got {}",
            rec.estimated_improvement_pct
        );
        // lineitem and orders on disjoint disks.
        let li = catalog.object_id("lineitem").unwrap().index();
        let or = catalog.object_id("orders").unwrap().index();
        let dl = rec.layout.disks_of(li);
        let dor = rec.layout.disks_of(or);
        assert!(dl.iter().all(|j| !dor.contains(j)), "{dl:?} vs {dor:?}");
        rec.layout.validate(&disks).unwrap();
    }

    #[test]
    fn single_scan_workload_matches_full_striping() {
        let catalog = tpch_catalog(0.1);
        let disks = uniform_disks(4, 200_000, 10.0, 20.0);
        let advisor = Advisor::new(&catalog, &disks);
        let rec = advisor
            .recommend_sql("SELECT COUNT(*) FROM lineitem;", &AdvisorConfig::default())
            .unwrap();
        assert!(
            rec.estimated_improvement_pct.abs() < 1.0,
            "got {}",
            rec.estimated_improvement_pct
        );
    }

    #[test]
    fn weighted_statements_shift_recommendation() {
        let catalog = tpch_catalog(0.1);
        let disks = paper_disks();
        let advisor = Advisor::new(&catalog, &disks);
        // The join dominates via weight, so separation should win even with
        // a competing scan-heavy statement.
        let rec = advisor
            .recommend_sql(
                "-- weight: 50\n\
                 SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;\n\
                 SELECT COUNT(*) FROM lineitem;",
                &AdvisorConfig::default(),
            )
            .unwrap();
        assert!(rec.estimated_improvement_pct > 0.0);
    }

    #[test]
    fn empty_workload_rejected() {
        let catalog = tpch_catalog(0.01);
        let disks = paper_disks();
        let advisor = Advisor::new(&catalog, &disks);
        assert!(matches!(
            advisor.recommend_sql("", &AdvisorConfig::default()),
            Err(AdvisorError::EmptyWorkload)
        ));
    }

    #[test]
    fn parse_error_propagates() {
        let catalog = tpch_catalog(0.01);
        let disks = paper_disks();
        let advisor = Advisor::new(&catalog, &disks);
        assert!(matches!(
            advisor.recommend_sql("SELEC oops;", &AdvisorConfig::default()),
            Err(AdvisorError::Parse(_))
        ));
    }

    #[test]
    fn plan_error_propagates() {
        let catalog = tpch_catalog(0.01);
        let disks = paper_disks();
        let advisor = Advisor::new(&catalog, &disks);
        assert!(matches!(
            advisor.recommend_sql("SELECT * FROM no_such_table;", &AdvisorConfig::default()),
            Err(AdvisorError::Plan(_))
        ));
    }

    #[test]
    fn recommendation_exposes_reusable_plans() {
        let catalog = tpch_catalog(0.1);
        let disks = paper_disks();
        let advisor = Advisor::new(&catalog, &disks);
        let rec = advisor
            .recommend_sql(
                "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;",
                &AdvisorConfig::default(),
            )
            .unwrap();
        assert_eq!(rec.plans.len(), 1);
        assert!(rec.search.cost_evaluations > 0);
        assert!(rec.full_striping_cost_ms > 0.0);
    }
}
