//! Exhaustive layout enumeration for small instances.
//!
//! The database layout problem is NP-complete (paper §6.1, reduction from
//! Partition), so exhaustive search only works at toy scale — which is
//! exactly how the paper uses it: as the quality yardstick TS-GREEDY is
//! "comparable to ... in most cases" (§6.2). Placement follows the same
//! convention as the rest of the system: each object goes on a non-empty
//! subset of drives with transfer-rate-proportional fractions.

use dblayout_disksim::{DiskSpec, Layout};
use dblayout_planner::Subplan;

use crate::costmodel::CostModel;

/// Enumerates every assignment of each object to a non-empty disk subset
/// (rate-proportional fill) and returns the valid layout with the lowest
/// workload cost, along with that cost.
///
/// # Panics
/// Panics when the search space `(2^m − 1)^n` exceeds ~4·10⁶ states, or if
/// no valid layout exists (all layouts violate capacity).
pub fn exhaustive_search(
    sizes: &[u64],
    workload: &[(Vec<Subplan>, f64)],
    disks: &[DiskSpec],
    model: &CostModel,
) -> (Layout, f64) {
    let n = sizes.len();
    let m = disks.len();
    assert!(
        (1..20).contains(&m),
        "disk count out of range for exhaustive search"
    );
    let subsets_per_object = (1u64 << m) - 1;
    let states = (subsets_per_object as f64).powi(n as i32);
    assert!(
        states <= 4e6,
        "search space {states:.0} too large for exhaustive enumeration"
    );

    let mut best: Option<(Layout, f64)> = None;
    // Odometer over per-object subset masks (1..=2^m-1 each).
    let mut masks = vec![1u64; n];
    loop {
        let mut layout = Layout::empty(sizes.to_vec(), m);
        for (i, &mask) in masks.iter().enumerate() {
            let set: Vec<usize> = (0..m).filter(|j| (mask >> j) & 1 == 1).collect();
            layout.place_proportional(i, &set, disks);
        }
        if layout.validate(disks).is_ok() {
            let cost = model.workload_cost_subplans(workload, &layout, disks);
            if best.as_ref().is_none_or(|(_, bc)| cost < *bc) {
                best = Some((layout, cost));
            }
        }
        // Increment the odometer.
        let mut i = 0;
        loop {
            if i >= n {
                return best.expect("at least one valid layout (e.g. full striping)");
            }
            masks[i] += 1;
            if masks[i] <= subsets_per_object {
                break;
            }
            masks[i] = 1;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_graph::build_access_graph;
    use crate::costmodel::decompose_workload;
    use crate::tsgreedy::{ts_greedy, TsGreedyConfig};
    use dblayout_catalog::ObjectId;
    use dblayout_disksim::uniform_disks;
    use dblayout_planner::{PhysicalPlan, PlanNode};

    fn scan(obj: u32, blocks: u64) -> PlanNode {
        PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64,
        }
    }

    #[test]
    fn finds_example5_optimum() {
        let disks = uniform_disks(3, 100_000, 10.0, 20.0);
        let sizes = vec![300u64, 150];
        let plans = vec![(
            PhysicalPlan::new(PlanNode::MergeJoin {
                on: "k".into(),
                rows: 1.0,
                left: Box::new(scan(0, 300)),
                right: Box::new(scan(1, 150)),
            }),
            1.0,
        )];
        let workload = decompose_workload(&plans);
        let (layout, cost) = exhaustive_search(&sizes, &workload, &disks, &CostModel::default());
        // The optimum separates the objects; cost = 150 blocks / T on the
        // A side (2 disks × 150) — i.e. Example 5's L3 family.
        let d0 = layout.disks_of(0);
        let d1 = layout.disks_of(1);
        assert!(d0.iter().all(|j| !d1.contains(j)));
        assert!(cost > 0.0);
    }

    #[test]
    fn ts_greedy_matches_exhaustive_on_small_instances() {
        let disks = uniform_disks(3, 100_000, 10.0, 20.0);
        let sizes = vec![240u64, 120, 60];
        let plans = vec![
            (
                PhysicalPlan::new(PlanNode::MergeJoin {
                    on: "k".into(),
                    rows: 1.0,
                    left: Box::new(scan(0, 240)),
                    right: Box::new(scan(1, 120)),
                }),
                1.0,
            ),
            (PhysicalPlan::new(scan(2, 60)), 1.0),
        ];
        let graph = build_access_graph(3, &plans);
        let workload = decompose_workload(&plans);
        let (_, opt_cost) = exhaustive_search(&sizes, &workload, &disks, &CostModel::default());
        let r = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .unwrap();
        // Paper's claim: TS-GREEDY with k=1 is comparable to exhaustive.
        assert!(
            r.final_cost <= opt_cost * 1.1 + 1e-9,
            "greedy {} vs optimal {}",
            r.final_cost,
            opt_cost
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn refuses_huge_spaces() {
        let disks = uniform_disks(8, 100_000, 10.0, 20.0);
        let sizes = vec![10u64; 10];
        exhaustive_search(&sizes, &[], &disks, &CostModel::default());
    }

    #[test]
    fn single_object_single_disk() {
        let disks = uniform_disks(1, 1_000, 10.0, 20.0);
        let sizes = vec![100u64];
        let plans = vec![(PhysicalPlan::new(scan(0, 100)), 1.0)];
        let workload = decompose_workload(&plans);
        let (layout, _) = exhaustive_search(&sizes, &workload, &disks, &CostModel::default());
        assert_eq!(layout.disks_of(0), vec![0]);
    }
}
