//! Criterion microbenchmarks for the advisor's hot paths: cost-model
//! evaluation (invoked thousands of times per search), access-graph
//! construction, graph partitioning, and the end-to-end TS-GREEDY run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dblayout_bench::common::{object_sizes, plan_sql_workload};
use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::access_graph::build_access_graph;
use dblayout_core::costmodel::{decompose_workload, CostModel};
use dblayout_core::tsgreedy::{ts_greedy, TsGreedyConfig};
use dblayout_disksim::{paper_disks, uniform_disks, Layout};
use dblayout_partition::{max_cut_partition, Graph};
use dblayout_workloads::tpch22::tpch22;

fn bench_cost_model(c: &mut Criterion) {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let plans = plan_sql_workload(&catalog, &tpch22());
    let workload = decompose_workload(&plans);
    let layout = Layout::full_striping(object_sizes(&catalog), &disks);
    let model = CostModel::default();
    c.bench_function("cost_model/tpch22_full_striping", |b| {
        b.iter(|| model.workload_cost_subplans(&workload, &layout, &disks))
    });
}

fn bench_access_graph(c: &mut Criterion) {
    let catalog = tpch_catalog(1.0);
    let plans = plan_sql_workload(&catalog, &tpch22());
    c.bench_function("access_graph/tpch22", |b| {
        b.iter(|| build_access_graph(catalog.object_count(), &plans))
    });
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_cut_partition");
    for n in [16usize, 64, 128] {
        // Ring + chords graph with deterministic weights.
        let mut g = Graph::new(n);
        for u in 0..n {
            g.add_node_weight(u, (u + 1) as f64);
            g.add_edge(u, (u + 1) % n, ((u * 7) % 50 + 1) as f64);
            if u + 5 < n {
                g.add_edge(u, u + 5, ((u * 13) % 30 + 1) as f64);
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| max_cut_partition(g, 8))
        });
    }
    group.finish();
}

fn bench_ts_greedy(c: &mut Criterion) {
    let catalog = tpch_catalog(0.1);
    let plans = plan_sql_workload(&catalog, &tpch22());
    let sizes = object_sizes(&catalog);
    let graph = build_access_graph(sizes.len(), &plans);
    let workload = decompose_workload(&plans);
    let disks = uniform_disks(8, 200_000, 10.0, 20.0);
    c.bench_function("ts_greedy/tpch22_sf0.1_8disks", |b| {
        b.iter(|| {
            ts_greedy(
                &sizes,
                &graph,
                &workload,
                &disks,
                &TsGreedyConfig::default(),
            )
            .unwrap()
        })
    });
}

/// The instrumented paths against their disabled-collector twins above:
/// `cost_model/tpch22_full_striping` and `ts_greedy/tpch22_sf0.1_8disks`
/// run with the default (disabled) collector and must stay within noise of
/// the uninstrumented baseline; these `_traced` variants bound what turning
/// tracing on costs (emitting into a bounded ring that drops oldest).
fn bench_obs_overhead(c: &mut Criterion) {
    use dblayout_obs::{Collector, RingSink};
    use std::sync::Arc;

    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let plans = plan_sql_workload(&catalog, &tpch22());
    let workload = decompose_workload(&plans);
    let layout = Layout::full_striping(object_sizes(&catalog), &disks);
    let model = CostModel {
        collector: Collector::deterministic(Arc::new(RingSink::new(4096))),
        ..CostModel::default()
    };
    c.bench_function("cost_model/tpch22_full_striping_traced", |b| {
        b.iter(|| model.workload_cost_subplans(&workload, &layout, &disks))
    });

    let catalog = tpch_catalog(0.1);
    let plans = plan_sql_workload(&catalog, &tpch22());
    let sizes = object_sizes(&catalog);
    let graph = build_access_graph(sizes.len(), &plans);
    let workload = decompose_workload(&plans);
    let disks8 = uniform_disks(8, 200_000, 10.0, 20.0);
    let cfg = TsGreedyConfig {
        collector: Collector::deterministic(Arc::new(RingSink::new(4096))),
        ..TsGreedyConfig::default()
    };
    c.bench_function("ts_greedy/tpch22_sf0.1_8disks_traced", |b| {
        b.iter(|| ts_greedy(&sizes, &graph, &workload, &disks8, &cfg).unwrap())
    });
}

fn bench_planner(c: &mut Criterion) {
    let catalog = tpch_catalog(1.0);
    let queries = tpch22();
    c.bench_function("planner/tpch22_all_queries", |b| {
        b.iter(|| plan_sql_workload(&catalog, &queries))
    });
}

criterion_group!(
    benches,
    bench_cost_model,
    bench_access_graph,
    bench_partitioning,
    bench_ts_greedy,
    bench_obs_overhead,
    bench_planner
);
criterion_main!(benches);
