//! Benchmarks for `dblayout-server`: cached vs cold what-if cost evaluation
//! on the in-process [`Engine`], plus loopback TCP round-trip latency for
//! the same ops. Writes a machine-readable summary to
//! `results/server_bench.json`.
//!
//! The cached/cold pair drives the engine directly so the ratio isolates
//! exactly what the layout-hash→cost LRU elides: the Figure-7 cost-model
//! sweep over every resident sub-plan. Over loopback the same pair is also
//! reported, but there the TCP + JSON round-trip is a shared additive term
//! for both sides. The acceptance bar is in-process cached ≥5× faster than
//! cold on TPCH-22.

use criterion::{BenchResult, Criterion};

use dblayout_server::{Client, Engine, LayoutSpec, Request, RuntimeInfo, Server, ServerConfig};
use dblayout_workloads::tpch22::tpch22;

fn tpch22_workload_text() -> String {
    tpch22()
        .iter()
        .map(|q| format!("{};", q.trim().trim_end_matches(';')))
        .collect::<Vec<_>>()
        .join("\n")
}

fn json_escape(s: &str) -> String {
    serde_json::to_string(&s.to_string()).expect("string serializes")
}

fn whatif(session: u64, no_cache: bool) -> Request {
    Request::WhatifCost {
        session,
        layout: LayoutSpec::FullStriping,
        no_cache,
    }
}

fn main() {
    // `cargo test` runs bench targets with `--test`; skip the timed run.
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--test") {
        eprintln!("(server bench: skipping in test mode)");
        return;
    }

    let mut c = Criterion::default();
    let rt = RuntimeInfo::default();

    // In-process engine: the cache's own speedup, no wire overhead.
    let engine = Engine::new(4, 64);
    engine
        .execute(
            Request::OpenSession {
                catalog: "tpch:0.1".into(),
                disks: "paper".into(),
                threads: 1,
                decay: 1.0,
            },
            &rt,
        )
        .expect("open session");
    engine
        .execute(
            Request::AddStatements {
                session: 1,
                sql: tpch22_workload_text(),
            },
            &rt,
        )
        .expect("add TPCH-22");

    c.bench_function("engine/whatif_cold", |b| {
        b.iter(|| engine.execute(whatif(1, true), &rt).expect("whatif cold"))
    });
    engine
        .execute(whatif(1, false), &rt)
        .expect("prime the cache");
    c.bench_function("engine/whatif_cached", |b| {
        b.iter(|| {
            engine
                .execute(whatif(1, false), &rt)
                .expect("whatif cached")
        })
    });

    // Loopback: same ops through the full TCP + JSON path.
    let server = Server::start(ServerConfig {
        threads: 2,
        ..Default::default()
    })
    .expect("bind loopback server");
    let addr = server.addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    let open = client
        .roundtrip(r#"{"op":"open_session","catalog":"tpch:0.1"}"#)
        .expect("open_session");
    assert!(open.contains("\"ok\":true"), "{open}");
    let add = client
        .roundtrip(&format!(
            r#"{{"op":"add_statements","session":1,"sql":{}}}"#,
            json_escape(&tpch22_workload_text())
        ))
        .expect("add_statements");
    assert!(add.contains("\"ok\":true"), "{add}");

    c.bench_function("server/whatif_cold", |b| {
        b.iter(|| {
            client
                .roundtrip(
                    r#"{"op":"whatif_cost","session":1,"layout":"full_striping","no_cache":true}"#,
                )
                .expect("whatif cold")
        })
    });
    client
        .roundtrip(r#"{"op":"whatif_cost","session":1,"layout":"full_striping"}"#)
        .expect("prime cache");
    c.bench_function("server/whatif_cached", |b| {
        b.iter(|| {
            client
                .roundtrip(r#"{"op":"whatif_cost","session":1,"layout":"full_striping"}"#)
                .expect("whatif cached")
        })
    });
    c.bench_function("server/stats_roundtrip", |b| {
        b.iter(|| client.roundtrip(r#"{"op":"stats"}"#).expect("stats"))
    });

    // Per-stage timings (queue-wait / compute / serialize) as observed by
    // the server across every request this bench sent over loopback.
    let stage_timings: String = {
        use serde_json::ValueExt;
        let line = client.roundtrip(r#"{"op":"stats"}"#).expect("final stats");
        let v: serde_json::Value = serde_json::from_str(&line).expect("stats is JSON");
        let result = v.get("result").expect("stats result");
        let field = |key: &str| -> u64 {
            result
                .get(key)
                .and_then(|x| x.as_u64())
                .unwrap_or_else(|| panic!("stats missing `{key}`"))
        };
        format!(
            "{{\"queue_p50\": {}, \"queue_p99\": {}, \"compute_p50\": {}, \
             \"compute_p99\": {}, \"serialize_p50\": {}, \"serialize_p99\": {}}}",
            field("stage_queue_p50_us"),
            field("stage_queue_p99_us"),
            field("stage_compute_p50_us"),
            field("stage_compute_p99_us"),
            field("stage_serialize_p50_us"),
            field("stage_serialize_p99_us"),
        )
    };

    server.shutdown();

    let find = |id: &str| -> &BenchResult {
        c.results
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("missing bench `{id}`"))
    };
    let cold = find("engine/whatif_cold");
    let cached = find("engine/whatif_cached");
    let stats = find("server/stats_roundtrip");
    let speedup = cold.mean_ns / cached.mean_ns;
    let wire_speedup = find("server/whatif_cold").mean_ns / find("server/whatif_cached").mean_ns;
    let rps = 1e9 / stats.mean_ns;

    let mut rows = String::new();
    for r in &c.results {
        rows.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iterations\": {}}},\n",
            r.id, r.mean_ns, r.min_ns, r.iterations
        ));
    }
    let json = format!(
        "{{\n  \"benchmarks\": [\n{}  ],\n  \"whatif_cold_over_cached\": {:.2},\n  \
         \"loopback_whatif_cold_over_cached\": {:.2},\n  \
         \"stats_requests_per_sec\": {:.0},\n  \
         \"stage_timings_us\": {}\n}}\n",
        rows.trim_end_matches(",\n").to_string() + "\n",
        speedup,
        wire_speedup,
        rps,
        stage_timings
    );
    // Benches run with the package dir as CWD; anchor at the workspace root.
    let results_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results_dir).expect("results dir");
    std::fs::write(results_dir.join("server_bench.json"), json)
        .expect("write results/server_bench.json");

    // Observatory: append this run to the repo-root BENCH_server.json.
    // Criterion's adaptive iteration counts make the work counters
    // non-deterministic here, so benchdiff runs this history with
    // --ignore-counters; the counters are recorded for inspection only.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let entry = dblayout_bench::observatory::HistoryEntry {
        rev: dblayout_bench::observatory::git_rev(&root),
        config: "workload=tpch22;catalog=tpch:0.1;adaptive_iterations".to_string(),
        threads: vec![2],
        timings_ms: c
            .results
            .iter()
            .map(|r| (r.id.clone(), r.mean_ns / 1e6))
            .collect(),
        phases_ms: engine
            .prof
            .rows()
            .into_iter()
            .map(|p| (p.name, p.total_us as f64 / 1e3))
            .collect(),
        counters: dblayout_obs::counters::snapshot()
            .deterministic_pairs()
            .into_iter()
            .map(|(name, v)| (name.to_string(), v))
            .collect(),
    };
    let history = root.join("BENCH_server.json");
    match dblayout_bench::observatory::append_history(&history, &entry) {
        Ok(n) => eprintln!("(history appended to {} — {n} entries)", history.display()),
        Err(e) => eprintln!("warning: {e}"),
    }

    eprintln!(
        "cold/cached what-if speedup: {speedup:.1}x in-process, {wire_speedup:.1}x over \
         loopback; stats throughput: {rps:.0} req/s (results/server_bench.json)"
    );
    assert!(
        speedup >= 5.0,
        "cached what-if must be at least 5x faster than cold, got {speedup:.1}x"
    );
}
