//! Figure 11: TS-GREEDY running time vs. number of disks (paper §7.2,
//! "Scalability of TS-GREEDY").
//!
//! Disks are varied 4 → 64 (doubling); the paper plots the ratio of running
//! time to the 4-disk run and observes a slightly-super-quadratic increase
//! (~6× per doubling), because adding disks both widens the search space
//! (`O(m^{k+1}·n²)`) and slows each cost evaluation.

use std::time::Instant;

use serde::Serialize;

use dblayout_catalog::apb::apb_catalog;
use dblayout_catalog::sales::sales_catalog;
use dblayout_catalog::tpch::tpch_catalog;
use dblayout_catalog::Catalog;
use dblayout_core::access_graph::build_access_graph;
use dblayout_core::costmodel::decompose_workload;
use dblayout_core::tsgreedy::{ts_greedy, TsGreedyConfig};
use dblayout_disksim::{uniform_disks, DiskSpec};
use dblayout_workloads::apb800::apb800;
use dblayout_workloads::sales45::sales45;
use dblayout_workloads::tpch22::tpch22;

use crate::common::{object_sizes, plan_sql_workload};

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Figure11Row {
    /// Workload label.
    pub workload: String,
    /// Number of disks.
    pub disks: usize,
    /// TS-GREEDY wall time, milliseconds.
    pub runtime_ms: f64,
    /// Ratio to this workload's 4-disk runtime.
    pub ratio_to_4_disks: f64,
    /// Cost-model invocations.
    pub cost_evaluations: usize,
}

/// Disk counts swept (the paper's 4..64 doubling).
pub const DISK_COUNTS: [usize; 5] = [4, 8, 16, 32, 64];

/// Builds a disk set of `m` uniform drives big enough for any catalog here.
fn disk_set(m: usize) -> Vec<DiskSpec> {
    uniform_disks(m, 400_000, 10.0, 20.0)
}

fn measure(
    catalog: &Catalog,
    queries: &[String],
    label: &str,
    counts: &[usize],
) -> Vec<Figure11Row> {
    let plans = plan_sql_workload(catalog, queries);
    let sizes = object_sizes(catalog);
    let graph = build_access_graph(sizes.len(), &plans);
    let workload = decompose_workload(&plans);

    let mut rows = Vec::new();
    let mut base_ms = None;
    for &m in counts {
        let disks = disk_set(m);
        let start = Instant::now();
        let result = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .expect("unconstrained search succeeds");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let base = *base_ms.get_or_insert(ms);
        rows.push(Figure11Row {
            workload: label.to_string(),
            disks: m,
            runtime_ms: ms,
            ratio_to_4_disks: ms / base,
            cost_evaluations: result.cost_evaluations,
        });
    }
    rows
}

/// Runs the sweep over the three databases/workloads of the paper.
/// `counts` lets callers trim the sweep (tests use a prefix).
pub fn run_with_counts(counts: &[usize]) -> Vec<Figure11Row> {
    let mut rows = Vec::new();
    let tpch = tpch_catalog(1.0);
    rows.extend(measure(&tpch, &tpch22(), "TPCH-22", counts));
    let apb = apb_catalog();
    rows.extend(measure(&apb, &apb800(1), "APB-800", counts));
    let sales = sales_catalog();
    rows.extend(measure(&sales, &sales45(1), "SALES-45", counts));
    rows
}

/// Full paper sweep (4..64 disks).
pub fn run() -> Vec<Figure11Row> {
    run_with_counts(&DISK_COUNTS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_grows_with_disks() {
        let tpch = tpch_catalog(0.1);
        let rows = measure(&tpch, &tpch22(), "TPCH-22", &[4, 8]);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].ratio_to_4_disks == 1.0);
        // More disks → more candidate moves → more cost evaluations.
        assert!(rows[1].cost_evaluations > rows[0].cost_evaluations);
    }
}
