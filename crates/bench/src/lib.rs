#![warn(missing_docs)]

//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§7), plus the ablations called out in `DESIGN.md`.
//!
//! Each experiment lives in a module with a pure `run(...)` function
//! returning serializable rows; the `src/bin/*` binaries print the same
//! tables/series the paper reports and drop JSON next to the terminal
//! output. See `EXPERIMENTS.md` at the workspace root for paper-vs-measured
//! numbers.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table 2 (estimated vs. actual improvement) | [`table2`] | `table2` |
//! | Cost-model ordering validation (82% claim) | [`costmodel_validation`] | `costmodel_validation` |
//! | Figure 10 (TS-GREEDY vs. FULL STRIPING)    | [`figure10`] | `figure10` |
//! | Figure 11 (running time vs. #disks)        | [`figure11`] | `figure11` |
//! | Figure 12 (running time vs. #objects)      | [`figure12`] | `figure12` |
//! | Ablations A1-A5                            | [`ablations`] | `ablation_*` |
//! | WK-SCALE(N) workload-size scaling          | [`wkscale_bench`] | `wkscale` |
//! | Concurrency extension (§2.2/§9)            | [`extension_concurrency`] | `extension_concurrency` |
//! | Sequential vs parallel search (dblayout-par) | [`search_bench`] | `search_bench` |
//! | Mega-scale differential bench (WK-MEGA)    | [`megascale`] | `megascale_bench` |
//!
//! [`observatory`] is not a paper artifact: it appends every
//! `search_bench`/server-bench run to the repo-root `BENCH_*.json`
//! histories and backs `dblayout benchdiff`'s regression gate.

pub mod ablations;
pub mod common;
pub mod costmodel_validation;
pub mod extension_concurrency;
pub mod figure10;
pub mod figure11;
pub mod figure12;
pub mod megascale;
pub mod observatory;
pub mod search_bench;
pub mod table2;
pub mod wkscale_bench;

pub use common::{improvement_pct, plan_sql_workload, simulate_workload_ms, write_json};
