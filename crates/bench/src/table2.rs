//! Table 2: estimated vs. actual improvement of the manual 5+3 split layout
//! over FULL STRIPING, for TPC-H queries 3, 9, 10, 12, 18, 21 and the whole
//! TPCH-22 workload (paper §7.2, first validation experiment; subsumes
//! Example 1's Q3/Q10 numbers).
//!
//! The manual layout is the paper's: "lineitem is on 5 disks and orders is
//! allocated on 3 disks and are completely separated; all other tables are
//! striped across all 8 disks."

use serde::Serialize;

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_catalog::Catalog;
use dblayout_core::costmodel::CostModel;
use dblayout_disksim::{paper_disks, DiskSpec, Layout, SimConfig};
use dblayout_planner::PhysicalPlan;
use dblayout_workloads::tpch22::{tpch22, tpch_query};

use crate::common::{improvement_pct, object_sizes, plan_sql_workload, simulate_workload_ms};

/// One row of Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// "Query 3" … or "TPCH-22".
    pub label: String,
    /// Actual (simulated-execution) improvement, percent.
    pub actual_improvement_pct: f64,
    /// Estimated (cost-model) improvement, percent.
    pub estimated_improvement_pct: f64,
}

/// The paper's manual layout: lineitem on the 5 fastest disks, orders on
/// the remaining 3, everything else fully striped.
pub fn manual_split_layout(catalog: &Catalog, disks: &[DiskSpec]) -> Layout {
    let sizes = object_sizes(catalog);
    let mut layout = Layout::full_striping(sizes, disks);
    let mut by_rate: Vec<usize> = (0..disks.len()).collect();
    by_rate.sort_by(|&a, &b| {
        disks[b]
            .read_mb_s
            .total_cmp(&disks[a].read_mb_s)
            .then(a.cmp(&b))
    });
    let lineitem_disks = &by_rate[..5];
    let orders_disks = &by_rate[5..8];
    let li = catalog.object_id("lineitem").expect("lineitem").index();
    let or = catalog.object_id("orders").expect("orders").index();
    layout.place_proportional(li, lineitem_disks, disks);
    layout.place_proportional(or, orders_disks, disks);
    layout
}

/// Runs the experiment and returns the table rows (the highlighted single
/// queries first, the whole-workload row last).
pub fn run() -> Vec<Table2Row> {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let split = manual_split_layout(&catalog, &disks);
    let striped = Layout::full_striping(object_sizes(&catalog), &disks);
    let model = CostModel::default();
    let sim_cfg = SimConfig::default();

    let mut rows = Vec::new();
    for qn in [3usize, 9, 10, 12, 18, 21] {
        let plans = plan_sql_workload(&catalog, &[tpch_query(qn)]);
        rows.push(compare(
            &format!("Query {qn}"),
            &plans,
            &split,
            &striped,
            &disks,
            &model,
            &sim_cfg,
        ));
    }
    let all = plan_sql_workload(&catalog, &tpch22());
    rows.push(compare(
        "TPCH-22", &all, &split, &striped, &disks, &model, &sim_cfg,
    ));
    rows
}

fn compare(
    label: &str,
    plans: &[(PhysicalPlan, f64)],
    split: &Layout,
    striped: &Layout,
    disks: &[DiskSpec],
    model: &CostModel,
    sim_cfg: &SimConfig,
) -> Table2Row {
    let est_fs = model.workload_cost(plans, striped, disks);
    let est_sp = model.workload_cost(plans, split, disks);
    let act_fs = simulate_workload_ms(plans, striped, disks, sim_cfg);
    let act_sp = simulate_workload_ms(plans, split, disks, sim_cfg);
    Table2Row {
        label: label.to_string(),
        actual_improvement_pct: improvement_pct(act_fs, act_sp),
        estimated_improvement_pct: improvement_pct(est_fs, est_sp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_layout_is_valid_and_separated() {
        let catalog = tpch_catalog(1.0);
        let disks = paper_disks();
        let layout = manual_split_layout(&catalog, &disks);
        layout.validate(&disks).unwrap();
        let li = catalog.object_id("lineitem").unwrap().index();
        let or = catalog.object_id("orders").unwrap().index();
        let dl = layout.disks_of(li);
        let dor = layout.disks_of(or);
        assert_eq!(dl.len(), 5);
        assert_eq!(dor.len(), 3);
        assert!(dl.iter().all(|j| !dor.contains(j)));
    }

    /// Q3 is the paper's flagship example (44% actual / 54% estimated): the
    /// split layout must show a clearly positive improvement on both axes.
    #[test]
    fn q3_improves_on_both_axes() {
        let catalog = tpch_catalog(1.0);
        let disks = paper_disks();
        let split = manual_split_layout(&catalog, &disks);
        let striped = Layout::full_striping(object_sizes(&catalog), &disks);
        let plans = plan_sql_workload(&catalog, &[tpch_query(3)]);
        let row = compare(
            "Q3",
            &plans,
            &split,
            &striped,
            &disks,
            &CostModel::default(),
            &SimConfig::default(),
        );
        assert!(
            row.estimated_improvement_pct > 15.0,
            "estimated {}",
            row.estimated_improvement_pct
        );
        assert!(
            row.actual_improvement_pct > 10.0,
            "actual {}",
            row.actual_improvement_pct
        );
    }
}
