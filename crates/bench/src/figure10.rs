//! Figure 10: estimated improvement of TS-GREEDY over FULL STRIPING per
//! workload (paper §7.2, "Effectiveness of TS-GREEDY").
//!
//! Paper's reported shape: WK-CTRL1 and WK-CTRL2 > 25%, TPCH-22 ≈ 20%
//! estimated (≈ 25% actual when materialized), SALES-45 ≈ 38%,
//! APB-800 ≈ 0% (TS-GREEDY recommends full striping — its two big tables
//! are never co-accessed).

use serde::Serialize;

use dblayout_catalog::apb::apb_catalog;
use dblayout_catalog::sales::sales_catalog;
use dblayout_catalog::tpch::tpch_catalog;
use dblayout_catalog::Catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_disksim::{paper_disks, uniform_disks, DiskSpec, SimConfig};
use dblayout_workloads::sales45::sales45;
use dblayout_workloads::tpch22::tpch22;
use dblayout_workloads::wkctrl::{wk_ctrl1, wk_ctrl2};
use dblayout_workloads::{apb800::apb800, parse_all};

use crate::common::{improvement_pct, simulate_workload_ms};

/// One bar of Figure 10.
#[derive(Debug, Clone, Serialize)]
pub struct Figure10Row {
    /// Workload label.
    pub workload: String,
    /// Estimated improvement over FULL STRIPING, percent.
    pub estimated_improvement_pct: f64,
    /// Simulated-execution improvement, percent (only computed for
    /// TPCH-22, matching the paper's materialization of that layout).
    pub actual_improvement_pct: Option<f64>,
    /// TS-GREEDY iterations adopted.
    pub iterations: usize,
}

fn advise(
    catalog: &Catalog,
    disks: &[DiskSpec],
    queries: &[String],
    simulate_actual: bool,
) -> Figure10Row {
    let advisor = Advisor::new(catalog, disks);
    let stmts = parse_all(queries).expect("workload parses");
    let rec = advisor
        .recommend(&stmts, &AdvisorConfig::default())
        .expect("advisor succeeds");
    let actual = simulate_actual.then(|| {
        let cfg = SimConfig::default();
        let fs = simulate_workload_ms(&rec.plans, &rec.full_striping, disks, &cfg);
        let ts = simulate_workload_ms(&rec.plans, &rec.layout, disks, &cfg);
        improvement_pct(fs, ts)
    });
    Figure10Row {
        workload: String::new(),
        estimated_improvement_pct: rec.estimated_improvement_pct,
        actual_improvement_pct: actual,
        iterations: rec.search.iterations,
    }
}

/// Runs the Figure 10 sweep. `sales_disks` additionally checks the paper's
/// observation that SALES results hold as disks grow (they ran up to 64).
pub fn run() -> Vec<Figure10Row> {
    let disks = paper_disks();
    let mut rows = Vec::new();

    let tpch = tpch_catalog(1.0);
    for (name, queries, actual) in [
        ("WK-CTRL1", wk_ctrl1(), false),
        ("WK-CTRL2", wk_ctrl2(), false),
        ("TPCH-22", tpch22(), true),
    ] {
        let mut row = advise(&tpch, &disks, &queries, actual);
        row.workload = name.to_string();
        rows.push(row);
    }

    let sales = sales_catalog();
    // SALES is 5 GB; give it the paper's aggregate capacity with 8 drives
    // of ~1 GB... the paper's 48 GB array holds it directly.
    let sales_disks = uniform_disks(8, 200_000, 10.0, 20.0);
    let mut row = advise(&sales, &sales_disks, &sales45(1), false);
    row.workload = "SALES-45".to_string();
    rows.push(row);

    let apb = apb_catalog();
    let mut row = advise(&apb, &disks, &apb800(1), false);
    row.workload = "APB-800".to_string();
    rows.push(row);

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down shape check: controlled workloads improve a lot, APB
    /// stays at (near) zero — the qualitative Figure 10.
    #[test]
    fn shape_holds_at_small_scale() {
        let disks = paper_disks();
        let tpch = tpch_catalog(0.1);
        let ctrl = advise(&tpch, &disks, &wk_ctrl1(), false);
        assert!(
            ctrl.estimated_improvement_pct > 15.0,
            "WK-CTRL1 {}",
            ctrl.estimated_improvement_pct
        );

        let apb = apb_catalog();
        let apb_row = advise(&apb, &disks, &apb800(1)[..40], false);
        assert!(
            apb_row.estimated_improvement_pct < 5.0,
            "APB {}",
            apb_row.estimated_improvement_pct
        );
    }

    #[test]
    fn sales_subset_improves() {
        let sales = sales_catalog();
        let disks = uniform_disks(8, 200_000, 10.0, 20.0);
        let row = advise(&sales, &disks, &sales45(1)[..10], false);
        assert!(
            row.estimated_improvement_pct > 10.0,
            "SALES {}",
            row.estimated_improvement_pct
        );
    }
}
