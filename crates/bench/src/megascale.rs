//! Mega-scale differential bench: the WK-MEGA family (thousands of
//! objects × 64–256 disks) through TS-GREEDY with the multilevel
//! partitioner and pruned widening.
//!
//! Three claims, each machine-checked:
//!
//! 1. **Determinism at scale** — the search produces *byte-identical*
//!    layouts, costs, and deterministic counters at every thread count
//!    (the `megascale_bench` binary exits non-zero on any divergence);
//! 2. **Multilevel pays** — coarsen → KL → refine partitioning beats the
//!    direct O(n²) KL pass on wall clock (reported as
//!    `partition_speedup`; at the largest family member the binary
//!    requires ≥ 2×) *without degrading the partition*: at mega scale
//!    the cut saturates (every co-accessed pair is separated) and both
//!    engines reach it, while the multilevel pass is strictly better
//!    balanced. The binary gates on those step-1 objectives (cut parity
//!    and balance). The end-to-end `cost_ratio` is *reported*, not gated:
//!    step-2 greedy widening is path-dependent in its starting layout,
//!    so equal-quality partitions can converge to local optima ~15%
//!    apart (measured both directions; see EXPERIMENTS.md);
//! 3. **Parallelism pays** — per-thread wall times land in the
//!    `BENCH_search.json` observatory history under this instance's
//!    config fingerprint, where `dblayout benchdiff
//!    --require-not-slower` gates 4-thread ≥ 1-thread continuously on
//!    multi-core hosts (a single-core host cannot *measure* thread
//!    speedup, so the wall-clock gate lives in benchdiff, not here —
//!    see EXPERIMENTS.md).

use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

use dblayout_core::tsgreedy::{ts_greedy, Partitioner, TsGreedyConfig};
use dblayout_core::{build_access_graph_subplans, Layout};
use dblayout_obs::counters;
use dblayout_partition::{max_cut_partition, multilevel_max_cut, Graph, MultilevelConfig};
use dblayout_workloads::wkmega::{generate, MegaConfig};

/// One measured search configuration on the mega instance.
#[derive(Debug, Clone, Serialize)]
pub struct MegaSearchRow {
    /// Step-1 engine: `direct` or `multilevel`.
    pub partitioner: &'static str,
    /// Worker threads used for candidate scoring.
    pub threads: usize,
    /// Best (minimum) wall time over the measured repetitions, ms.
    pub best_ms: f64,
    /// Layout fractions and final cost are bit-identical to the
    /// 1-thread run of the *same* partitioner.
    pub identical_to_one_thread: bool,
    /// Greedy iterations adopted (thread-invariant).
    pub iterations: usize,
    /// Cost-model evaluations performed (thread-invariant).
    pub cost_evaluations: usize,
    /// Final advised-layout cost for this configuration.
    pub final_cost: f64,
}

/// Step-1 head-to-head: direct KL vs multilevel on the same graph.
#[derive(Debug, Clone, Serialize)]
pub struct PartitionDuel {
    /// Direct `max_cut_partition` wall time, ms (best of reps).
    pub direct_ms: f64,
    /// `multilevel_max_cut` wall time, ms (best of reps).
    pub multilevel_ms: f64,
    /// `direct_ms / multilevel_ms` — ≥ 2 expected at mega scale.
    pub speedup: f64,
    /// Cut weight achieved by the direct pass.
    pub direct_cut: f64,
    /// Cut weight achieved by the multilevel pass.
    pub multilevel_cut: f64,
    /// Direct pass: heaviest part's node weight over the mean part's —
    /// 1.0 is perfect balance.
    pub direct_balance: f64,
    /// Multilevel pass: same imbalance measure (the cut-neutral balance
    /// pass should make this the smaller of the two at mega scale).
    pub multilevel_balance: f64,
}

/// The whole mega-scale run, as written to `results/megascale_bench.json`.
#[derive(Debug, Clone, Serialize)]
pub struct MegaBenchReport {
    /// Instance name (`wkmega-{objects}x{disks}-s{seed}`).
    pub instance: String,
    /// Objects in the instance.
    pub objects: usize,
    /// Disks in the farm.
    pub disks: usize,
    /// Statements in the workload.
    pub statements: usize,
    /// Git revision of the measured tree.
    pub git_rev: String,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_available_parallelism: usize,
    /// Repetitions per configuration (`best_ms` is the minimum).
    pub reps: usize,
    /// Every row matched its partitioner's 1-thread run bit for bit.
    pub all_identical: bool,
    /// Multilevel search final cost divided by direct search final cost
    /// under the same iteration budget. Reported, not gated: with the cut
    /// saturated and balance favouring multilevel, the residual spread is
    /// greedy path dependence, not partition quality (DESIGN.md §11).
    pub cost_ratio: f64,
    /// Step-1 wall-clock duel on this instance's access graph.
    pub partition: PartitionDuel,
    /// Per-configuration search measurements.
    pub rows: Vec<MegaSearchRow>,
    /// Deterministic work-counter deltas over the whole run.
    pub counters: Vec<(String, u64)>,
}

/// Every placement fraction's bit pattern — the byte-level identity the
/// differential harness compares.
fn layout_bits(l: &Layout) -> Vec<u64> {
    let mut bits = Vec::new();
    for i in 0..l.object_count() {
        for j in 0..l.disk_count() {
            bits.push(l.fraction(i, j).to_bits());
        }
    }
    bits
}

/// Heaviest part's node weight divided by the mean part's — 1.0 is
/// perfect balance, large values mean one part hoards the hot objects.
fn imbalance(g: &Graph, assignment: &[usize], parts: usize) -> f64 {
    let mut weight = vec![0.0f64; parts.max(1)];
    for (u, &p) in assignment.iter().enumerate() {
        if let Some(w) = weight.get_mut(p) {
            *w += g.node_weight(u);
        }
    }
    let total: f64 = weight.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let mean = total / weight.len() as f64;
    weight.iter().copied().fold(0.0f64, f64::max) / mean
}

/// Runs the mega bench on one family member: the step-1 duel, then the
/// search at each thread count under both partitioners, `reps`
/// repetitions each. Deterministic apart from wall times.
pub fn run_with(cfg: &MegaConfig, thread_counts: &[usize], reps: usize) -> MegaBenchReport {
    let reps = reps.max(1);
    let before = counters::snapshot();
    let instance = generate(cfg);
    let graph = build_access_graph_subplans(instance.sizes.len(), &instance.workload);
    let parts = instance.disks.len();

    // Step-1 duel: identical graph, identical target part count.
    let mut direct_ms = f64::INFINITY;
    let mut multilevel_ms = f64::INFINITY;
    let mut direct_assignment = Vec::new();
    let mut multilevel_assignment = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        direct_assignment = max_cut_partition(&graph, parts);
        direct_ms = direct_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t1 = Instant::now();
        multilevel_assignment = multilevel_max_cut(&graph, parts);
        multilevel_ms = multilevel_ms.min(t1.elapsed().as_secs_f64() * 1e3);
    }
    let partition = PartitionDuel {
        direct_ms,
        multilevel_ms,
        speedup: direct_ms / multilevel_ms,
        direct_cut: graph.cut_weight(&direct_assignment),
        multilevel_cut: graph.cut_weight(&multilevel_assignment),
        direct_balance: imbalance(&graph, &direct_assignment, parts),
        multilevel_balance: imbalance(&graph, &multilevel_assignment, parts),
    };

    // Search matrix: both partitioners at every thread count. Pruned
    // widening keeps per-iteration work bounded, and the iteration budget
    // (2 adopted moves per disk) makes the matrix tractable at mega scale
    // — a fully converged widening adopts O(objects × disks) moves, which
    // is minutes per configuration at thousands of objects. The budget is
    // *identical* for both partitioners, so `cost_ratio` compares what
    // each step-1 engine lets the same greedy budget achieve. Every
    // configuration of one partitioner must match its own 1-thread run
    // bit for bit.
    let budget = 2 * parts;
    let search_cfg = |partitioner: Partitioner, threads: usize| TsGreedyConfig {
        threads,
        partitioner,
        prune_width: 32,
        max_iterations: budget,
        ..Default::default()
    };
    let measure = |cfg: &TsGreedyConfig| {
        let mut best_ms = f64::INFINITY;
        let mut result = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = ts_greedy(
                &instance.sizes,
                &graph,
                &instance.workload,
                &instance.disks,
                cfg,
            )
            .expect("mega search succeeds");
            best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            result = Some(r);
        }
        (best_ms, result.expect("at least one repetition ran"))
    };

    let mut rows = Vec::new();
    let mut final_costs = [0.0f64; 2];
    for (pi, (name, partitioner)) in [
        (
            "multilevel",
            Partitioner::Multilevel(MultilevelConfig::default()),
        ),
        ("direct", Partitioner::Direct),
    ]
    .into_iter()
    .enumerate()
    {
        let mut baseline: Option<(Vec<u64>, u64)> = None;
        for &threads in thread_counts {
            let threads = threads.max(1);
            let (best_ms, r) = measure(&search_cfg(partitioner.clone(), threads));
            let bits = layout_bits(&r.layout);
            let cost_bits = r.final_cost.to_bits();
            let identical = match &baseline {
                None => {
                    baseline = Some((bits, cost_bits));
                    true
                }
                Some((b, c)) => *b == bits && *c == cost_bits,
            };
            final_costs[pi] = r.final_cost;
            rows.push(MegaSearchRow {
                partitioner: name,
                threads,
                best_ms,
                identical_to_one_thread: identical,
                iterations: r.iterations,
                cost_evaluations: r.cost_evaluations,
                final_cost: r.final_cost,
            });
        }
    }
    let all_identical = rows.iter().all(|r| r.identical_to_one_thread);
    let cost_ratio = final_costs[0] / final_costs[1];

    let delta = counters::snapshot().delta(&before);
    MegaBenchReport {
        instance: instance.name.clone(),
        objects: instance.sizes.len(),
        disks: parts,
        statements: instance.workload.len(),
        git_rev: crate::observatory::git_rev(
            &PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        ),
        host_available_parallelism: dblayout_core::available_parallelism(),
        reps,
        all_identical,
        cost_ratio,
        partition,
        rows,
        counters: delta
            .deterministic_pairs()
            .into_iter()
            .map(|(name, value)| (name.to_string(), value))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mega_bench_is_identical_across_threads_and_partitioners_agree() {
        let cfg = MegaConfig::scaled(220, 8, 11);
        let report = run_with(&cfg, &[1, 2], 1);
        assert!(report.all_identical, "{report:?}");
        assert_eq!(report.rows.len(), 4);
        // Same partitioner → thread-invariant deterministic work.
        for pair in report.rows.chunks(2) {
            assert_eq!(pair[0].iterations, pair[1].iterations);
            assert_eq!(pair[0].cost_evaluations, pair[1].cost_evaluations);
        }
        // Step-1 objectives: both engines find a real cut, and the
        // balance metric is populated (≥ 1 by construction). The
        // budgeted cost_ratio is reported, not asserted — greedy
        // widening is path-dependent in its starting layout, so the
        // end-to-end ratio is a property of the search path, not of
        // partition quality (DESIGN.md §11, EXPERIMENTS.md).
        assert!(report.partition.direct_cut > 0.0);
        assert!(report.partition.multilevel_cut > 0.0);
        assert!(report.partition.direct_balance >= 1.0);
        assert!(report.partition.multilevel_balance >= 1.0);
        assert!(report.cost_ratio.is_finite() && report.cost_ratio > 0.0);
    }
}
