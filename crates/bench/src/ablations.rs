//! Ablations for the design choices DESIGN.md calls out.
//!
//! * **A1** — TS-GREEDY's `k` (drives added per greedy move): the paper
//!   claims `k = 1` already matches exhaustive enumeration in most cases.
//! * **A2** — TS-GREEDY vs. exhaustive enumeration on small instances:
//!   the optimality gap.
//! * **A3** — step contributions: step-1-only (pure clustering, cf. the
//!   Livny et al. [12] comparison in §8) vs. full TS-GREEDY vs. FULL
//!   STRIPING.
//! * **A4** — value of co-access information: the real access graph vs. an
//!   edgeless graph vs. a label-scrambled graph driving step 1.
//! * **A5** — the 0→1 co-location cost cliff behind TS-GREEDY's potential
//!   local minima (§6.2 discussion).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use serde::Serialize;

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_catalog::ObjectId;
use dblayout_core::access_graph::build_access_graph;
use dblayout_core::costmodel::{decompose_workload, CostModel};
use dblayout_core::exhaustive::exhaustive_search;
use dblayout_core::tsgreedy::{ts_greedy, TsGreedyConfig};
use dblayout_disksim::{paper_disks, uniform_disks, Layout};
use dblayout_partition::Graph;
use dblayout_planner::{PhysicalPlan, PlanNode};
use dblayout_workloads::tpch22::tpch22;

use crate::common::{object_sizes, plan_sql_workload};

fn scan(obj: u32, blocks: u64) -> PlanNode {
    PlanNode::TableScan {
        object: ObjectId(obj),
        name: format!("t{obj}"),
        blocks,
        rows: blocks as f64,
    }
}

fn merge_join(a: u32, ab: u64, b: u32, bb: u64) -> PhysicalPlan {
    PhysicalPlan::new(PlanNode::MergeJoin {
        on: "k".into(),
        rows: 1.0,
        left: Box::new(scan(a, ab)),
        right: Box::new(scan(b, bb)),
    })
}

// ---------------------------------------------------------------------
// A1: k sweep
// ---------------------------------------------------------------------

/// One row of the A1 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct A1Row {
    /// Greedy step width `k`.
    pub k: usize,
    /// Final estimated workload cost (ms).
    pub final_cost_ms: f64,
    /// Wall time of the search (ms).
    pub runtime_ms: f64,
    /// Cost evaluations performed.
    pub cost_evaluations: usize,
}

/// A1: TPCH-22 on the paper disks with k = 1, 2, 3.
pub fn run_a1() -> Vec<A1Row> {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let plans = plan_sql_workload(&catalog, &tpch22());
    let sizes = object_sizes(&catalog);
    let graph = build_access_graph(sizes.len(), &plans);
    let workload = decompose_workload(&plans);

    (1..=3)
        .map(|k| {
            let start = Instant::now();
            let r = ts_greedy(
                &sizes,
                &graph,
                &workload,
                &disks,
                &TsGreedyConfig {
                    k,
                    ..Default::default()
                },
            )
            .expect("search succeeds");
            A1Row {
                k,
                final_cost_ms: r.final_cost,
                runtime_ms: start.elapsed().as_secs_f64() * 1e3,
                cost_evaluations: r.cost_evaluations,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// A2: vs exhaustive
// ---------------------------------------------------------------------

/// One randomized small instance.
#[derive(Debug, Clone, Serialize)]
pub struct A2Row {
    /// Trial seed.
    pub seed: u64,
    /// TS-GREEDY final cost.
    pub greedy_cost_ms: f64,
    /// Exhaustive optimum cost.
    pub optimal_cost_ms: f64,
    /// `greedy / optimal` (1.0 = optimal).
    pub gap_ratio: f64,
}

/// A2: random 4-object / 3-disk instances with co-access structure.
pub fn run_a2(trials: usize) -> Vec<A2Row> {
    let disks = uniform_disks(3, 100_000, 10.0, 20.0);
    (0..trials as u64)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let sizes: Vec<u64> = (0..4).map(|_| rng.gen_range(50..400)).collect();
            // Two co-accessed pairs plus one solo scan, randomized sizes.
            let plans = vec![
                (
                    merge_join(0, sizes[0], 1, sizes[1]),
                    rng.gen_range(1.0..3.0),
                ),
                (
                    merge_join(2, sizes[2], 3, sizes[3]),
                    rng.gen_range(1.0..3.0),
                ),
                (PhysicalPlan::new(scan(0, sizes[0])), 1.0),
            ];
            let graph = build_access_graph(4, &plans);
            let workload = decompose_workload(&plans);
            let greedy = ts_greedy(
                &sizes,
                &graph,
                &workload,
                &disks,
                &TsGreedyConfig::default(),
            )
            .expect("search succeeds");
            let (_, optimal) = exhaustive_search(&sizes, &workload, &disks, &CostModel::default());
            A2Row {
                seed,
                greedy_cost_ms: greedy.final_cost,
                optimal_cost_ms: optimal,
                gap_ratio: greedy.final_cost / optimal,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// A3: step contributions
// ---------------------------------------------------------------------

/// Costs of the strategy variants on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct A3Row {
    /// Strategy label.
    pub strategy: String,
    /// Estimated workload cost (ms).
    pub cost_ms: f64,
}

/// A3: FULL STRIPING vs. step-1-only vs. full TS-GREEDY on TPCH-22.
pub fn run_a3() -> Vec<A3Row> {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let plans = plan_sql_workload(&catalog, &tpch22());
    let sizes = object_sizes(&catalog);
    let graph = build_access_graph(sizes.len(), &plans);
    let workload = decompose_workload(&plans);
    let model = CostModel::default();

    let fs = Layout::full_striping(sizes.clone(), &disks);
    let fs_cost = model.workload_cost_subplans(&workload, &fs, &disks);
    let r = ts_greedy(
        &sizes,
        &graph,
        &workload,
        &disks,
        &TsGreedyConfig::default(),
    )
    .expect("search succeeds");

    vec![
        A3Row {
            strategy: "FULL-STRIPING".into(),
            cost_ms: fs_cost,
        },
        A3Row {
            strategy: "STEP1-ONLY (clustering)".into(),
            cost_ms: r.initial_cost,
        },
        A3Row {
            strategy: "TS-GREEDY (both steps)".into(),
            cost_ms: r.final_cost,
        },
    ]
}

// ---------------------------------------------------------------------
// A4: value of co-access information
// ---------------------------------------------------------------------

/// Costs of graph variants on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct A4Row {
    /// Graph variant label.
    pub graph_variant: String,
    /// Final TS-GREEDY cost using that graph for step 1 (ms).
    pub cost_ms: f64,
}

/// Returns a copy of `g` with node labels randomly permuted on its edges —
/// same weight mass, wrong co-access structure.
fn scrambled_graph(g: &Graph, seed: u64) -> Graph {
    let n = g.len();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut out = Graph::new(n);
    for i in 0..n {
        out.add_node_weight(i, g.node_weight(i));
    }
    for (u, v, w) in g.edges() {
        out.add_edge(perm[u], perm[v], w);
    }
    out
}

/// A4: TS-GREEDY on TPCH-22 with the real access graph vs. an edgeless
/// graph vs. a label-scrambled graph.
pub fn run_a4() -> Vec<A4Row> {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let plans = plan_sql_workload(&catalog, &tpch22());
    let sizes = object_sizes(&catalog);
    let real = build_access_graph(sizes.len(), &plans);
    let workload = decompose_workload(&plans);

    let mut edgeless = Graph::new(sizes.len());
    for i in 0..sizes.len() {
        edgeless.add_node_weight(i, real.node_weight(i));
    }
    let scrambled = scrambled_graph(&real, 13);

    [
        ("real access graph", &real),
        ("edgeless (no co-access info)", &edgeless),
        ("scrambled edges", &scrambled),
    ]
    .into_iter()
    .map(|(label, graph)| {
        let r = ts_greedy(&sizes, graph, &workload, &disks, &TsGreedyConfig::default())
            .expect("search succeeds");
        A4Row {
            graph_variant: label.to_string(),
            cost_ms: r.final_cost,
        }
    })
    .collect()
}

// ---------------------------------------------------------------------
// A5: the 0→1 overlap cliff
// ---------------------------------------------------------------------

/// Cost at one overlap degree.
#[derive(Debug, Clone, Serialize)]
pub struct A5Row {
    /// Disks shared between the two co-accessed objects.
    pub overlap_disks: usize,
    /// Estimated query cost (ms).
    pub cost_ms: f64,
}

/// A5: a large A (2800 blocks) and a small B (200) co-accessed by a merge
/// join on 8 uniform drives. Sweep `d = 0..4`: A occupies disks
/// `[0, 4+d)`, B occupies `[4-d, 8)`, so they share `2d` drives and each
/// widens as the overlap grows — `d = 0` is full separation, `d = 4` full
/// striping. The paper's §6.2 prediction: cost jumps sharply from `d = 0`
/// to the first overlap (the cliff TS-GREEDY's greedy moves cannot cross),
/// declines as overlap grows, and with skewed sizes can end up *below* the
/// no-overlap cost — the local-minimum trap.
pub fn run_a5() -> Vec<A5Row> {
    let disks = uniform_disks(8, 100_000, 10.0, 20.0);
    let sizes = vec![2800u64, 200];
    let plans = vec![(merge_join(0, 2800, 1, 200), 1.0)];
    let workload = decompose_workload(&plans);
    let model = CostModel::default();

    (0..=4usize)
        .map(|d| {
            let mut layout = Layout::empty(sizes.clone(), 8);
            let a: Vec<usize> = (0..(4 + d)).collect();
            let b: Vec<usize> = ((4 - d)..8).collect();
            layout.place_proportional(0, &a, &disks);
            layout.place_proportional(1, &b, &disks);
            A5Row {
                overlap_disks: 2 * d,
                cost_ms: model.workload_cost_subplans(&workload, &layout, &disks),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a2_greedy_close_to_optimal() {
        for row in run_a2(10) {
            assert!(
                row.gap_ratio < 1.15,
                "seed {} gap {}",
                row.seed,
                row.gap_ratio
            );
            assert!(row.gap_ratio >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn a5_exhibits_the_cliff() {
        let rows = run_a5();
        assert_eq!(rows.len(), 5);
        // The first overlap jumps well above full separation (the cliff)...
        assert!(rows[1].cost_ms > rows[0].cost_ms * 1.2, "{rows:?}");
        // ...then declines as overlap widens...
        assert!(rows[4].cost_ms < rows[1].cost_ms, "{rows:?}");
        // ...and with skewed sizes full striping beats full separation —
        // the valley greedy search cannot reach across the cliff.
        assert!(rows[4].cost_ms < rows[0].cost_ms, "{rows:?}");
    }

    #[test]
    fn scrambled_graph_preserves_weight_mass() {
        let catalog = tpch_catalog(0.05);
        let plans = plan_sql_workload(&catalog, &tpch22()[..5]);
        let g = build_access_graph(catalog.object_count(), &plans);
        let s = scrambled_graph(&g, 5);
        assert!((g.total_edge_weight() - s.total_edge_weight()).abs() < 1e-6);
    }
}
