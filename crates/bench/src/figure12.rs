//! Figure 12: TS-GREEDY running time vs. number of database objects
//! (paper §7.2): TPCH1G-N databases (N copies of every TPC-H table) with
//! TPCH-88-N workloads, 8 disks, N = 1..6. The paper plots the ratio to
//! N = 1 and observes quadratic growth (~40× at N = 6).

use std::time::Instant;

use serde::Serialize;

use dblayout_catalog::tpch::replicate_tpch;
use dblayout_core::access_graph::build_access_graph;
use dblayout_core::costmodel::decompose_workload;
use dblayout_core::tsgreedy::{ts_greedy, TsGreedyConfig};
use dblayout_disksim::uniform_disks;
use dblayout_workloads::tpch22::tpch88_n;

use crate::common::{object_sizes, plan_sql_workload};

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Figure12Row {
    /// Number of TPC-H copies.
    pub n_copies: usize,
    /// Objects in the catalog.
    pub objects: usize,
    /// TS-GREEDY wall time, milliseconds.
    pub runtime_ms: f64,
    /// Ratio to the N = 1 runtime.
    pub ratio_to_n1: f64,
    /// Cost-model invocations.
    pub cost_evaluations: usize,
}

/// Runs the sweep for the given copy counts (the paper uses 1..=6) at the
/// given scale factor per copy (the paper's is 1.0; tests shrink it).
pub fn run_with(copies: &[usize], sf: f64) -> Vec<Figure12Row> {
    // The aggregate database grows with N: size the 8 disks to hold N = max.
    let max_n = copies.iter().copied().max().unwrap_or(1) as u64;
    let per_disk = 40_000 * max_n.max(1) * ((sf * 10.0).ceil() as u64).max(1) / 10 + 100_000;
    let disks = uniform_disks(8, per_disk, 10.0, 20.0);

    let mut rows = Vec::new();
    let mut base_ms = None;
    for &n in copies {
        let catalog = replicate_tpch(sf, n);
        let queries = tpch88_n(n, 88);
        let plans = plan_sql_workload(&catalog, &queries);
        let sizes = object_sizes(&catalog);
        let graph = build_access_graph(sizes.len(), &plans);
        let workload = decompose_workload(&plans);

        let start = Instant::now();
        let result = ts_greedy(
            &sizes,
            &graph,
            &workload,
            &disks,
            &TsGreedyConfig::default(),
        )
        .expect("unconstrained search succeeds");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let base = *base_ms.get_or_insert(ms);
        rows.push(Figure12Row {
            n_copies: n,
            objects: sizes.len(),
            runtime_ms: ms,
            ratio_to_n1: ms / base,
            cost_evaluations: result.cost_evaluations,
        });
    }
    rows
}

/// The paper's sweep: N = 1..6 at scale factor 1.
pub fn run() -> Vec<Figure12Row> {
    run_with(&[1, 2, 3, 4, 5, 6], 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_count_scales_with_copies() {
        let rows = run_with(&[1, 2], 0.02);
        assert_eq!(rows[0].objects, 11);
        assert_eq!(rows[1].objects, 22);
        assert_eq!(rows[0].ratio_to_n1, 1.0);
        assert!(rows[1].cost_evaluations >= rows[0].cost_evaluations);
    }
}
