//! Search-engine bench: sequential full re-evaluation vs the incremental
//! parallel engine (`dblayout-par`) on the bundled `tpch_mix.sql` workload.
//!
//! The baseline is the pre-dblayout-par search: every candidate move scored
//! by a full Figure-7 re-evaluation on one thread
//! (`full_reevaluation: true, threads: 1`). Against it we measure the
//! incremental delta evaluator at each requested thread count. Because the
//! delta evaluator re-sums in full-evaluation order and the parallel
//! reduction adopts in sequential candidate order, **every configuration
//! must produce bit-identical layouts and costs** — the bench asserts this
//! (`identical_to_baseline`) and the `search_bench` binary exits non-zero
//! on any divergence, which is what the CI bench-smoke job keys off.
//!
//! Wall-clock speedup from *threads* requires actual cores; the report
//! records the host's available parallelism so single-core CI results read
//! honestly (there the speedup comes from the incremental evaluator).

use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::costmodel::{decompose_workload, CostModel};
use dblayout_core::tsgreedy::{ts_greedy, TsGreedyConfig};
use dblayout_core::{build_access_graph, Layout};
use dblayout_disksim::paper_disks;
use dblayout_obs::counters::{self, Counter};
use dblayout_obs::prof::PhaseTimer;
use dblayout_planner::plan_statement;
use dblayout_sql::parse_workload_file;

/// One measured engine configuration.
#[derive(Debug, Clone, Serialize)]
pub struct SearchBenchRow {
    /// `full_reevaluation` (the baseline) or `incremental`.
    pub engine: &'static str,
    /// Worker threads used for candidate scoring.
    pub threads: usize,
    /// Best (minimum) wall time over the measured repetitions, ms.
    pub best_ms: f64,
    /// Baseline `best_ms` divided by this row's `best_ms`.
    pub speedup_vs_sequential_full: f64,
    /// Layout fractions and final cost are bit-identical to the baseline.
    pub identical_to_baseline: bool,
    /// Greedy iterations adopted (must match the baseline).
    pub iterations: usize,
    /// Cost-model evaluations performed (must match the baseline).
    pub cost_evaluations: usize,
}

/// One deterministic work-counter delta accumulated across the run.
#[derive(Debug, Clone, Serialize)]
pub struct CounterValue {
    /// Registry name (`tsgreedy_candidates_enumerated`, ...).
    pub name: String,
    /// Delta over the whole bench run.
    pub value: u64,
}

/// One phase's aggregated wall time across the run.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseMs {
    /// Phase name (`analyze`, `build-graph`, `search`).
    pub phase: String,
    /// Times the phase was entered.
    pub calls: u64,
    /// Total wall time, milliseconds.
    pub total_ms: f64,
}

/// Migration-plan stamp: what it costs to *get to* the recommended
/// layout (FULL STRIPING → the baseline recommendation), as planned by
/// `dblayout-relayout`. Fully deterministic — the step count and moved
/// volume participate in the benchdiff counter gate via the
/// `migration_steps_planned` / `migration_blocks_planned` counters.
#[derive(Debug, Clone, Serialize)]
pub struct MigrationStamp {
    /// Ordered whole-object moves in the plan.
    pub steps: usize,
    /// Blocks relocated across all steps (§2.3.1 metric).
    pub total_moved_blocks: u64,
    /// The same volume in bytes.
    pub total_moved_bytes: u64,
    /// Sum of per-step transfer estimates, ms (drive model, not wall
    /// clock — deterministic).
    pub total_step_ms: f64,
}

/// The whole bench run, as written to `results/search_bench.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SearchBenchReport {
    /// Workload file the search ran over.
    pub workload: String,
    /// Git revision of the measured tree (`unknown` outside a checkout).
    pub git_rev: String,
    /// Statements in the workload (after weight expansion).
    pub statements: usize,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_available_parallelism: usize,
    /// Repetitions per configuration (`best_ms` is the minimum).
    pub reps: usize,
    /// Every row's layout/cost matched the baseline bit for bit.
    pub all_identical: bool,
    /// Dead-worker pool fallbacks observed during the run (scheduling
    /// class — should be 0 on a healthy host; nonzero means wall times
    /// include sequential rescue work and are not comparable).
    pub pool_fallbacks: u64,
    /// Migration plan from FULL STRIPING to the baseline recommendation.
    pub migration: MigrationStamp,
    /// Per-configuration measurements.
    pub rows: Vec<SearchBenchRow>,
    /// Deterministic work-counter deltas over the whole run — the
    /// fingerprint `dblayout benchdiff` compares exactly.
    pub counters: Vec<CounterValue>,
    /// Wall-time attribution per pipeline phase.
    pub phases: Vec<PhaseMs>,
}

/// Every placement fraction's bit pattern — the byte-level identity the
/// differential harness compares.
fn layout_bits(l: &Layout) -> Vec<u64> {
    let mut bits = Vec::new();
    for i in 0..l.object_count() {
        for j in 0..l.disk_count() {
            bits.push(l.fraction(i, j).to_bits());
        }
    }
    bits
}

/// Path of the bundled workload, resolved relative to this crate so the
/// bench works from any working directory.
pub fn tpch_mix_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/workloads/tpch_mix.sql")
}

/// Runs the bench: the sequential full-re-evaluation baseline, then the
/// incremental engine at each of `thread_counts`, `reps` repetitions each.
pub fn run_with(thread_counts: &[usize], reps: usize) -> SearchBenchReport {
    let reps = reps.max(1);
    let prof = PhaseTimer::new();
    let before = counters::snapshot();
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let text = std::fs::read_to_string(tpch_mix_path()).expect("bundled tpch_mix.sql is readable");
    let analyze = prof.phase("analyze");
    let entries = parse_workload_file(&text).expect("tpch_mix.sql parses");
    let plans: Vec<_> = entries
        .iter()
        .map(|e| {
            (
                plan_statement(&catalog, &e.statement).expect("tpch_mix.sql plans"),
                e.weight,
            )
        })
        .collect();
    drop(analyze);
    let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
    let graph = {
        let _build = prof.phase("build-graph");
        build_access_graph(sizes.len(), &plans)
    };
    let workload = {
        let _analyze = prof.phase("analyze");
        decompose_workload(&plans)
    };

    let measure = |cfg: &TsGreedyConfig| {
        let _search = prof.phase("search");
        let mut best_ms = f64::INFINITY;
        let mut result = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = ts_greedy(&sizes, &graph, &workload, &disks, cfg).expect("search succeeds");
            best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            result = Some(r);
        }
        (best_ms, result.expect("at least one repetition ran"))
    };

    let baseline_cfg = TsGreedyConfig {
        full_reevaluation: true,
        threads: 1,
        ..Default::default()
    };
    let (baseline_ms, baseline) = measure(&baseline_cfg);
    let baseline_layout = layout_bits(&baseline.layout);
    let baseline_cost = baseline.final_cost.to_bits();

    let mut rows = vec![SearchBenchRow {
        engine: "full_reevaluation",
        threads: 1,
        best_ms: baseline_ms,
        speedup_vs_sequential_full: 1.0,
        identical_to_baseline: true,
        iterations: baseline.iterations,
        cost_evaluations: baseline.cost_evaluations,
    }];
    for &threads in thread_counts {
        let cfg = TsGreedyConfig {
            threads: threads.max(1),
            ..Default::default()
        };
        let (best_ms, r) = measure(&cfg);
        rows.push(SearchBenchRow {
            engine: "incremental",
            threads: threads.max(1),
            best_ms,
            speedup_vs_sequential_full: baseline_ms / best_ms,
            identical_to_baseline: layout_bits(&r.layout) == baseline_layout
                && r.final_cost.to_bits() == baseline_cost,
            iterations: r.iterations,
            cost_evaluations: r.cost_evaluations,
        });
    }
    let all_identical = rows.iter().all(|r| r.identical_to_baseline);
    let migration = {
        let _migrate = prof.phase("migrate");
        let current = Layout::full_striping(sizes.clone(), &disks);
        let plan = dblayout_relayout::plan_migration(
            &current,
            &baseline.layout,
            &disks,
            &workload,
            &CostModel::default(),
        )
        .expect("migration from full striping is feasible");
        MigrationStamp {
            steps: plan.steps.len(),
            total_moved_blocks: plan.total_moved_blocks,
            total_moved_bytes: plan.total_moved_bytes,
            total_step_ms: plan.total_step_ms,
        }
    };
    let delta = counters::snapshot().delta(&before);
    SearchBenchReport {
        workload: "examples/workloads/tpch_mix.sql".to_string(),
        git_rev: crate::observatory::git_rev(
            &PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        ),
        statements: plans.len(),
        host_available_parallelism: dblayout_core::available_parallelism(),
        reps,
        all_identical,
        pool_fallbacks: delta.get(Counter::ParPoolFallbacks),
        migration,
        rows,
        counters: delta
            .deterministic_pairs()
            .into_iter()
            .map(|(name, value)| CounterValue {
                name: name.to_string(),
                value,
            })
            .collect(),
        phases: prof
            .rows()
            .into_iter()
            .map(|r| PhaseMs {
                phase: r.name,
                calls: r.calls,
                total_ms: r.total_us as f64 / 1e3,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_engine_matches_the_sequential_baseline() {
        let report = run_with(&[1, 2, 4], 1);
        assert!(report.all_identical, "{report:?}");
        assert_eq!(report.rows.len(), 4);
        let base = &report.rows[0];
        assert!(base.iterations >= 1, "search adopted no move");
        for row in &report.rows[1..] {
            assert_eq!(row.iterations, base.iterations);
            assert_eq!(row.cost_evaluations, base.cost_evaluations);
        }
    }
}
