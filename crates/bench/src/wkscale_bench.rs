//! WK-SCALE(N): advisor cost scaling with workload size (Table 1's
//! 100→3200-query workloads on TPCH1G).
//!
//! The paper lists these workloads among its inputs; the interesting
//! scaling axis they exercise is workload *size*: Analyze Workload is
//! linear in statements, while TS-GREEDY's per-candidate evaluation grows
//! with the number of statements touching the moved object.

use std::time::Instant;

use serde::Serialize;

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_disksim::paper_disks;
use dblayout_workloads::wkscale::wk_scale;

use crate::common::plan_sql_workload;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct WkScaleRow {
    /// Workload size (statements).
    pub queries: usize,
    /// Time to plan the whole workload (Analyze Workload), ms.
    pub planning_ms: f64,
    /// TS-GREEDY search time, ms.
    pub search_ms: f64,
    /// Estimated improvement over FULL STRIPING, percent.
    pub estimated_improvement_pct: f64,
}

/// Runs the sweep for the given sizes with the full advisor (including its
/// never-worse-than-FULL-STRIPING fallback — what a user of the tool sees).
pub fn run_with(ns: &[usize]) -> Vec<WkScaleRow> {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let advisor = Advisor::new(&catalog, &disks);

    ns.iter()
        .map(|&n| {
            let queries = wk_scale(n);
            let t0 = Instant::now();
            let plans = plan_sql_workload(&catalog, &queries);
            let planning_ms = t0.elapsed().as_secs_f64() * 1e3;

            let t1 = Instant::now();
            let rec = advisor
                .recommend_from_plans(plans, &AdvisorConfig::default())
                .expect("advisor succeeds");
            let search_ms = t1.elapsed().as_secs_f64() * 1e3;
            WkScaleRow {
                queries: n,
                planning_ms,
                search_ms,
                estimated_improvement_pct: rec.estimated_improvement_pct,
            }
        })
        .collect()
}

/// The paper's sizes: 100 … 3200.
pub fn run() -> Vec<WkScaleRow> {
    run_with(&dblayout_workloads::wkscale::WK_SCALE_SIZES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planning_scales_with_workload_size() {
        let rows = run_with(&[50, 200]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].planning_ms > rows[0].planning_ms);
        // The advisor never recommends worse than FULL STRIPING.
        for r in &rows {
            assert!(
                r.estimated_improvement_pct >= 0.0,
                "size {}: {}",
                r.queries,
                r.estimated_improvement_pct
            );
        }
    }
}
