//! The benchmark-regression observatory (`dblayout-prof`).
//!
//! Benches append one [`HistoryEntry`] per run to a repo-root history file
//! (`BENCH_search.json`, `BENCH_server.json`): a JSON array where every
//! element records the git revision, a config fingerprint, per-metric wall
//! times, per-phase attribution, and the deterministic work-counter
//! snapshot. `dblayout benchdiff <baseline> <current>` then compares two
//! histories with noise-aware thresholds:
//!
//! * **Timings** are compared median-vs-median over the last
//!   [`DiffOptions::window`] entries of each history, and only flagged when
//!   the current median exceeds the baseline median by more than
//!   [`DiffOptions::tolerance`] (relative) *and* the absolute times are
//!   above [`DiffOptions::min_ms`] — sub-millisecond metrics are all noise.
//! * **Deterministic counters** (the dblayout-par fingerprint:
//!   candidates enumerated/scored/adopted, delta vs. full re-costs, graph
//!   folds) are compared exactly between the latest entries, but only when
//!   both ran the same config. Any divergence is a hard failure regardless
//!   of timing tolerance — it means the *work done* changed, not the clock.
//!
//! The diff never compares scheduling-class counters (chunk sizes, pool
//! fallbacks); those legitimately vary run to run.

use std::path::Path;

use serde_json::{Value, ValueExt};

/// One appended bench run.
#[derive(Debug, Clone, Default)]
pub struct HistoryEntry {
    /// Git revision of the measured tree (short hash, or `unknown`).
    pub rev: String,
    /// Config fingerprint; counter comparison requires equal fingerprints.
    pub config: String,
    /// Thread counts exercised by the run.
    pub threads: Vec<usize>,
    /// Named wall-time metrics, milliseconds (the regression gate).
    pub timings_ms: Vec<(String, f64)>,
    /// Per-phase wall-time attribution, milliseconds (informational).
    pub phases_ms: Vec<(String, f64)>,
    /// Deterministic work counters (the exact-equality gate).
    pub counters: Vec<(String, u64)>,
}

impl HistoryEntry {
    /// The JSON object appended to the history file.
    pub fn to_value(&self) -> Value {
        let map = |pairs: &[(String, f64)]| {
            Value::Map(
                pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::F64(*v)))
                    .collect(),
            )
        };
        Value::Map(vec![
            ("rev".to_string(), Value::Str(self.rev.clone())),
            ("config".to_string(), Value::Str(self.config.clone())),
            (
                "threads".to_string(),
                Value::Seq(self.threads.iter().map(|&t| Value::U64(t as u64)).collect()),
            ),
            ("timings_ms".to_string(), map(&self.timings_ms)),
            ("phases_ms".to_string(), map(&self.phases_ms)),
            (
                "counters".to_string(),
                Value::Map(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::U64(*v)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The git revision of the tree at `root` (short hash), `unknown` when the
/// `git` binary and `.git` metadata are both unavailable. Never fails: the
/// observatory must work in tarball checkouts too.
pub fn git_rev(root: &Path) -> String {
    if let Ok(out) = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
    {
        if out.status.success() {
            let rev = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !rev.is_empty() {
                return rev;
            }
        }
    }
    // Fallback: read `.git/HEAD` directly (detached or symbolic).
    let head_path = root.join(".git/HEAD");
    if let Ok(head) = std::fs::read_to_string(&head_path) {
        let head = head.trim();
        let hash = match head.strip_prefix("ref: ") {
            Some(r) => std::fs::read_to_string(root.join(".git").join(r))
                .map(|s| s.trim().to_string())
                .unwrap_or_default(),
            None => head.to_string(),
        };
        if hash.len() >= 12 && hash.chars().all(|c| c.is_ascii_hexdigit()) {
            return hash[..12].to_string();
        }
    }
    "unknown".to_string()
}

/// Appends `entry` to the JSON-array history at `path`, creating the file
/// (and parent directories) on first use. Returns the new entry count.
pub fn append_history(path: &Path, entry: &HistoryEntry) -> Result<usize, String> {
    let mut entries: Vec<Value> = match std::fs::read_to_string(path) {
        Ok(text) => {
            let v: Value = serde_json::from_str(&text)
                .map_err(|e| format!("history `{}` is not valid JSON: {e}", path.display()))?;
            v.as_array()
                .cloned()
                .ok_or_else(|| format!("history `{}` is not a JSON array", path.display()))?
        }
        Err(_) => Vec::new(),
    };
    entries.push(entry.to_value());
    let n = entries.len();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
        }
    }
    let json = serde_json::to_string_pretty(&Value::Seq(entries))
        .map_err(|e| format!("cannot serialize history: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
    Ok(n)
}

/// Loads a history file as its entry array.
pub fn load_history(path: &Path) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let v: Value = serde_json::from_str(&text)
        .map_err(|e| format!("history `{}` is not valid JSON: {e}", path.display()))?;
    v.as_array()
        .cloned()
        .ok_or_else(|| format!("history `{}` is not a JSON array", path.display()))
}

/// Thresholds for [`diff`].
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative slowdown above which a timing metric regresses (0.5 = 50%).
    pub tolerance: f64,
    /// Entries from the tail of each history whose median is compared.
    pub window: usize,
    /// Skip the exact counter gate (adaptive-iteration benches).
    pub ignore_counters: bool,
    /// Skip the counter gate only for config groups whose config string
    /// contains one of these substrings — lets one history mix
    /// adaptive-iteration rows (criterion benches, counters incomparable)
    /// with deterministic rows (loadtest mixes, counters exact-gated).
    pub ignore_counters_for: Vec<String>,
    /// Both medians must exceed this for a timing to count (noise floor).
    pub min_ms: f64,
    /// Speedup gates: `(fast, slow)` metric-name pairs asserting that in
    /// the *current* history, `fast`'s windowed median is not slower than
    /// `slow`'s beyond [`DiffOptions::tolerance`] — "parallelism pays"
    /// as a regression gate rather than a one-off claim. A gate naming a
    /// metric the current history lacks is a hard failure.
    pub not_slower: Vec<(String, String)>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            tolerance: 0.5,
            window: 5,
            ignore_counters: false,
            ignore_counters_for: Vec::new(),
            min_ms: 1.0,
            not_slower: Vec::new(),
        }
    }
}

/// One compared timing metric.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name from `timings_ms`.
    pub metric: String,
    /// Median over the baseline window, ms.
    pub baseline_ms: f64,
    /// Median over the current window, ms.
    pub current_ms: f64,
    /// `current / baseline` (infinite when the baseline is zero).
    pub ratio: f64,
    /// Beyond tolerance and above the noise floor.
    pub regressed: bool,
}

/// One deterministic counter whose value changed between runs.
#[derive(Debug, Clone)]
pub struct CounterDivergence {
    /// Counter name.
    pub name: String,
    /// Value in the latest baseline entry.
    pub baseline: u64,
    /// Value in the latest current entry.
    pub current: u64,
}

/// One evaluated [`DiffOptions::not_slower`] gate.
#[derive(Debug, Clone)]
pub struct SpeedupGate {
    /// Metric expected to be at least as fast.
    pub fast: String,
    /// Metric it is measured against.
    pub slow: String,
    /// Windowed median of `fast` in the current history, ms.
    pub fast_ms: f64,
    /// Windowed median of `slow` in the current history, ms.
    pub slow_ms: f64,
    /// `fast / slow` (infinite when `slow` is zero).
    pub ratio: f64,
    /// `fast` exceeded `slow` beyond tolerance, above the noise floor.
    pub violated: bool,
}

/// The outcome of comparing two bench histories.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every timing metric present in the baseline.
    pub metrics: Vec<MetricDelta>,
    /// Deterministic counters that diverged (always a hard failure).
    pub counter_divergences: Vec<CounterDivergence>,
    /// Whether any counter gate ran (matching config group, not ignored).
    pub counters_compared: bool,
    /// Baseline metrics the current history lacks (a hard failure: a
    /// silently dropped measurement must not read as "no regression").
    /// A whole baseline config group missing from the current history
    /// lands all of its metrics here.
    pub missing_metrics: Vec<String>,
    /// Evaluated speedup gates ([`DiffOptions::not_slower`]).
    pub speedup_gates: Vec<SpeedupGate>,
}

impl DiffReport {
    /// True when `benchdiff` should exit non-zero.
    pub fn regressed(&self) -> bool {
        !self.missing_metrics.is_empty()
            || !self.counter_divergences.is_empty()
            || self.metrics.iter().any(|m| m.regressed)
            || self.speedup_gates.iter().any(|g| g.violated)
    }

    /// The human-readable delta table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34} {:>12} {:>12} {:>8}  {}\n",
            "metric", "baseline ms", "current ms", "ratio", "status"
        ));
        for m in &self.metrics {
            out.push_str(&format!(
                "{:<34} {:>12.2} {:>12.2} {:>7.2}x  {}\n",
                m.metric,
                m.baseline_ms,
                m.current_ms,
                m.ratio,
                if m.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        for name in &self.missing_metrics {
            out.push_str(&format!("{name:<34} missing from current history\n"));
        }
        for g in &self.speedup_gates {
            out.push_str(&format!(
                "not-slower {:<23} {:>12.2} {:>12.2} {:>7.2}x  {}\n",
                format!("{} vs {}", g.fast, g.slow),
                g.fast_ms,
                g.slow_ms,
                g.ratio,
                if g.violated { "VIOLATED" } else { "ok" }
            ));
        }
        if self.counters_compared {
            if self.counter_divergences.is_empty() {
                out.push_str("deterministic counters: identical\n");
            } else {
                for c in &self.counter_divergences {
                    out.push_str(&format!(
                        "counter {} diverged: baseline {} -> current {}\n",
                        c.name, c.baseline, c.current
                    ));
                }
            }
        } else {
            out.push_str(
                "deterministic counters: not compared (config mismatch or --ignore-counters)\n",
            );
        }
        out.push_str(if self.regressed() {
            "verdict: REGRESSED\n"
        } else {
            "verdict: ok\n"
        });
        out
    }
}

fn median(mut xs: Vec<f64>) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    Some(xs[xs.len() / 2])
}

/// Median of `timings_ms[metric]` over the last `window` entries that
/// actually carry the metric.
fn windowed_median(entries: &[&Value], metric: &str, window: usize) -> Option<f64> {
    let values: Vec<f64> = entries
        .iter()
        .filter_map(|e| e.get("timings_ms")?.get(metric)?.as_f64())
        .collect();
    let tail = &values[values.len().saturating_sub(window.max(1))..];
    median(tail.to_vec())
}

/// All timing-metric names of an entry, in file order.
fn metric_names(entry: &Value) -> Vec<String> {
    match entry.get("timings_ms") {
        Some(Value::Map(pairs)) => pairs.iter().map(|(k, _)| k.clone()).collect(),
        _ => Vec::new(),
    }
}

fn str_field(entry: &Value, key: &str) -> String {
    entry
        .get(key)
        .and_then(|v| v.as_str())
        .unwrap_or_default()
        .to_string()
}

/// Partitions a history by its entries' config fingerprints, preserving
/// first-seen order (no hashing — the report must be deterministic).
/// One history file carries every bench family (tpch_mix, wkmega, ...);
/// comparing across families would be meaningless.
fn group_by_config(entries: &[Value]) -> Vec<(String, Vec<&Value>)> {
    let mut groups: Vec<(String, Vec<&Value>)> = Vec::new();
    for e in entries {
        let config = str_field(e, "config");
        match groups.iter_mut().find(|(c, _)| *c == config) {
            Some((_, list)) => list.push(e),
            None => groups.push((config, vec![e])),
        }
    }
    groups
}

/// Compares two bench histories (arrays of [`HistoryEntry`] objects).
///
/// Entries are grouped by config fingerprint and compared group against
/// group: windowed timing medians within each group, exact counters
/// between each group's latest entries. A baseline group with no current
/// counterpart is a hard failure (its metrics report as missing) — a
/// bench family that silently stopped running must not read as "no
/// regression". [`DiffOptions::not_slower`] gates are evaluated on the
/// current history alone.
///
/// Returns an error only for structurally empty inputs; a regression is a
/// *successful* diff whose [`DiffReport::regressed`] is true.
pub fn diff(
    baseline: &[Value],
    current: &[Value],
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    if baseline.is_empty() {
        return Err("baseline history is empty".to_string());
    }
    if current.is_empty() {
        return Err("current history is empty".to_string());
    }

    let cur_groups = group_by_config(current);
    let mut report = DiffReport::default();
    for (config, base_entries) in group_by_config(baseline) {
        let cur_entries = cur_groups
            .iter()
            .find(|(c, _)| *c == config)
            .map(|(_, l)| l);
        let base_last = base_entries[base_entries.len() - 1];
        let Some(cur_entries) = cur_entries else {
            report.missing_metrics.extend(metric_names(base_last));
            continue;
        };
        for metric in metric_names(base_last) {
            let Some(baseline_ms) = windowed_median(&base_entries, &metric, opts.window) else {
                continue;
            };
            let Some(current_ms) = windowed_median(cur_entries, &metric, opts.window) else {
                report.missing_metrics.push(metric);
                continue;
            };
            let ratio = if baseline_ms > 0.0 {
                current_ms / baseline_ms
            } else {
                f64::INFINITY
            };
            let above_floor = baseline_ms > opts.min_ms && current_ms > opts.min_ms;
            report.metrics.push(MetricDelta {
                metric,
                baseline_ms,
                current_ms,
                ratio,
                regressed: above_floor && current_ms > baseline_ms * (1.0 + opts.tolerance),
            });
        }

        if config.is_empty()
            || opts.ignore_counters
            || opts
                .ignore_counters_for
                .iter()
                .any(|pat| config.contains(pat.as_str()))
        {
            continue;
        }
        report.counters_compared = true;
        let cur_last = cur_entries[cur_entries.len() - 1];
        if let (Some(Value::Map(base_c)), Some(cur_c)) =
            (base_last.get("counters"), cur_last.get("counters"))
        {
            for (name, bval) in base_c {
                let b = bval.as_u64().unwrap_or(0);
                let c = cur_c.get(name).and_then(|v| v.as_u64()).unwrap_or(0);
                if b != c {
                    report.counter_divergences.push(CounterDivergence {
                        name: name.clone(),
                        baseline: b,
                        current: c,
                    });
                }
            }
        }
    }

    let all_current: Vec<&Value> = current.iter().collect();
    for (fast, slow) in &opts.not_slower {
        let fast_ms = windowed_median(&all_current, fast, opts.window);
        let slow_ms = windowed_median(&all_current, slow, opts.window);
        let (Some(fast_ms), Some(slow_ms)) = (fast_ms, slow_ms) else {
            if fast_ms.is_none() {
                report.missing_metrics.push(fast.clone());
            }
            if slow_ms.is_none() {
                report.missing_metrics.push(slow.clone());
            }
            continue;
        };
        let ratio = if slow_ms > 0.0 {
            fast_ms / slow_ms
        } else {
            f64::INFINITY
        };
        let above_floor = fast_ms > opts.min_ms && slow_ms > opts.min_ms;
        report.speedup_gates.push(SpeedupGate {
            fast: fast.clone(),
            slow: slow.clone(),
            fast_ms,
            slow_ms,
            ratio,
            violated: above_floor && fast_ms > slow_ms * (1.0 + opts.tolerance),
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(config: &str, timing: f64, counter: u64) -> HistoryEntry {
        HistoryEntry {
            rev: "deadbeef0123".to_string(),
            config: config.to_string(),
            threads: vec![1, 4],
            timings_ms: vec![
                ("incremental/t4".to_string(), timing),
                ("tiny/noise".to_string(), 0.04),
            ],
            phases_ms: vec![("search".to_string(), timing)],
            counters: vec![("tsgreedy_candidates_enumerated".to_string(), counter)],
        }
    }

    fn history(entries: &[HistoryEntry]) -> Vec<Value> {
        entries.iter().map(HistoryEntry::to_value).collect()
    }

    #[test]
    fn identical_histories_pass() {
        let h = history(&[entry("c", 100.0, 42)]);
        let report = diff(&h, &h, &DiffOptions::default()).unwrap();
        assert!(!report.regressed(), "{}", report.render());
        assert!(report.counters_compared);
        assert!(report.render().contains("verdict: ok"));
    }

    #[test]
    fn two_x_slowdown_regresses() {
        let base = history(&[entry("c", 100.0, 42)]);
        let cur = history(&[entry("c", 200.0, 42)]);
        let report = diff(&base, &cur, &DiffOptions::default()).unwrap();
        assert!(report.regressed());
        let m = report
            .metrics
            .iter()
            .find(|m| m.metric == "incremental/t4")
            .unwrap();
        assert!(m.regressed);
        assert!((m.ratio - 2.0).abs() < 1e-9);
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn counter_divergence_fails_even_with_huge_tolerance() {
        let base = history(&[entry("c", 100.0, 42)]);
        let cur = history(&[entry("c", 100.0, 43)]);
        let opts = DiffOptions {
            tolerance: 100.0,
            ..DiffOptions::default()
        };
        let report = diff(&base, &cur, &opts).unwrap();
        assert!(report.regressed(), "work-done change must hard-fail");
        assert_eq!(report.counter_divergences.len(), 1);
        assert_eq!(report.counter_divergences[0].baseline, 42);
        assert_eq!(report.counter_divergences[0].current, 43);
    }

    #[test]
    fn ignore_counters_skips_the_counter_gate() {
        let base = history(&[entry("c", 100.0, 42)]);
        let cur = history(&[entry("c", 100.0, 43)]);
        let opts = DiffOptions {
            ignore_counters: true,
            ..DiffOptions::default()
        };
        let report = diff(&base, &cur, &opts).unwrap();
        assert!(!report.counters_compared);
        assert!(!report.regressed());
    }

    #[test]
    fn ignore_counters_for_is_scoped_to_matching_configs() {
        // Two config groups in one history: an adaptive criterion row
        // (counters incomparable) and a deterministic loadtest row. The
        // substring skip must exempt only the former.
        let base = history(&[
            entry("workload=tpch22;adaptive_iterations", 100.0, 42),
            entry("loadtest;mode=open;seed=42", 100.0, 1000),
        ]);
        let drifted = history(&[
            entry("workload=tpch22;adaptive_iterations", 100.0, 43),
            entry("loadtest;mode=open;seed=42", 100.0, 1000),
        ]);
        let opts = DiffOptions {
            ignore_counters_for: vec!["adaptive_iterations".to_string()],
            ..DiffOptions::default()
        };
        let report = diff(&base, &drifted, &opts).unwrap();
        assert!(
            !report.regressed(),
            "criterion counter drift must be exempt: {}",
            report.render()
        );
        assert!(report.counters_compared, "loadtest group still gates");

        // The same divergence in the loadtest group still hard-fails.
        let mix_changed = history(&[
            entry("workload=tpch22;adaptive_iterations", 100.0, 43),
            entry("loadtest;mode=open;seed=42", 100.0, 999),
        ]);
        let report = diff(&base, &mix_changed, &opts).unwrap();
        assert!(report.regressed(), "loadtest mix drift must fail");
        assert_eq!(report.counter_divergences.len(), 1);
    }

    #[test]
    fn baseline_config_group_missing_from_current_is_a_hard_failure() {
        // The baseline measured config "c"; the current history only ever
        // ran config "d" — a bench family that silently stopped running.
        let base = history(&[entry("c", 100.0, 42)]);
        let other = history(&[entry("d", 100.0, 43)]);
        let report = diff(&base, &other, &DiffOptions::default()).unwrap();
        assert!(report.regressed());
        assert!(report
            .missing_metrics
            .contains(&"incremental/t4".to_string()));
    }

    #[test]
    fn config_groups_are_compared_independently() {
        // Interleaved families in one file: tpch entries around a mega
        // entry. Grouping must compare c-entries to c-entries (median 100)
        // and the lone m-entry to its counterpart, not mix the medians.
        let mut mega = entry("m", 500.0, 7);
        mega.timings_ms = vec![("mega/serial".to_string(), 500.0)];
        let base = history(&[
            entry("c", 100.0, 42),
            mega.clone(),
            entry("c", 100.0, 42),
            entry("c", 100.0, 42),
        ]);
        let cur = history(&[entry("c", 110.0, 42), mega.clone(), entry("c", 110.0, 42)]);
        let report = diff(&base, &cur, &DiffOptions::default()).unwrap();
        assert!(!report.regressed(), "{}", report.render());
        assert!(report.counters_compared);
        let mega_metric = report
            .metrics
            .iter()
            .find(|m| m.metric == "mega/serial")
            .unwrap();
        assert!((mega_metric.ratio - 1.0).abs() < 1e-9);
        // Divergent counters in the mega group alone are still caught.
        let mut mega_diverged = mega.clone();
        mega_diverged.counters = vec![("tsgreedy_candidates_enumerated".to_string(), 8)];
        let cur2 = history(&[entry("c", 100.0, 42), mega_diverged, entry("c", 100.0, 42)]);
        let report2 = diff(&base, &cur2, &DiffOptions::default()).unwrap();
        assert!(report2.regressed());
        assert_eq!(report2.counter_divergences.len(), 1);
    }

    #[test]
    fn not_slower_gate_passes_within_tolerance_and_fails_beyond() {
        let mut e = entry("c", 100.0, 42);
        e.timings_ms = vec![
            ("search/t4".to_string(), 120.0),
            ("search/t1".to_string(), 100.0),
        ];
        let h = history(&[e]);
        let gated = |tolerance: f64| DiffOptions {
            tolerance,
            not_slower: vec![("search/t4".to_string(), "search/t1".to_string())],
            ..DiffOptions::default()
        };
        // 1.2x is within the 50% tolerance...
        let report = diff(&h, &h, &gated(0.5)).unwrap();
        assert!(!report.regressed(), "{}", report.render());
        assert_eq!(report.speedup_gates.len(), 1);
        assert!((report.speedup_gates[0].ratio - 1.2).abs() < 1e-9);
        // ...but not within 10%.
        let report = diff(&h, &h, &gated(0.1)).unwrap();
        assert!(report.regressed());
        assert!(report.speedup_gates[0].violated);
        assert!(report.render().contains("VIOLATED"));
    }

    #[test]
    fn not_slower_gate_with_missing_metric_is_a_hard_failure() {
        let h = history(&[entry("c", 100.0, 42)]);
        let opts = DiffOptions {
            not_slower: vec![("search/t4".to_string(), "incremental/t4".to_string())],
            ..DiffOptions::default()
        };
        let report = diff(&h, &h, &opts).unwrap();
        assert!(report.regressed());
        assert!(report.missing_metrics.contains(&"search/t4".to_string()));
    }

    #[test]
    fn sub_noise_floor_timings_never_regress() {
        // "tiny/noise" doubles but sits under min_ms — stays ok.
        let base = history(&[entry("c", 100.0, 42)]);
        let mut slow = entry("c", 100.0, 42);
        slow.timings_ms[1].1 = 0.9;
        let cur = history(&[slow]);
        assert!(!diff(&base, &cur, &DiffOptions::default())
            .unwrap()
            .regressed());
    }

    #[test]
    fn missing_metric_is_a_hard_failure() {
        let base = history(&[entry("c", 100.0, 42)]);
        let mut cur_entry = entry("c", 100.0, 42);
        cur_entry.timings_ms.remove(0);
        let report = diff(&base, &history(&[cur_entry]), &DiffOptions::default()).unwrap();
        assert_eq!(report.missing_metrics, vec!["incremental/t4".to_string()]);
        assert!(report.regressed());
    }

    #[test]
    fn median_window_absorbs_one_outlier() {
        // Baseline window of 3 with one slow outlier; current matches the
        // typical value — no regression.
        let base = history(&[
            entry("c", 100.0, 42),
            entry("c", 350.0, 42),
            entry("c", 100.0, 42),
        ]);
        let cur = history(&[entry("c", 110.0, 42)]);
        let report = diff(&base, &cur, &DiffOptions::default()).unwrap();
        assert!(!report.regressed(), "{}", report.render());
    }

    #[test]
    fn history_file_roundtrip_appends() {
        let dir = std::env::temp_dir().join(format!("dblayout_observatory_{}", std::process::id()));
        let path = dir.join("BENCH_test.json");
        let _ = std::fs::remove_file(&path);
        assert_eq!(append_history(&path, &entry("c", 1.0, 1)).unwrap(), 1);
        assert_eq!(append_history(&path, &entry("c", 2.0, 1)).unwrap(), 2);
        let loaded = load_history(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded[1]
                .get("timings_ms")
                .and_then(|t| t.get("incremental/t4"))
                .and_then(|v| v.as_f64()),
            Some(2.0)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn git_rev_in_this_repo_is_a_short_hash() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let rev = git_rev(&root);
        assert!(
            rev == "unknown" || rev.chars().all(|c| c.is_ascii_hexdigit()),
            "{rev}"
        );
    }
}
