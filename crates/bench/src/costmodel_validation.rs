//! Cost-model ordering validation (paper §7.2, second part): across 10
//! layouts (4 random, 5 controlled-overlap, FULL STRIPING) and 8 workloads
//! (WK-CTRL1, WK-CTRL2, TPCH-22, five 25-query synthetics), how often does
//! the cost model order a pair of layouts the same way actual execution
//! does? The paper reports 82%.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_catalog::Catalog;
use dblayout_core::costmodel::CostModel;
use dblayout_disksim::{paper_disks, DiskSpec, Layout, SimConfig};
use dblayout_workloads::qgen::validation_workloads;
use dblayout_workloads::tpch22::tpch22;
use dblayout_workloads::wkctrl::{wk_ctrl1, wk_ctrl2};

use crate::common::{object_sizes, plan_sql_workload, simulate_workload_ms};

/// Agreement stats for one workload.
#[derive(Debug, Clone, Serialize)]
pub struct ValidationRow {
    /// Workload label.
    pub workload: String,
    /// Layout pairs compared.
    pub pairs: usize,
    /// Pairs where estimated and simulated orders agree.
    pub agreements: usize,
    /// Percent agreement.
    pub agreement_pct: f64,
}

/// Overall result.
#[derive(Debug, Clone, Serialize)]
pub struct ValidationResult {
    /// Per-workload rows.
    pub rows: Vec<ValidationRow>,
    /// Aggregate agreement percent (the paper's 82% headline).
    pub overall_agreement_pct: f64,
}

/// The ten layouts: full striping, four random, five controlled overlaps of
/// lineitem/orders (0..4 shared disks).
pub fn ten_layouts(catalog: &Catalog, disks: &[DiskSpec]) -> Vec<(String, Layout)> {
    let sizes = object_sizes(catalog);
    let mut out: Vec<(String, Layout)> = Vec::new();
    out.push((
        "full-striping".into(),
        Layout::full_striping(sizes.clone(), disks),
    ));

    // Four random layouts: each object on a random non-empty disk subset.
    let mut rng = StdRng::seed_from_u64(0xAB5);
    for r in 0..4 {
        loop {
            let mut l = Layout::empty(sizes.clone(), disks.len());
            for i in 0..sizes.len() {
                let count = rng.gen_range(1..=disks.len());
                let mut ids: Vec<usize> = (0..disks.len()).collect();
                for _ in 0..(disks.len() - count) {
                    let k = rng.gen_range(0..ids.len());
                    ids.remove(k);
                }
                l.place_proportional(i, &ids, disks);
            }
            if l.validate(disks).is_ok() {
                out.push((format!("random-{r}"), l));
                break;
            }
        }
    }

    // Five controlled overlaps: lineitem on disks {0..5}, orders on 3 disks
    // sharing `d` of them, everything else striped.
    let li = catalog.object_id("lineitem").expect("lineitem").index();
    let or = catalog.object_id("orders").expect("orders").index();
    for d in 0..5usize {
        let mut l = Layout::full_striping(sizes.clone(), disks);
        let li_disks: Vec<usize> = (0..5).collect();
        // d shared with lineitem's set, 3−d outside it.
        let mut or_disks: Vec<usize> = (0..d).collect();
        or_disks.extend(5..(5 + 3 - d));
        l.place_proportional(li, &li_disks, disks);
        l.place_proportional(or, &or_disks, disks);
        out.push((format!("overlap-{d}"), l));
    }
    out
}

/// The eight validation workloads, labeled.
pub fn eight_workloads() -> Vec<(String, Vec<String>)> {
    let mut out = vec![
        ("WK-CTRL1".to_string(), wk_ctrl1()),
        ("WK-CTRL2".to_string(), wk_ctrl2()),
        ("TPCH-22".to_string(), tpch22()),
    ];
    for (i, w) in validation_workloads().into_iter().enumerate() {
        out.push((format!("SYNTH-{}", i + 1), w));
    }
    out
}

/// Runs the validation and reports per-workload and overall agreement.
pub fn run() -> ValidationResult {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let layouts = ten_layouts(&catalog, &disks);
    let model = CostModel::default();
    let sim_cfg = SimConfig::default();

    let mut rows = Vec::new();
    let mut total_pairs = 0usize;
    let mut total_agree = 0usize;

    for (name, queries) in eight_workloads() {
        let plans = plan_sql_workload(&catalog, &queries);
        let est: Vec<f64> = layouts
            .iter()
            .map(|(_, l)| model.workload_cost(&plans, l, &disks))
            .collect();
        let act: Vec<f64> = layouts
            .iter()
            .map(|(_, l)| simulate_workload_ms(&plans, l, &disks, &sim_cfg))
            .collect();

        let mut pairs = 0usize;
        let mut agree = 0usize;
        for i in 0..layouts.len() {
            for j in (i + 1)..layouts.len() {
                pairs += 1;
                let e = (est[i] - est[j]).signum();
                let a = (act[i] - act[j]).signum();
                if e == a {
                    agree += 1;
                }
            }
        }
        total_pairs += pairs;
        total_agree += agree;
        rows.push(ValidationRow {
            workload: name,
            pairs,
            agreements: agree,
            agreement_pct: 100.0 * agree as f64 / pairs as f64,
        });
    }

    ValidationResult {
        rows,
        overall_agreement_pct: 100.0 * total_agree as f64 / total_pairs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_layouts_all_valid_and_distinctly_shaped() {
        let catalog = tpch_catalog(0.2);
        let disks = paper_disks();
        let layouts = ten_layouts(&catalog, &disks);
        assert_eq!(layouts.len(), 10);
        for (name, l) in &layouts {
            l.validate(&disks).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        // Overlap layouts actually vary lineitem/orders intersection.
        let li = catalog.object_id("lineitem").unwrap().index();
        let or = catalog.object_id("orders").unwrap().index();
        for d in 0..5usize {
            let (_, l) = layouts
                .iter()
                .find(|(n, _)| n == &format!("overlap-{d}"))
                .unwrap();
            let shared = l
                .disks_of(li)
                .iter()
                .filter(|j| l.disks_of(or).contains(j))
                .count();
            assert_eq!(shared, d, "overlap-{d}");
        }
    }

    #[test]
    fn eight_workloads_present() {
        let ws = eight_workloads();
        assert_eq!(ws.len(), 8);
        assert_eq!(ws[2].1.len(), 22);
    }

    /// A scaled-down version of the full experiment: agreement on the
    /// controlled workloads must be clearly better than coin-flipping.
    #[test]
    fn agreement_beats_chance_on_small_scale() {
        let catalog = tpch_catalog(0.05);
        let disks = paper_disks();
        let layouts = ten_layouts(&catalog, &disks);
        let model = CostModel::default();
        let plans = plan_sql_workload(&catalog, &wk_ctrl1());
        let est: Vec<f64> = layouts
            .iter()
            .map(|(_, l)| model.workload_cost(&plans, l, &disks))
            .collect();
        let act: Vec<f64> = layouts
            .iter()
            .map(|(_, l)| simulate_workload_ms(&plans, l, &disks, &SimConfig::default()))
            .collect();
        let mut pairs = 0;
        let mut agree = 0;
        for i in 0..layouts.len() {
            for j in (i + 1)..layouts.len() {
                pairs += 1;
                if (est[i] - est[j]).signum() == (act[i] - act[j]).signum() {
                    agree += 1;
                }
            }
        }
        let pct = 100.0 * agree as f64 / pairs as f64;
        assert!(pct > 60.0, "agreement only {pct}%");
    }
}
