//! Shared experiment plumbing.

use std::path::Path;

use dblayout_catalog::Catalog;
use dblayout_disksim::{DiskSpec, Layout, SimConfig, Simulator};
use dblayout_planner::{plan_statement, PhysicalPlan};
use dblayout_workloads::parse_all;

/// Plans a list of SQL strings against a catalog, panicking with the
/// offending query on failure (experiments use vetted workloads).
pub fn plan_sql_workload(catalog: &Catalog, queries: &[String]) -> Vec<(PhysicalPlan, f64)> {
    let stmts = parse_all(queries).expect("workload parses");
    stmts
        .iter()
        .map(|(s, w)| {
            (
                plan_statement(catalog, s).unwrap_or_else(|e| panic!("planning failed: {e}")),
                *w,
            )
        })
        .collect()
}

/// Simulated ("actual") elapsed milliseconds of a weighted workload under a
/// layout — the experiment stand-in for executing on the paper's testbed.
pub fn simulate_workload_ms(
    plans: &[(PhysicalPlan, f64)],
    layout: &Layout,
    disks: &[DiskSpec],
    cfg: &SimConfig,
) -> f64 {
    let mut sim = Simulator::new(disks, layout, cfg.clone()).expect("valid layout");
    sim.execute_workload(plans).total_elapsed_ms
}

/// `100 · (baseline − candidate) / baseline`.
pub fn improvement_pct(baseline: f64, candidate: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        100.0 * (baseline - candidate) / baseline
    }
}

/// Writes any serializable result to `results/<name>.json` under the
/// workspace root (best-effort; failures are reported, not fatal).
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("(results written to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Object sizes of a catalog, indexed by object id.
pub fn object_sizes(catalog: &Catalog) -> Vec<u64> {
    catalog.objects().iter().map(|o| o.size_blocks).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::tpch::tpch_catalog;
    use dblayout_disksim::paper_disks;

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(100.0, 75.0), 25.0);
        assert_eq!(improvement_pct(0.0, 10.0), 0.0);
        assert!(improvement_pct(100.0, 120.0) < 0.0);
    }

    #[test]
    fn plan_and_simulate_smoke() {
        let catalog = tpch_catalog(0.05);
        let disks = paper_disks();
        let plans = plan_sql_workload(
            &catalog,
            &["SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey".into()],
        );
        let layout = Layout::full_striping(object_sizes(&catalog), &disks);
        let ms = simulate_workload_ms(&plans, &layout, &disks, &SimConfig::default());
        assert!(ms > 0.0);
    }
}
