//! Extension experiment: concurrency-aware workload modeling (paper
//! §2.2's acknowledged gap / §9's future work).
//!
//! Setup: a multiprogramming mix of single-table scan statements over the
//! four big TPC-H tables, all executing concurrently. Under the paper's
//! *set* workload model no statement co-accesses anything, so TS-GREEDY
//! sees no reason to separate and recommends FULL STRIPING. The
//! concurrency-aware access graph adds cross-statement edges, TS-GREEDY
//! separates the tables, and the simulator's concurrent-execution oracle
//! shows the separated layout winning the mix.

use serde::Serialize;

use dblayout_catalog::tpch::tpch_catalog;
use dblayout_core::concurrency::{
    build_concurrent_access_graph, concurrent_cost_workload, ConcurrentWorkload,
};
use dblayout_core::costmodel::decompose_workload;
use dblayout_core::tsgreedy::{ts_greedy, TsGreedyConfig};
use dblayout_disksim::{paper_disks, SimConfig, Simulator};
use dblayout_planner::PhysicalPlan;

use crate::common::{object_sizes, plan_sql_workload};

/// One row: a workload-model variant and the mix's simulated elapsed time
/// under the layout that variant recommends.
#[derive(Debug, Clone, Serialize)]
pub struct ConcurrencyRow {
    /// Which workload model produced the layout.
    pub model: String,
    /// Simulated elapsed milliseconds of the concurrent mix.
    pub concurrent_elapsed_ms: f64,
    /// Distinct disk sets among the four scanned tables (4 = fully
    /// separated, 1 = all co-located/striped).
    pub distinct_disk_sets: usize,
}

/// Runs the experiment.
pub fn run() -> Vec<ConcurrencyRow> {
    let catalog = tpch_catalog(1.0);
    let disks = paper_disks();
    let queries: Vec<String> = [
        "SELECT COUNT(*) FROM lineitem",
        "SELECT COUNT(*) FROM orders",
        "SELECT COUNT(*) FROM partsupp",
        "SELECT COUNT(*) FROM part",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let plans = plan_sql_workload(&catalog, &queries);
    let sizes = object_sizes(&catalog);

    let sequential = ConcurrentWorkload::sequential(plans.clone());
    let concurrent = ConcurrentWorkload::fully_concurrent(plans.clone(), 1.0);

    // The set model uses the plain graph + per-statement costs; the
    // extension uses the augmented graph + the merged-group cost objective.
    let variants: [(&str, _, _); 2] = [
        (
            "set model (paper)",
            build_concurrent_access_graph(sizes.len(), &sequential),
            decompose_workload(&plans),
        ),
        (
            "concurrency-aware (extension)",
            build_concurrent_access_graph(sizes.len(), &concurrent),
            concurrent_cost_workload(&concurrent),
        ),
    ];

    let tables = ["lineitem", "orders", "partsupp", "part"];
    let mut rows = Vec::new();
    for (label, graph, workload) in &variants {
        let r = ts_greedy(&sizes, graph, workload, &disks, &TsGreedyConfig::default())
            .expect("search succeeds");
        let refs: Vec<&PhysicalPlan> = plans.iter().map(|(p, _)| p).collect();
        let mut sim = Simulator::new(&disks, &r.layout, SimConfig::default()).expect("valid");
        let t = sim.execute_concurrent(&refs);
        let mut sets: Vec<Vec<usize>> = tables
            .iter()
            .map(|t| r.layout.disks_of(catalog.object_id(t).unwrap().index()))
            .collect();
        sets.sort();
        sets.dedup();
        rows.push(ConcurrencyRow {
            model: label.to_string(),
            concurrent_elapsed_ms: t.elapsed_ms,
            distinct_disk_sets: sets.len(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_aware_layout_wins_the_mix() {
        let rows = run();
        assert_eq!(rows.len(), 2);
        let set_model = &rows[0];
        let aware = &rows[1];
        assert!(
            aware.concurrent_elapsed_ms < set_model.concurrent_elapsed_ms,
            "aware {} vs set-model {}",
            aware.concurrent_elapsed_ms,
            set_model.concurrent_elapsed_ms
        );
        assert!(aware.distinct_disk_sets > set_model.distinct_disk_sets);
    }
}
