//! Mega-scale TS-GREEDY differential bench on the WK-MEGA family.
//!
//! Usage: `megascale_bench [objects disks [reps]]` (default `900 64 3`).
//! Runs the step-1 duel (direct KL vs multilevel coarsening) and the
//! search matrix (both partitioners × threads {1,2,4,8}), writes
//! `results/megascale_bench.json`, appends one observatory entry to the
//! repo-root `BENCH_search.json` history (see `dblayout benchdiff`), and
//! exits non-zero when any hard claim fails:
//!
//! * any configuration's layout or cost diverges from its partitioner's
//!   1-thread run (byte-identity across thread counts);
//! * at mega scale (≥ 600 objects) the multilevel cut falls below the
//!   direct cut (the cut saturates there, so parity is the expectation)
//!   or the multilevel partition is *less* balanced than the direct one;
//! * at mega scale (≥ 1500 objects) multilevel partitioning is not at
//!   least 2× faster than the direct KL pass.
//!
//! The end-to-end advised-cost ratio is printed and recorded but not
//! gated: step-2 greedy widening is path-dependent in its starting
//! layout, so equal-quality partitions can converge ~15% apart in either
//! direction (see EXPERIMENTS.md and DESIGN.md §11).

use std::process::ExitCode;

use dblayout_workloads::wkmega::MegaConfig;

fn main() -> ExitCode {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let objects = args.first().copied().unwrap_or(900);
    let disks = args.get(1).copied().unwrap_or(64);
    let reps = args.get(2).copied().unwrap_or(3);
    let cfg = MegaConfig::scaled(objects, disks, 0xE6A);
    let threads = vec![1usize, 2, 4, 8];

    println!("mega-scale bench: WK-MEGA {objects}x{disks}, both partitioners, threads 1/2/4/8");
    println!();
    let report = dblayout_bench::megascale::run_with(&cfg, &threads, reps);
    println!(
        "instance {} ({} statements), host parallelism {}",
        report.instance, report.statements, report.host_available_parallelism
    );
    println!(
        "step 1: direct KL {:.1} ms vs multilevel {:.1} ms -> {:.2}x (cut {:.0} vs {:.0}, \
         balance {:.2} vs {:.2})",
        report.partition.direct_ms,
        report.partition.multilevel_ms,
        report.partition.speedup,
        report.partition.direct_cut,
        report.partition.multilevel_cut,
        report.partition.direct_balance,
        report.partition.multilevel_balance
    );
    println!(
        "{:>12} {:>8} {:>12} {:>10} {:>12}",
        "partitioner", "threads", "best (ms)", "identical", "final cost"
    );
    for r in &report.rows {
        println!(
            "{:>12} {:>8} {:>12.2} {:>10} {:>12.2}",
            r.partitioner, r.threads, r.best_ms, r.identical_to_one_thread, r.final_cost
        );
    }
    println!();
    println!(
        "multilevel/direct advised-cost ratio: {:.5}",
        report.cost_ratio
    );
    dblayout_bench::write_json("megascale_bench", &report);

    // Observatory: the config fingerprint carries the instance name so
    // benchdiff compares mega entries only against mega entries, and the
    // timing metrics feed `--require-not-slower mega/t4,mega/t1`.
    let entry = dblayout_bench::observatory::HistoryEntry {
        rev: report.git_rev.clone(),
        config: format!(
            "workload={};reps={};threads=1,2,4,8;partitioners=multilevel,direct",
            report.instance, report.reps
        ),
        threads: threads.clone(),
        timings_ms: report
            .rows
            .iter()
            .map(|r| {
                let prefix = if r.partitioner == "multilevel" {
                    "mega"
                } else {
                    "mega-direct"
                };
                (format!("{prefix}/t{}", r.threads), r.best_ms)
            })
            .chain([
                (
                    "mega/direct-partition".to_string(),
                    report.partition.direct_ms,
                ),
                (
                    "mega/multilevel-partition".to_string(),
                    report.partition.multilevel_ms,
                ),
            ])
            .collect(),
        phases_ms: Vec::new(),
        counters: report.counters.clone(),
    };
    let history = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_search.json");
    match dblayout_bench::observatory::append_history(&history, &entry) {
        Ok(n) => eprintln!("(history appended to {} — {n} entries)", history.display()),
        Err(e) => eprintln!("warning: {e}"),
    }

    let mut failed = false;
    if !report.all_identical {
        eprintln!("error: search output diverged across thread counts");
        failed = true;
    }
    if report.objects >= 600 {
        if report.partition.multilevel_cut < report.partition.direct_cut * 0.999 {
            eprintln!(
                "error: multilevel cut {:.0} below direct cut {:.0} at mega scale",
                report.partition.multilevel_cut, report.partition.direct_cut
            );
            failed = true;
        }
        if report.partition.multilevel_balance > report.partition.direct_balance {
            eprintln!(
                "error: multilevel partition less balanced than direct ({:.2} vs {:.2})",
                report.partition.multilevel_balance, report.partition.direct_balance
            );
            failed = true;
        }
    }
    if report.objects >= 1500 && report.partition.speedup < 2.0 {
        eprintln!(
            "error: multilevel partitioning only {:.2}x faster than direct KL at mega scale",
            report.partition.speedup
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
