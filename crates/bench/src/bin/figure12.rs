//! Regenerates paper Figure 12: TS-GREEDY running time vs number of
//! database objects (TPCH1G-N with TPCH-88-N workloads; ratio to N=1,
//! paper sees ~40x at N=6).
//!
//! Usage: `figure12 [max_copies] [scale_factor]` (defaults 6 and 1.0).

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let sf: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let copies: Vec<usize> = (1..=max).collect();
    println!("Figure 12: TS-GREEDY running time vs #objects (TPCH1G-N, ratio to N=1)");
    println!();
    println!(
        "{:>3} {:>8} {:>14} {:>12} {:>12}",
        "N", "objects", "runtime (ms)", "ratio", "cost evals"
    );
    let rows = dblayout_bench::figure12::run_with(&copies, sf);
    for r in &rows {
        println!(
            "{:>3} {:>8} {:>14.1} {:>11.1}x {:>12}",
            r.n_copies, r.objects, r.runtime_ms, r.ratio_to_n1, r.cost_evaluations
        );
    }
    dblayout_bench::write_json("figure12", &rows);
}
