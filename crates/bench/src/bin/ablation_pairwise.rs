//! Ablation A4: value of the (pairwise) co-access information in the
//! access graph — real graph vs edgeless vs scrambled edges driving
//! TS-GREEDY's step 1.

fn main() {
    println!("Ablation A4: access-graph variants on TPCH-22");
    println!();
    println!("{:<32} {:>16}", "graph variant", "cost (ms)");
    let rows = dblayout_bench::ablations::run_a4();
    for r in &rows {
        println!("{:<32} {:>16.1}", r.graph_variant, r.cost_ms);
    }
    dblayout_bench::write_json("ablation_pairwise", &rows);
}
