//! WK-SCALE(N): advisor time vs workload size (Table 1's scaling axis).
//!
//! Usage: `wkscale [max_queries]` (default 3200).

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3200);
    let ns: Vec<usize> = dblayout_workloads::wkscale::WK_SCALE_SIZES
        .iter()
        .copied()
        .filter(|&n| n <= max)
        .collect();
    println!("WK-SCALE(N): advisor scaling with workload size");
    println!();
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "queries", "planning (ms)", "search (ms)", "improvement %"
    );
    let rows = dblayout_bench::wkscale_bench::run_with(&ns);
    for r in &rows {
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>14.1}",
            r.queries, r.planning_ms, r.search_ms, r.estimated_improvement_pct
        );
    }
    dblayout_bench::write_json("wkscale", &rows);
}
