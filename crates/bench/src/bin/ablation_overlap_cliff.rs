//! Ablation A5: the 0→1 co-location cost cliff (§6.2's local-minimum
//! discussion): sweeping the overlap between two co-accessed objects'
//! disk sets.

fn main() {
    println!("Ablation A5: cost vs overlap between two co-accessed objects (8 uniform disks)");
    println!();
    println!("{:>8} {:>16}", "overlap", "cost (ms)");
    let rows = dblayout_bench::ablations::run_a5();
    for r in &rows {
        println!("{:>8} {:>16.1}", r.overlap_disks, r.cost_ms);
    }
    dblayout_bench::write_json("ablation_overlap_cliff", &rows);
}
