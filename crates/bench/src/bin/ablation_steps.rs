//! Ablation A3: contribution of TS-GREEDY's two steps (step-1-only is the
//! pure-clustering strategy of Livny et al. [12] discussed in §8).

fn main() {
    println!("Ablation A3: step contributions on TPCH-22");
    println!();
    println!("{:<26} {:>16}", "strategy", "cost (ms)");
    let rows = dblayout_bench::ablations::run_a3();
    for r in &rows {
        println!("{:<26} {:>16.1}", r.strategy, r.cost_ms);
    }
    dblayout_bench::write_json("ablation_steps", &rows);
}
