//! Sequential-vs-parallel TS-GREEDY wall times on `tpch_mix.sql`.
//!
//! Usage: `search_bench [threads...]` (default `1 2 4 8`). Runs the
//! sequential full-re-evaluation baseline, then the incremental parallel
//! engine at each thread count, writes `results/search_bench.json`,
//! appends one observatory entry to the repo-root `BENCH_search.json`
//! history (see `dblayout benchdiff`), and exits non-zero if any
//! configuration's layout or cost diverges from the baseline — the
//! identity check the CI bench-smoke job enforces.

use std::process::ExitCode;

fn main() -> ExitCode {
    let threads: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let threads = if threads.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        threads
    };
    println!("search bench: sequential full re-evaluation vs incremental parallel (dblayout-par)");
    println!();
    let report = dblayout_bench::search_bench::run_with(&threads, 5);
    println!(
        "workload {} ({} statements), host parallelism {}",
        report.workload, report.statements, report.host_available_parallelism
    );
    println!(
        "{:>18} {:>8} {:>12} {:>9} {:>10}",
        "engine", "threads", "best (ms)", "speedup", "identical"
    );
    for r in &report.rows {
        println!(
            "{:>18} {:>8} {:>12.2} {:>8.2}x {:>10}",
            r.engine, r.threads, r.best_ms, r.speedup_vs_sequential_full, r.identical_to_baseline
        );
    }
    println!();
    println!(
        "migration plan (full striping -> recommendation): {} steps, {} blocks ({} MB), {:.0} ms model transfer",
        report.migration.steps,
        report.migration.total_moved_blocks,
        report.migration.total_moved_bytes / 1_048_576,
        report.migration.total_step_ms
    );
    dblayout_bench::write_json("search_bench", &report);

    // Observatory: append this run to the repo-root history. The config
    // fingerprint gates benchdiff's exact counter comparison, so it must
    // capture everything the deterministic counters depend on.
    let entry = dblayout_bench::observatory::HistoryEntry {
        rev: report.git_rev.clone(),
        config: format!(
            "workload=tpch_mix;reps={};threads={}",
            report.reps,
            threads
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
        threads: threads.clone(),
        timings_ms: report
            .rows
            .iter()
            .map(|r| (format!("{}/t{}", r.engine, r.threads), r.best_ms))
            .collect(),
        phases_ms: report
            .phases
            .iter()
            .map(|p| (p.phase.clone(), p.total_ms))
            .collect(),
        counters: report
            .counters
            .iter()
            .map(|c| (c.name.clone(), c.value))
            .collect(),
    };
    let history = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_search.json");
    match dblayout_bench::observatory::append_history(&history, &entry) {
        Ok(n) => eprintln!("(history appended to {} — {n} entries)", history.display()),
        Err(e) => eprintln!("warning: {e}"),
    }

    if report.all_identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: parallel search output diverged from the sequential baseline");
        ExitCode::FAILURE
    }
}
