//! Sequential-vs-parallel TS-GREEDY wall times on `tpch_mix.sql`.
//!
//! Usage: `search_bench [threads...]` (default `1 2 4 8`). Runs the
//! sequential full-re-evaluation baseline, then the incremental parallel
//! engine at each thread count, writes `results/search_bench.json`, and
//! exits non-zero if any configuration's layout or cost diverges from the
//! baseline — the identity check the CI bench-smoke job enforces.

use std::process::ExitCode;

fn main() -> ExitCode {
    let threads: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let threads = if threads.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        threads
    };
    println!("search bench: sequential full re-evaluation vs incremental parallel (dblayout-par)");
    println!();
    let report = dblayout_bench::search_bench::run_with(&threads, 5);
    println!(
        "workload {} ({} statements), host parallelism {}",
        report.workload, report.statements, report.host_available_parallelism
    );
    println!(
        "{:>18} {:>8} {:>12} {:>9} {:>10}",
        "engine", "threads", "best (ms)", "speedup", "identical"
    );
    for r in &report.rows {
        println!(
            "{:>18} {:>8} {:>12.2} {:>8.2}x {:>10}",
            r.engine, r.threads, r.best_ms, r.speedup_vs_sequential_full, r.identical_to_baseline
        );
    }
    dblayout_bench::write_json("search_bench", &report);
    if report.all_identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: parallel search output diverged from the sequential baseline");
        ExitCode::FAILURE
    }
}
