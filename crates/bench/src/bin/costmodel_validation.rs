//! Regenerates the cost-model ordering validation of §7.2 (the "82% of
//! these cases" claim): 10 layouts x 8 workloads, pairwise order agreement
//! between estimated cost and simulated execution.

fn main() {
    println!("Cost-model validation: layout-pair ordering agreement (paper: 82% overall)");
    println!();
    println!(
        "{:<12} {:>6} {:>10} {:>10}",
        "Workload", "pairs", "agree", "percent"
    );
    let result = dblayout_bench::costmodel_validation::run();
    for r in &result.rows {
        println!(
            "{:<12} {:>6} {:>10} {:>9.1}%",
            r.workload, r.pairs, r.agreements, r.agreement_pct
        );
    }
    println!();
    println!("OVERALL agreement: {:.1}%", result.overall_agreement_pct);
    dblayout_bench::write_json("costmodel_validation", &result);
}
