//! Regenerates paper Table 2 (and Example 1's Q3/Q10 numbers).

fn main() {
    println!("Table 2: improvement of the lineitem(5)/orders(3) split layout over FULL STRIPING");
    println!("(paper: Q3 44%/54%, Q9 30%/40%, Q10 36%/51%, Q12 32%/55%, Q18 16%/31%, Q21 40%/9%, TPCH-22 25%/20%)");
    println!();
    println!(
        "{:<10} {:>22} {:>24}",
        "Queries", "Execution Improvement", "Estimated Improvement"
    );
    let rows = dblayout_bench::table2::run();
    for r in &rows {
        println!(
            "{:<10} {:>21.0}% {:>23.0}%",
            r.label, r.actual_improvement_pct, r.estimated_improvement_pct
        );
    }
    dblayout_bench::write_json("table2", &rows);
}
