//! Ablation A2: TS-GREEDY vs exhaustive enumeration on random small
//! instances — the optimality gap behind §6.2's "comparable to exhaustive
//! enumeration in most cases".

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    println!("Ablation A2: TS-GREEDY vs exhaustive on {trials} random 4-object/3-disk instances");
    println!();
    println!(
        "{:>5} {:>14} {:>14} {:>8}",
        "seed", "greedy (ms)", "optimal (ms)", "gap"
    );
    let rows = dblayout_bench::ablations::run_a2(trials);
    let mut optimal_hits = 0;
    for r in &rows {
        if r.gap_ratio < 1.0 + 1e-9 {
            optimal_hits += 1;
        }
        println!(
            "{:>5} {:>14.2} {:>14.2} {:>7.3}x",
            r.seed, r.greedy_cost_ms, r.optimal_cost_ms, r.gap_ratio
        );
    }
    let worst = rows.iter().map(|r| r.gap_ratio).fold(1.0f64, f64::max);
    println!();
    println!(
        "optimal in {optimal_hits}/{} trials; worst gap {worst:.3}x",
        rows.len()
    );
    dblayout_bench::write_json("ablation_exhaustive", &rows);
}
