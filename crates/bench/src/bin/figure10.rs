//! Regenerates paper Figure 10: estimated improvement of TS-GREEDY over
//! FULL STRIPING per workload.

fn main() {
    println!("Figure 10: TS-GREEDY vs FULL STRIPING, estimated % improvement");
    println!("(paper: WK-CTRL1 >25%, WK-CTRL2 >25%, TPCH-22 ~20% est / ~25% actual, SALES-45 ~38%, APB-800 ~0%)");
    println!();
    println!(
        "{:<10} {:>14} {:>14} {:>11}",
        "Workload", "estimated %", "actual %", "iterations"
    );
    let rows = dblayout_bench::figure10::run();
    for r in &rows {
        let actual = r
            .actual_improvement_pct
            .map(|a| format!("{a:.1}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<10} {:>14.1} {:>14} {:>11}",
            r.workload, r.estimated_improvement_pct, actual, r.iterations
        );
    }
    dblayout_bench::write_json("figure10", &rows);
}
