//! Runs every experiment end to end (quick-scale variants for the
//! scalability sweeps) and writes all JSON artifacts under `results/`.
//!
//! Usage: `all_experiments [--full]` — `--full` runs Figure 11 to 64 disks
//! and Figure 12 to N=6 at SF 1.0 (several minutes).

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    println!("=== Table 2 ===");
    let t2 = dblayout_bench::table2::run();
    for r in &t2 {
        println!(
            "{:<10} actual {:>5.1}%   estimated {:>5.1}%",
            r.label, r.actual_improvement_pct, r.estimated_improvement_pct
        );
    }
    dblayout_bench::write_json("table2", &t2);

    println!("\n=== Cost-model validation ===");
    let cv = dblayout_bench::costmodel_validation::run();
    for r in &cv.rows {
        println!("{:<12} {:>5.1}%", r.workload, r.agreement_pct);
    }
    println!("overall: {:.1}%", cv.overall_agreement_pct);
    dblayout_bench::write_json("costmodel_validation", &cv);

    println!("\n=== Figure 10 ===");
    let f10 = dblayout_bench::figure10::run();
    for r in &f10 {
        println!(
            "{:<10} est {:>5.1}%  actual {}",
            r.workload,
            r.estimated_improvement_pct,
            r.actual_improvement_pct
                .map(|a| format!("{a:.1}%"))
                .unwrap_or_else(|| "-".into())
        );
    }
    dblayout_bench::write_json("figure10", &f10);

    println!("\n=== Figure 11 ===");
    let counts: &[usize] = if full {
        &[4, 8, 16, 32, 64]
    } else {
        &[4, 8, 16]
    };
    let f11 = dblayout_bench::figure11::run_with_counts(counts);
    for r in &f11 {
        println!(
            "{:<10} m={:<3} {:>10.1} ms  ({:.1}x)",
            r.workload, r.disks, r.runtime_ms, r.ratio_to_4_disks
        );
    }
    dblayout_bench::write_json("figure11", &f11);

    println!("\n=== Figure 12 ===");
    let (copies, sf): (Vec<usize>, f64) = if full {
        ((1..=6).collect(), 1.0)
    } else {
        ((1..=3).collect(), 0.2)
    };
    let f12 = dblayout_bench::figure12::run_with(&copies, sf);
    for r in &f12 {
        println!(
            "N={} ({} objects) {:>10.1} ms  ({:.1}x)",
            r.n_copies, r.objects, r.runtime_ms, r.ratio_to_n1
        );
    }
    dblayout_bench::write_json("figure12", &f12);

    println!("\n=== Ablations ===");
    dblayout_bench::write_json("ablation_k", &dblayout_bench::ablations::run_a1());
    dblayout_bench::write_json(
        "ablation_exhaustive",
        &dblayout_bench::ablations::run_a2(25),
    );
    dblayout_bench::write_json("ablation_steps", &dblayout_bench::ablations::run_a3());
    dblayout_bench::write_json("ablation_pairwise", &dblayout_bench::ablations::run_a4());
    dblayout_bench::write_json(
        "ablation_overlap_cliff",
        &dblayout_bench::ablations::run_a5(),
    );
    println!("done; JSON under results/");
}
