//! Ablation A1: the greedy step width k (paper claims k = 1 already
//! matches exhaustive enumeration in most cases).

fn main() {
    println!("Ablation A1: TS-GREEDY greedy step width k on TPCH-22");
    println!();
    println!(
        "{:>3} {:>16} {:>14} {:>12}",
        "k", "final cost (ms)", "runtime (ms)", "cost evals"
    );
    let rows = dblayout_bench::ablations::run_a1();
    for r in &rows {
        println!(
            "{:>3} {:>16.1} {:>14.1} {:>12}",
            r.k, r.final_cost_ms, r.runtime_ms, r.cost_evaluations
        );
    }
    dblayout_bench::write_json("ablation_k", &rows);
}
