//! Regenerates paper Figure 11: TS-GREEDY running time vs number of disks
//! (ratios to the 4-disk run; paper sees slightly more than quadratic,
//! about 6x per doubling).
//!
//! Usage: `figure11 [max_disks]` (default 64; pass 16/32 for a quick run).

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let counts: Vec<usize> = dblayout_bench::figure11::DISK_COUNTS
        .iter()
        .copied()
        .filter(|&m| m <= max)
        .collect();
    println!("Figure 11: TS-GREEDY running time vs #disks (ratio to 4 disks)");
    println!();
    println!(
        "{:<10} {:>6} {:>14} {:>12} {:>12}",
        "Workload", "disks", "runtime (ms)", "ratio", "cost evals"
    );
    let rows = dblayout_bench::figure11::run_with_counts(&counts);
    for r in &rows {
        println!(
            "{:<10} {:>6} {:>14.1} {:>11.1}x {:>12}",
            r.workload, r.disks, r.runtime_ms, r.ratio_to_4_disks, r.cost_evaluations
        );
    }
    dblayout_bench::write_json("figure11", &rows);
}
