//! Extension: concurrency-aware workload modeling (paper §2.2/§9).

fn main() {
    println!("Concurrency extension: layouts for a concurrent scan mix");
    println!();
    println!(
        "{:<32} {:>18} {:>12}",
        "workload model", "mix elapsed (ms)", "disk sets"
    );
    let rows = dblayout_bench::extension_concurrency::run();
    for r in &rows {
        println!(
            "{:<32} {:>18.0} {:>12}",
            r.model, r.concurrent_elapsed_ms, r.distinct_disk_sets
        );
    }
    dblayout_bench::write_json("extension_concurrency", &rows);
}
