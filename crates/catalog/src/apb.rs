//! APB-like catalog (paper §7.1 database (2)).
//!
//! The paper used the OLAP Council's APB-1 benchmark database: ~250 MB, 40
//! tables. The structural property that matters for layout (reported in
//! §7.2: "the database has two large tables and several small tables;
//! however no queries co-access the two large tables") is a star schema with
//! two independent fact tables — sales history and inventory history — each
//! joined only against small dimension tables. We reproduce that shape with
//! scaled cardinalities summing to ≈250 MB.

use crate::catalog::Catalog;
use crate::types::{ColType, Column, Table};

/// Number of tables in the APB-like catalog.
pub const APB_TABLE_COUNT: usize = 40;

/// Builds the 40-table APB-like catalog (~250 MB).
pub fn apb_catalog() -> Catalog {
    let mut c = Catalog::new();

    // Two large, never co-accessed fact tables (~100 MB each).
    c.add_table(fact("sales_fact", 1_100_000, 96));
    c.add_table(fact("inventory_fact", 1_000_000, 104));

    // Core dimensions.
    for (name, rows, width) in [
        ("product_dim", 9_000, 120),
        ("customer_dim", 9_000, 140),
        ("channel_dim", 9, 80),
        ("time_dim", 24, 60),
    ] {
        c.add_table(dim(name, rows, width));
    }

    // Hierarchy / aggregate level tables to reach 40 tables, all small.
    for i in 1..=34 {
        let rows = 50 + (i as u64 * 137) % 2_000;
        c.add_table(dim(&format!("level_{i:02}"), rows, 64));
    }

    assert_eq!(c.tables().len(), APB_TABLE_COUNT);
    c
}

fn fact(name: &str, rows: u64, width: u32) -> Table {
    Table {
        name: name.into(),
        columns: vec![
            Column::new("product_key", ColType::Int, 9_000),
            Column::new("customer_key", ColType::Int, 9_000),
            Column::new("channel_key", ColType::Int, 9),
            Column::with_range("time_key", ColType::Int, 24, 1.0, 24.0),
            Column::with_range("units", ColType::Int, 1_000, 0.0, 1_000.0),
            Column::with_range("dollars", ColType::Float, rows / 10, 0.0, 100_000.0),
        ],
        row_count: rows,
        row_bytes: width,
        clustered_on: vec!["time_key".into()],
    }
}

fn dim(name: &str, rows: u64, width: u32) -> Table {
    Table {
        name: name.into(),
        columns: vec![
            Column::with_range("key", ColType::Int, rows, 1.0, rows as f64),
            Column::new("label", ColType::Str(30), rows),
            Column::new("parent_key", ColType::Int, (rows / 10).max(1)),
        ],
        row_count: rows,
        row_bytes: width,
        clustered_on: vec!["key".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BLOCK_BYTES;

    #[test]
    fn forty_tables() {
        let c = apb_catalog();
        assert_eq!(c.tables().len(), 40);
    }

    #[test]
    fn size_about_250mb() {
        let c = apb_catalog();
        let mb = (c.total_blocks() * BLOCK_BYTES) as f64 / 1e6;
        assert!((180.0..330.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn two_dominant_fact_tables() {
        let c = apb_catalog();
        let sales = c
            .table("sales_fact")
            .expect("APB catalog is missing table `sales_fact`")
            .size_blocks();
        let inv = c
            .table("inventory_fact")
            .expect("APB catalog is missing table `inventory_fact`")
            .size_blocks();
        let biggest_dim = c
            .tables()
            .iter()
            .filter(|t| !t.name.ends_with("_fact"))
            .map(|t| t.size_blocks())
            .max()
            .unwrap();
        assert!(sales > 20 * biggest_dim);
        assert!(inv > 20 * biggest_dim);
    }
}
