//! The [`Catalog`] container.

use std::collections::HashMap;

use crate::types::{Index, MaterializedView, ObjectId, ObjectKind, ObjectMeta, Table};

/// A database catalog: the set of objects `{R_1, …, R_n}` the advisor lays
/// out, with the statistics the planner needs.
///
/// Objects get dense [`ObjectId`]s in insertion order; lookups are
/// case-insensitive on names, like SQL Server's default collation.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    indexes: Vec<Index>,
    views: Vec<MaterializedView>,
    /// name (lowercased) -> object id
    by_name: HashMap<String, ObjectId>,
    /// object id -> (kind, index into the per-kind vec)
    slots: Vec<(ObjectKind, usize)>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, name: &str, kind: ObjectKind, slot: usize) -> ObjectId {
        let id = ObjectId(self.slots.len() as u32);
        let key = name.to_ascii_lowercase();
        assert!(
            self.by_name.insert(key, id).is_none(),
            "duplicate object name `{name}`"
        );
        self.slots.push((kind, slot));
        id
    }

    /// Adds a table, returning its object id.
    ///
    /// # Panics
    /// Panics if an object with the same (case-insensitive) name exists.
    pub fn add_table(&mut self, table: Table) -> ObjectId {
        let slot = self.tables.len();
        let id = self.register(&table.name.clone(), ObjectKind::Table, slot);
        self.tables.push(table);
        id
    }

    /// Adds a nonclustered index, returning its object id.
    ///
    /// # Panics
    /// Panics if the name collides or the indexed table does not exist.
    pub fn add_index(&mut self, index: Index) -> ObjectId {
        assert!(
            self.table(&index.table).is_some(),
            "index `{}` references unknown table `{}`",
            index.name,
            index.table
        );
        let slot = self.indexes.len();
        let id = self.register(&index.name.clone(), ObjectKind::Index, slot);
        self.indexes.push(index);
        id
    }

    /// Adds a materialized view, returning its object id.
    pub fn add_view(&mut self, view: MaterializedView) -> ObjectId {
        let slot = self.views.len();
        let id = self.register(&view.name.clone(), ObjectKind::MaterializedView, slot);
        self.views.push(view);
        id
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.slots.len()
    }

    /// Case-insensitive object lookup by name.
    pub fn object_id(&self, name: &str) -> Option<ObjectId> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Table lookup by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        match self.object_id(name) {
            Some(id) => match self.slots[id.index()] {
                (ObjectKind::Table, slot) => Some(&self.tables[slot]),
                _ => None,
            },
            None => None,
        }
    }

    /// Index lookup by name.
    pub fn index(&self, name: &str) -> Option<&Index> {
        match self.object_id(name) {
            Some(id) => match self.slots[id.index()] {
                (ObjectKind::Index, slot) => Some(&self.indexes[slot]),
                _ => None,
            },
            None => None,
        }
    }

    /// Materialized-view lookup by name.
    pub fn view(&self, name: &str) -> Option<&MaterializedView> {
        match self.object_id(name) {
            Some(id) => match self.slots[id.index()] {
                (ObjectKind::MaterializedView, slot) => Some(&self.views[slot]),
                _ => None,
            },
            None => None,
        }
    }

    /// All nonclustered indexes defined on `table`.
    pub fn indexes_on(&self, table: &str) -> impl Iterator<Item = &Index> {
        let table = table.to_ascii_lowercase();
        self.indexes
            .iter()
            .filter(move |i| i.table.to_ascii_lowercase() == table)
    }

    /// Metadata for one object.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn meta(&self, id: ObjectId) -> ObjectMeta {
        let (kind, slot) = self.slots[id.index()];
        let (name, size_blocks) = match kind {
            ObjectKind::Table => {
                let t = &self.tables[slot];
                (t.name.clone(), t.size_blocks())
            }
            ObjectKind::Index => {
                let i = &self.indexes[slot];
                (i.name.clone(), i.size_blocks())
            }
            ObjectKind::MaterializedView => {
                let v = &self.views[slot];
                (v.name.clone(), v.size_blocks())
            }
            ObjectKind::Temp => unreachable!("temp objects are not stored in the catalog"),
        };
        ObjectMeta {
            id,
            name,
            kind,
            size_blocks,
        }
    }

    /// Metadata for every object, ordered by id.
    pub fn objects(&self) -> Vec<ObjectMeta> {
        (0..self.slots.len())
            .map(|i| self.meta(ObjectId(i as u32)))
            .collect()
    }

    /// All tables, in insertion order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// All indexes, in insertion order.
    pub fn all_indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Total database size in blocks.
    pub fn total_blocks(&self) -> u64 {
        self.objects().iter().map(|o| o.size_blocks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ColType, Column};

    fn table(name: &str, rows: u64) -> Table {
        Table {
            name: name.into(),
            columns: vec![Column::new("k", ColType::Int, rows)],
            row_count: rows,
            row_bytes: 100,
            clustered_on: vec!["k".into()],
        }
    }

    #[test]
    fn ids_are_dense_insertion_order() {
        let mut c = Catalog::new();
        let a = c.add_table(table("a", 10));
        let b = c.add_table(table("b", 10));
        assert_eq!(a, ObjectId(0));
        assert_eq!(b, ObjectId(1));
        assert_eq!(c.object_count(), 2);
    }

    #[test]
    fn lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.add_table(table("LineItem", 10));
        assert!(c.table("lineitem").is_some());
        assert_eq!(c.object_id("LINEITEM"), Some(ObjectId(0)));
    }

    #[test]
    #[should_panic(expected = "duplicate object name")]
    fn duplicate_name_panics() {
        let mut c = Catalog::new();
        c.add_table(table("a", 10));
        c.add_table(table("A", 10));
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn index_on_missing_table_panics() {
        let mut c = Catalog::new();
        c.add_index(Index {
            name: "i".into(),
            table: "ghost".into(),
            key_columns: vec!["k".into()],
            entry_bytes: 16,
            row_count: 10,
        });
    }

    #[test]
    fn meta_reports_size() {
        let mut c = Catalog::new();
        let id = c.add_table(table("a", 100_000));
        let m = c.meta(id);
        assert_eq!(m.kind, ObjectKind::Table);
        assert!(m.size_blocks > 0);
        assert_eq!(m.name, "a");
    }

    #[test]
    fn indexes_on_filters_by_table() {
        let mut c = Catalog::new();
        c.add_table(table("a", 10));
        c.add_table(table("b", 10));
        c.add_index(Index {
            name: "ia".into(),
            table: "a".into(),
            key_columns: vec!["k".into()],
            entry_bytes: 16,
            row_count: 10,
        });
        assert_eq!(c.indexes_on("a").count(), 1);
        assert_eq!(c.indexes_on("b").count(), 0);
    }

    #[test]
    fn mixed_kinds_share_id_space() {
        let mut c = Catalog::new();
        c.add_table(table("a", 10));
        c.add_index(Index {
            name: "ia".into(),
            table: "a".into(),
            key_columns: vec!["k".into()],
            entry_bytes: 16,
            row_count: 10,
        });
        c.add_view(MaterializedView {
            name: "v".into(),
            source_tables: vec!["a".into()],
            row_count: 5,
            row_bytes: 50,
        });
        let objs = c.objects();
        assert_eq!(objs.len(), 3);
        assert_eq!(objs[1].kind, ObjectKind::Index);
        assert_eq!(objs[2].kind, ObjectKind::MaterializedView);
        assert!(c.total_blocks() >= 3);
    }
}
