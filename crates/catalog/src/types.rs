//! Schema object model and statistics.

use crate::blocks::blocks_for_rows;

/// Identifier of a database object (table, index or materialized view)
/// within one [`crate::Catalog`]. Object ids are dense (`0..n`) so advisor
/// layouts can be indexed by them directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Column data types (only what selectivity estimation needs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Fixed/variable character data with the given average length.
    Str(u16),
    /// Calendar date.
    Date,
}

impl ColType {
    /// Average stored width in bytes.
    pub fn avg_width(self) -> u32 {
        match self {
            ColType::Int => 8,
            ColType::Float => 8,
            ColType::Str(n) => n as u32,
            ColType::Date => 4,
        }
    }
}

/// Optimizer statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub distinct_count: u64,
    /// Minimum value on a common numeric scale (dates use day ordinals).
    pub min: f64,
    /// Maximum value on the same scale.
    pub max: f64,
}

impl ColumnStats {
    /// Uniform stats over `[0, distinct)`.
    pub fn uniform(distinct_count: u64) -> Self {
        Self {
            distinct_count: distinct_count.max(1),
            min: 0.0,
            max: distinct_count.max(1) as f64,
        }
    }
}

/// A table column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (unique within the table, case-insensitive).
    pub name: String,
    /// Data type.
    pub col_type: ColType,
    /// Statistics.
    pub stats: ColumnStats,
}

impl Column {
    /// Builds a column with uniform stats.
    pub fn new(name: &str, col_type: ColType, distinct_count: u64) -> Self {
        Self {
            name: name.to_string(),
            col_type,
            stats: ColumnStats::uniform(distinct_count),
        }
    }

    /// Builds a column with explicit min/max range stats.
    pub fn with_range(
        name: &str,
        col_type: ColType,
        distinct_count: u64,
        min: f64,
        max: f64,
    ) -> Self {
        Self {
            name: name.to_string(),
            col_type,
            stats: ColumnStats {
                distinct_count: distinct_count.max(1),
                min,
                max,
            },
        }
    }
}

/// A base table.
///
/// If `clustered_on` is non-empty the table's heap is physically ordered by
/// those columns (SQL Server clustered index); the row data itself *is* the
/// index leaf level, so no separate object exists for a clustered index.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Row count.
    pub row_count: u64,
    /// Average row width in bytes (sum of column widths plus overhead).
    pub row_bytes: u32,
    /// Columns the heap is physically sorted by (clustered index keys).
    pub clustered_on: Vec<String>,
}

impl Table {
    /// Size of the table in allocation blocks.
    pub fn size_blocks(&self) -> u64 {
        blocks_for_rows(self.row_count, self.row_bytes)
    }

    /// Case-insensitive column lookup.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// True if the heap is physically ordered with `col` as the leading key.
    pub fn is_clustered_on(&self, col: &str) -> bool {
        self.clustered_on
            .first()
            .is_some_and(|c| c.eq_ignore_ascii_case(col))
    }
}

/// A nonclustered secondary index.
///
/// The leaf level stores key columns plus a row locator; an *index seek*
/// touches `O(matching keys)` index blocks and, unless the index covers the
/// query, one random table lookup per matching row (paper Example 4).
#[derive(Debug, Clone, PartialEq)]
pub struct Index {
    /// Index name.
    pub name: String,
    /// Indexed table name.
    pub table: String,
    /// Key columns, leading column first.
    pub key_columns: Vec<String>,
    /// Leaf entry width in bytes (keys + row locator).
    pub entry_bytes: u32,
    /// Number of leaf entries (= table row count).
    pub row_count: u64,
}

impl Index {
    /// Size of the index leaf level in blocks (upper levels are <1% and
    /// ignored, as in most optimizer cost models).
    pub fn size_blocks(&self) -> u64 {
        blocks_for_rows(self.row_count, self.entry_bytes)
    }
}

/// A materialized view: precomputed result treated as a read-mostly object.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedView {
    /// View name.
    pub name: String,
    /// Tables the view definition references.
    pub source_tables: Vec<String>,
    /// Materialized row count.
    pub row_count: u64,
    /// Average materialized row width.
    pub row_bytes: u32,
}

impl MaterializedView {
    /// Size in blocks.
    pub fn size_blocks(&self) -> u64 {
        blocks_for_rows(self.row_count, self.row_bytes)
    }
}

/// What kind of object an [`ObjectId`] denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// A base table (heap or clustered).
    Table,
    /// A nonclustered index.
    Index,
    /// A materialized view.
    MaterializedView,
    /// A temporary object (sort run / hash spill in tempdb, paper §2.1 end).
    Temp,
}

/// Uniform metadata the advisor needs about any object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectMeta {
    /// The object's id.
    pub id: ObjectId,
    /// Object name (unique across the catalog).
    pub name: String,
    /// What it is.
    pub kind: ObjectKind,
    /// Total size in allocation blocks.
    pub size_blocks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> Table {
        Table {
            name: "t".into(),
            columns: vec![
                Column::new("a", ColType::Int, 100),
                Column::new("b", ColType::Str(20), 50),
            ],
            row_count: 1000,
            row_bytes: 36,
            clustered_on: vec!["a".into()],
        }
    }

    #[test]
    fn table_size_blocks_positive() {
        assert!(small_table().size_blocks() >= 1);
    }

    #[test]
    fn column_lookup_case_insensitive() {
        let t = small_table();
        assert!(t.column("A").is_some());
        assert!(t.column("B").is_some());
        assert!(t.column("z").is_none());
    }

    #[test]
    fn clustered_check_uses_leading_key() {
        let t = small_table();
        assert!(t.is_clustered_on("a"));
        assert!(t.is_clustered_on("A"));
        assert!(!t.is_clustered_on("b"));
    }

    #[test]
    fn index_smaller_than_table_for_narrow_keys() {
        let idx = Index {
            name: "i".into(),
            table: "t".into(),
            key_columns: vec!["a".into()],
            entry_bytes: 16,
            row_count: 1_000_000,
        };
        let t = Table {
            row_count: 1_000_000,
            row_bytes: 128,
            ..small_table()
        };
        assert!(idx.size_blocks() < t.size_blocks());
    }

    #[test]
    fn uniform_stats_clamp_zero_distinct() {
        let s = ColumnStats::uniform(0);
        assert_eq!(s.distinct_count, 1);
    }

    #[test]
    fn coltype_widths() {
        assert_eq!(ColType::Int.avg_width(), 8);
        assert_eq!(ColType::Str(25).avg_width(), 25);
        assert_eq!(ColType::Date.avg_width(), 4);
    }
}
