#![warn(missing_docs)]

//! Database catalog substrate: schema objects and optimizer statistics.
//!
//! The ICDE 2003 layout advisor treats a database as "a set of tables and
//! physical design structures defined on the tables" (paper §2.1): tables,
//! indexes and materialized views are all *objects* `R_1 … R_n` whose sizes
//! (in blocks) and access statistics drive both the query optimizer's plans
//! and the layout cost model. This crate provides:
//!
//! * the object model ([`Table`], [`Index`], [`MaterializedView`]) with the
//!   per-column statistics (`row_count`, NDV, min/max) that the planner's
//!   selectivity estimation needs;
//! * block-size arithmetic matching SQL Server 2000's allocation granularity
//!   (8 KB pages, 8-page = 64 KB blocks — paper §2.1);
//! * a [`Catalog`] container assigning each object a stable [`ObjectId`]
//!   shared by the planner, the disk simulator and the advisor;
//! * builders for the evaluation databases: TPC-H at any scale factor
//!   ([`tpch::tpch_catalog`]), the APB-like 40-table star database
//!   ([`apb::apb_catalog`]), the SALES-like 50-table database
//!   ([`sales::sales_catalog`]), and the TPCH1G-N replication of §7.2
//!   ([`tpch::replicate_tpch`]).

pub mod apb;
pub mod blocks;
pub mod catalog;
pub mod resolve;
pub mod sales;
pub mod tpch;
pub mod types;

pub use blocks::{blocks_for_bytes, blocks_for_rows, BLOCK_BYTES, PAGES_PER_BLOCK, PAGE_BYTES};
pub use catalog::Catalog;
pub use resolve::resolve_catalog;
pub use types::{
    ColType, Column, ColumnStats, Index, MaterializedView, ObjectId, ObjectKind, ObjectMeta, Table,
};
