//! SALES-like catalog (paper §7.1 database (3)).
//!
//! The paper's SALES database is an internal Microsoft database: ~5 GB, 50
//! tables, whose workload SALES-45 joins "the two largest tables in the
//! database ... in almost all the queries" and references 8 tables per query
//! on average. We reproduce that shape: two dominant tables (`order_header`
//! and `order_detail`, ~1.7 GB each) co-joined everywhere, a tier of
//! mid-size tables, and a tail of small reference tables.

use crate::catalog::Catalog;
use crate::types::{ColType, Column, Table};

/// Number of tables in the SALES-like catalog.
pub const SALES_TABLE_COUNT: usize = 50;

/// Builds the 50-table SALES-like catalog (~5 GB).
pub fn sales_catalog() -> Catalog {
    let mut c = Catalog::new();

    // The two dominant, always co-joined tables. The detail table is
    // clustered by order (`order_id`) — the physical design that makes the
    // ubiquitous header ⋈ detail join a pipelined merge join, which is what
    // drives the paper's 38% improvement on this database.
    c.add_table(big("order_header", 12_000_000, 140, "id"));
    c.add_table(big("order_detail", 16_000_000, 110, "order_id"));

    // Mid-size operational tables (~100-400 MB each), clustered on their
    // own primary keys — their joins against the order pipeline build hash
    // tables (blocking), so only the header ⋈ detail merge co-accesses the
    // two giants, matching the paper's account of this database.
    for (name, rows, width) in [
        ("shipment", 3_000_000, 90),
        ("invoice", 2_500_000, 100),
        ("payment", 2_000_000, 80),
        ("product", 800_000, 160),
        ("account", 600_000, 150),
        ("contact", 900_000, 130),
    ] {
        c.add_table(big(name, rows, width, "id"));
    }

    // Small reference / lookup tables to reach 50. Each covers the full
    // `status_code` domain (NDV 2000), so code lookups preserve cardinality
    // like real FK joins.
    for i in 1..=42 {
        let rows = 2_000 + (i as u64 * 311) % 18_000;
        c.add_table(Table {
            name: format!("ref_{i:02}"),
            columns: vec![
                Column::with_range("id", ColType::Int, rows, 1.0, rows as f64),
                Column::new("name", ColType::Str(40), rows),
            ],
            row_count: rows,
            row_bytes: 60,
            clustered_on: vec!["id".into()],
        });
    }

    assert_eq!(c.tables().len(), SALES_TABLE_COUNT);
    c
}

fn big(name: &str, rows: u64, width: u32, clustered_key: &str) -> Table {
    Table {
        name: name.into(),
        columns: vec![
            Column::with_range("id", ColType::Int, rows, 1.0, rows as f64),
            Column::with_range("order_id", ColType::Int, rows / 2, 1.0, rows as f64),
            Column::new("account_id", ColType::Int, 600_000),
            Column::new("product_id", ColType::Int, 800_000),
            Column::with_range(
                "created",
                ColType::Date,
                2_000,
                crate::tpch::date_ord(1998, 1, 1),
                crate::tpch::date_ord(2002, 12, 31),
            ),
            Column::with_range("amount", ColType::Float, rows / 5, 0.0, 1e6),
            Column::new("status", ColType::Str(12), 8),
            // Low-cardinality code joined against the ref_* lookup tables.
            Column::new("status_code", ColType::Int, 2_000),
        ],
        row_count: rows,
        row_bytes: width,
        clustered_on: vec![clustered_key.into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BLOCK_BYTES;

    #[test]
    fn fifty_tables() {
        assert_eq!(sales_catalog().tables().len(), 50);
    }

    #[test]
    fn size_about_5gb() {
        let c = sales_catalog();
        let gb = (c.total_blocks() * BLOCK_BYTES) as f64 / 1e9;
        assert!((3.5..6.5).contains(&gb), "got {gb} GB");
    }

    #[test]
    fn order_tables_dominate() {
        let c = sales_catalog();
        let header = c
            .table("order_header")
            .expect("SALES catalog is missing table `order_header`")
            .size_blocks();
        let detail = c
            .table("order_detail")
            .expect("SALES catalog is missing table `order_detail`")
            .size_blocks();
        let third = c
            .tables()
            .iter()
            .filter(|t| t.name != "order_header" && t.name != "order_detail")
            .map(|t| t.size_blocks())
            .max()
            .unwrap();
        assert!(header > 3 * third);
        assert!(detail > 3 * third);
    }
}
