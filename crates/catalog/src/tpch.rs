//! TPC-H catalog builder with scale-factor-accurate statistics.
//!
//! Table cardinalities and column domains follow the TPC-H specification the
//! paper evaluates against (TPCH1G = scale factor 1). Only statistics are
//! materialized — the advisor never reads data.
//!
//! Also provides [`replicate_tpch`], the TPCH1G-N database of §7.2 used for
//! the Figure 12 scalability experiment: N copies of every TPC-H table (and
//! its indexes), suffixed `_1 … _N`.

use crate::catalog::Catalog;
use crate::types::{ColType, Column, Index, Table};

/// Day ordinal for `y-m-d` on the same scale as
/// `dblayout_sql::ast::parse_date_ordinal` (days since 1900 with 372-day
/// years / 31-day months; only ordering matters).
pub fn date_ord(y: i64, m: i64, d: i64) -> f64 {
    ((y - 1900) * 372 + (m - 1) * 31 + (d - 1)) as f64
}

/// Lowest date in the TPC-H data set (1992-01-01).
pub fn tpch_date_min() -> f64 {
    date_ord(1992, 1, 1)
}

/// Highest date in the TPC-H data set (1998-12-31).
pub fn tpch_date_max() -> f64 {
    date_ord(1998, 12, 31)
}

fn scale(base: u64, sf: f64) -> u64 {
    ((base as f64) * sf).round().max(1.0) as u64
}

/// Builds the eight-table TPC-H catalog at scale factor `sf` (1.0 = 1 GB),
/// with clustered primary keys and the nonclustered indexes used by the
/// paper's workloads (date and segment selections).
pub fn tpch_catalog(sf: f64) -> Catalog {
    let mut c = Catalog::new();
    add_tpch_tables(&mut c, sf, "");
    c
}

/// TPCH1G-N: `n` complete copies of the TPC-H tables (suffix `_1 … _n`),
/// paper §7.2 Figure 12. `n = 1` still suffixes, matching the paper's
/// uniform treatment of copies (queries address `lineitem_1` etc.).
pub fn replicate_tpch(sf: f64, n: usize) -> Catalog {
    assert!(n >= 1, "need at least one copy");
    let mut c = Catalog::new();
    for i in 1..=n {
        add_tpch_tables(&mut c, sf, &format!("_{i}"));
    }
    c
}

fn add_tpch_tables(c: &mut Catalog, sf: f64, suffix: &str) {
    let dmin = tpch_date_min();
    let dmax = tpch_date_max();
    let n = |base: &str| format!("{base}{suffix}");

    // region: 5 rows
    c.add_table(Table {
        name: n("region"),
        columns: vec![
            Column::with_range("r_regionkey", ColType::Int, 5, 0.0, 4.0),
            Column::new("r_name", ColType::Str(12), 5),
            Column::new("r_comment", ColType::Str(100), 5),
        ],
        row_count: 5,
        row_bytes: 124,
        clustered_on: vec!["r_regionkey".into()],
    });

    // nation: 25 rows
    c.add_table(Table {
        name: n("nation"),
        columns: vec![
            Column::with_range("n_nationkey", ColType::Int, 25, 0.0, 24.0),
            Column::new("n_name", ColType::Str(12), 25),
            Column::with_range("n_regionkey", ColType::Int, 5, 0.0, 4.0),
            Column::new("n_comment", ColType::Str(100), 25),
        ],
        row_count: 25,
        row_bytes: 128,
        clustered_on: vec!["n_nationkey".into()],
    });

    // supplier: 10k × sf
    let s_rows = scale(10_000, sf);
    c.add_table(Table {
        name: n("supplier"),
        columns: vec![
            Column::with_range("s_suppkey", ColType::Int, s_rows, 1.0, s_rows as f64),
            Column::new("s_name", ColType::Str(18), s_rows),
            Column::new("s_address", ColType::Str(25), s_rows),
            Column::with_range("s_nationkey", ColType::Int, 25, 0.0, 24.0),
            Column::new("s_phone", ColType::Str(15), s_rows),
            Column::with_range("s_acctbal", ColType::Float, s_rows, -999.99, 9999.99),
            Column::new("s_comment", ColType::Str(60), s_rows / 2),
        ],
        row_count: s_rows,
        row_bytes: 159,
        clustered_on: vec!["s_suppkey".into()],
    });

    // customer: 150k × sf
    let c_rows = scale(150_000, sf);
    c.add_table(Table {
        name: n("customer"),
        columns: vec![
            Column::with_range("c_custkey", ColType::Int, c_rows, 1.0, c_rows as f64),
            Column::new("c_name", ColType::Str(18), c_rows),
            Column::new("c_address", ColType::Str(25), c_rows),
            Column::with_range("c_nationkey", ColType::Int, 25, 0.0, 24.0),
            Column::new("c_phone", ColType::Str(15), c_rows),
            Column::with_range("c_acctbal", ColType::Float, c_rows, -999.99, 9999.99),
            Column::new("c_mktsegment", ColType::Str(10), 5),
            Column::new("c_comment", ColType::Str(73), c_rows / 2),
        ],
        row_count: c_rows,
        row_bytes: 179,
        clustered_on: vec!["c_custkey".into()],
    });

    // part: 200k × sf
    let p_rows = scale(200_000, sf);
    c.add_table(Table {
        name: n("part"),
        columns: vec![
            Column::with_range("p_partkey", ColType::Int, p_rows, 1.0, p_rows as f64),
            Column::new("p_name", ColType::Str(33), p_rows),
            Column::new("p_mfgr", ColType::Str(25), 5),
            Column::new("p_brand", ColType::Str(10), 25),
            Column::new("p_type", ColType::Str(25), 150),
            Column::with_range("p_size", ColType::Int, 50, 1.0, 50.0),
            Column::new("p_container", ColType::Str(10), 40),
            Column::with_range("p_retailprice", ColType::Float, p_rows / 10, 900.0, 2100.0),
            Column::new("p_comment", ColType::Str(14), p_rows / 2),
        ],
        row_count: p_rows,
        row_bytes: 155,
        clustered_on: vec!["p_partkey".into()],
    });

    // partsupp: 800k × sf
    let ps_rows = scale(800_000, sf);
    c.add_table(Table {
        name: n("partsupp"),
        columns: vec![
            Column::with_range("ps_partkey", ColType::Int, p_rows, 1.0, p_rows as f64),
            Column::with_range("ps_suppkey", ColType::Int, s_rows, 1.0, s_rows as f64),
            Column::with_range("ps_availqty", ColType::Int, 10_000, 1.0, 9999.0),
            Column::with_range("ps_supplycost", ColType::Float, 100_000, 1.0, 1000.0),
            Column::new("ps_comment", ColType::Str(120), ps_rows / 2),
        ],
        row_count: ps_rows,
        row_bytes: 144,
        clustered_on: vec!["ps_partkey".into(), "ps_suppkey".into()],
    });

    // orders: 1.5M × sf
    let o_rows = scale(1_500_000, sf);
    c.add_table(Table {
        name: n("orders"),
        columns: vec![
            Column::with_range("o_orderkey", ColType::Int, o_rows, 1.0, (o_rows * 4) as f64),
            Column::with_range(
                "o_custkey",
                ColType::Int,
                c_rows * 2 / 3,
                1.0,
                c_rows as f64,
            ),
            Column::new("o_orderstatus", ColType::Str(1), 3),
            Column::with_range("o_totalprice", ColType::Float, o_rows / 2, 850.0, 600_000.0),
            Column::with_range("o_orderdate", ColType::Date, 2_400, dmin, dmax),
            Column::new("o_orderpriority", ColType::Str(15), 5),
            Column::new("o_clerk", ColType::Str(15), scale(1_000, sf)),
            Column::with_range("o_shippriority", ColType::Int, 1, 0.0, 0.0),
            Column::new("o_comment", ColType::Str(49), o_rows / 2),
        ],
        row_count: o_rows,
        row_bytes: 110,
        clustered_on: vec!["o_orderkey".into()],
    });

    // lineitem: 6M × sf
    let l_rows = scale(6_000_000, sf);
    c.add_table(Table {
        name: n("lineitem"),
        columns: vec![
            Column::with_range("l_orderkey", ColType::Int, o_rows, 1.0, (o_rows * 4) as f64),
            Column::with_range("l_partkey", ColType::Int, p_rows, 1.0, p_rows as f64),
            Column::with_range("l_suppkey", ColType::Int, s_rows, 1.0, s_rows as f64),
            Column::with_range("l_linenumber", ColType::Int, 7, 1.0, 7.0),
            Column::with_range("l_quantity", ColType::Int, 50, 1.0, 50.0),
            Column::with_range(
                "l_extendedprice",
                ColType::Float,
                l_rows / 10,
                900.0,
                105_000.0,
            ),
            Column::with_range("l_discount", ColType::Float, 11, 0.0, 0.1),
            Column::with_range("l_tax", ColType::Float, 9, 0.0, 0.08),
            Column::new("l_returnflag", ColType::Str(1), 3),
            Column::new("l_linestatus", ColType::Str(1), 2),
            Column::with_range("l_shipdate", ColType::Date, 2_500, dmin, dmax),
            Column::with_range("l_commitdate", ColType::Date, 2_500, dmin, dmax),
            Column::with_range("l_receiptdate", ColType::Date, 2_500, dmin, dmax),
            Column::new("l_shipinstruct", ColType::Str(25), 4),
            Column::new("l_shipmode", ColType::Str(10), 7),
            Column::new("l_comment", ColType::Str(27), l_rows / 3),
        ],
        row_count: l_rows,
        row_bytes: 112,
        clustered_on: vec!["l_orderkey".into(), "l_linenumber".into()],
    });

    // Nonclustered indexes used by the benchmark workloads.
    c.add_index(Index {
        name: n("idx_lineitem_shipdate"),
        table: n("lineitem"),
        key_columns: vec!["l_shipdate".into()],
        entry_bytes: 16,
        row_count: l_rows,
    });
    c.add_index(Index {
        name: n("idx_orders_orderdate"),
        table: n("orders"),
        key_columns: vec!["o_orderdate".into()],
        entry_bytes: 16,
        row_count: o_rows,
    });
    c.add_index(Index {
        name: n("idx_customer_mktsegment"),
        table: n("customer"),
        key_columns: vec!["c_mktsegment".into()],
        entry_bytes: 22,
        row_count: c_rows,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf1_has_eight_tables_and_three_indexes() {
        let c = tpch_catalog(1.0);
        assert_eq!(c.tables().len(), 8);
        assert_eq!(c.all_indexes().len(), 3);
        assert_eq!(c.object_count(), 11);
    }

    #[test]
    fn sf1_cardinalities_match_spec() {
        let c = tpch_catalog(1.0);
        assert_eq!(c.table("lineitem").unwrap().row_count, 6_000_000);
        assert_eq!(c.table("orders").unwrap().row_count, 1_500_000);
        assert_eq!(c.table("partsupp").unwrap().row_count, 800_000);
        assert_eq!(c.table("region").unwrap().row_count, 5);
    }

    #[test]
    fn database_is_about_one_gigabyte_at_sf1() {
        let c = tpch_catalog(1.0);
        let bytes = c.total_blocks() * crate::BLOCK_BYTES;
        let gb = bytes as f64 / 1e9;
        assert!((0.7..1.5).contains(&gb), "got {gb} GB");
    }

    #[test]
    fn lineitem_dwarfs_orders() {
        let c = tpch_catalog(1.0);
        let l = c.table("lineitem").unwrap().size_blocks();
        let o = c.table("orders").unwrap().size_blocks();
        assert!(l > 3 * o, "lineitem {l} vs orders {o}");
    }

    #[test]
    fn scale_factor_scales_rows() {
        let c = tpch_catalog(0.1);
        assert_eq!(c.table("lineitem").unwrap().row_count, 600_000);
        // region/nation are fixed-size in TPC-H regardless of SF... but our
        // scale() only applies to scaled tables; fixed tables stay fixed.
        assert_eq!(c.table("region").unwrap().row_count, 5);
    }

    #[test]
    fn replicate_makes_n_copies() {
        let c = replicate_tpch(0.01, 3);
        assert_eq!(c.tables().len(), 24);
        assert!(c.table("lineitem_1").is_some());
        assert!(c.table("lineitem_3").is_some());
        assert!(c.table("lineitem").is_none());
        assert!(c.index("idx_orders_orderdate_2").is_some());
    }

    #[test]
    fn date_ordinals_are_monotone() {
        assert!(tpch_date_min() < tpch_date_max());
        assert!(date_ord(1995, 3, 15) < date_ord(1995, 4, 1));
    }

    #[test]
    fn clustered_keys_set() {
        let c = tpch_catalog(1.0);
        assert!(c.table("lineitem").unwrap().is_clustered_on("l_orderkey"));
        assert!(c.table("orders").unwrap().is_clustered_on("o_orderkey"));
    }
}
