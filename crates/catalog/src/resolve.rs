//! Named-catalog resolution shared by every front-end (CLI, server).
//!
//! A *catalog spec* is a short string naming one of the built-in databases,
//! optionally parameterized: `tpch[:sf]`, `tpch-n:<sf>:<copies>`, `apb`,
//! `sales`.

use crate::Catalog;

/// Resolves a catalog spec to a built-in catalog:
/// `tpch[:sf]`, `tpch-n:<sf>:<copies>`, `apb`, or `sales`.
pub fn resolve_catalog(spec: &str) -> Result<Catalog, String> {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default().to_ascii_lowercase();
    match name.as_str() {
        "tpch" => {
            let sf: f64 = parts
                .next()
                .map(|s| s.parse().map_err(|_| format!("bad scale factor `{s}`")))
                .transpose()?
                .unwrap_or(1.0);
            // `sf <= 0.0` alone would admit NaN (all comparisons false) and
            // infinity; both build degenerate catalogs downstream.
            if !(sf.is_finite() && sf > 0.0) {
                return Err("scale factor must be a finite positive number".into());
            }
            Ok(crate::tpch::tpch_catalog(sf))
        }
        "tpch-n" => {
            let sf: f64 = parts
                .next()
                .ok_or("tpch-n needs `:sf:copies`")?
                .parse()
                .map_err(|e| format!("bad scale factor: {e}"))?;
            if !(sf.is_finite() && sf > 0.0) {
                return Err("scale factor must be a finite positive number".into());
            }
            let n: usize = parts
                .next()
                .ok_or("tpch-n needs `:sf:copies`")?
                .parse()
                .map_err(|e| format!("bad copy count: {e}"))?;
            Ok(crate::tpch::replicate_tpch(sf, n))
        }
        "apb" => Ok(crate::apb::apb_catalog()),
        "sales" => Ok(crate::sales::sales_catalog()),
        other => Err(format!(
            "unknown database `{other}` (expected tpch[:sf], tpch-n:sf:n, apb, sales)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_builtin_catalogs() {
        assert_eq!(resolve_catalog("tpch:0.1").unwrap().tables().len(), 8);
        assert_eq!(resolve_catalog("apb").unwrap().tables().len(), 40);
        assert_eq!(resolve_catalog("sales").unwrap().tables().len(), 50);
        assert_eq!(resolve_catalog("tpch-n:0.01:3").unwrap().tables().len(), 24);
    }

    #[test]
    fn bad_specs_error() {
        assert!(resolve_catalog("oracle").is_err());
        assert!(resolve_catalog("tpch:zero").is_err());
        assert!(resolve_catalog("tpch:-1").is_err());
        assert!(resolve_catalog("tpch-n:1").is_err());
    }

    #[test]
    fn non_finite_scale_factors_error() {
        for spec in [
            "tpch:nan",
            "tpch:inf",
            "tpch:-inf",
            "tpch:1e999",
            "tpch-n:nan:2",
            "tpch-n:inf:2",
        ] {
            assert!(resolve_catalog(spec).is_err(), "{spec}");
        }
    }
}
