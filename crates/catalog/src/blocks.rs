//! Block arithmetic.
//!
//! The paper (§2.1) notes that allocation across a filegroup's disks happens
//! "not at the granularity of a page, but at the granularity of a block,
//! (e.g., 8 pages in Microsoft SQL Server 2000)". All sizes in the workspace
//! are denominated in these 64 KB blocks.

/// Bytes per database page (SQL Server 2000: 8 KB).
pub const PAGE_BYTES: u64 = 8 * 1024;

/// Pages per allocation block (SQL Server 2000 extent: 8 pages).
pub const PAGES_PER_BLOCK: u64 = 8;

/// Bytes per allocation block (64 KB).
pub const BLOCK_BYTES: u64 = PAGE_BYTES * PAGES_PER_BLOCK;

/// Number of blocks needed to hold `bytes` bytes (rounded up, min 1 for any
/// non-empty payload).
pub fn blocks_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(BLOCK_BYTES)
}

/// Number of blocks for `rows` rows of `row_bytes` bytes each, assuming rows
/// pack page-by-page (a row never spans pages, matching SQL Server's in-row
/// storage).
pub fn blocks_for_rows(rows: u64, row_bytes: u32) -> u64 {
    if rows == 0 || row_bytes == 0 {
        return 0;
    }
    let rows_per_page = (PAGE_BYTES / row_bytes as u64).max(1);
    let pages = rows.div_ceil(rows_per_page);
    pages.div_ceil(PAGES_PER_BLOCK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_64k() {
        assert_eq!(BLOCK_BYTES, 65536);
    }

    #[test]
    fn zero_bytes_zero_blocks() {
        assert_eq!(blocks_for_bytes(0), 0);
        assert_eq!(blocks_for_rows(0, 100), 0);
    }

    #[test]
    fn one_byte_one_block() {
        assert_eq!(blocks_for_bytes(1), 1);
    }

    #[test]
    fn exact_multiple() {
        assert_eq!(blocks_for_bytes(BLOCK_BYTES * 7), 7);
        assert_eq!(blocks_for_bytes(BLOCK_BYTES * 7 + 1), 8);
    }

    #[test]
    fn rows_pack_per_page() {
        // 100-byte rows: 81 per 8K page, 648 per block.
        let blocks = blocks_for_rows(648, 100);
        assert_eq!(blocks, 1);
        assert_eq!(blocks_for_rows(649, 100), 2);
    }

    #[test]
    fn oversized_row_still_one_per_page() {
        // Rows bigger than a page clamp to 1 row/page.
        assert_eq!(blocks_for_rows(8, 10_000), 1);
        assert_eq!(blocks_for_rows(9, 10_000), 2);
    }

    #[test]
    fn tpch_lineitem_scale() {
        // 6M rows of ~112 bytes ≈ 655 MB ≈ 10_200 blocks; sanity bounds.
        let blocks = blocks_for_rows(6_000_000, 112);
        assert!(blocks > 9_000 && blocks < 13_000, "got {blocks}");
    }
}
