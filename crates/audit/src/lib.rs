//! # dblayout-audit — decision provenance and an accuracy observatory
//!
//! The advisor is a cost-based what-if loop, but a recommendation that
//! cannot be explained or re-derived later is advice nobody can trust.
//! This crate gives every recommendation a durable, *replayable* paper
//! trail (DESIGN.md §10):
//!
//! * [`DecisionRecord`] — one decision, self-contained: content digests
//!   of every input (catalog spec, workload SQL, disk specs, search
//!   config, git revision), the advised-time access-graph snapshot, the
//!   chosen layout's full fraction matrix, per-statement and per-disk
//!   predicted cost breakdowns, search counters, phase timings, and
//!   strategy attribution. A record re-derives the layout from nothing
//!   but itself — no session state, no live server.
//! * [`DecisionLog`] — a size-bounded, rotating on-disk JSONL log with a
//!   JSON index and monotone decision ids. Appends survive process
//!   restarts (ids keep increasing); old segments are pruned once the
//!   configured bound is exceeded.
//! * [`replay`] — the verification pass: re-runs the recorded search
//!   from the record's inputs, bit-compares the reproduced layout
//!   against the recorded one, then runs the recorded layout through
//!   `dblayout-disksim` and reports the predicted-vs-simulated relative
//!   error. This is the accuracy observatory: the cost model's estimates
//!   are continuously validated against realized (simulated) behavior,
//!   in the AutoAdmin tradition of validating advisor output instead of
//!   trusting it.
//!
//! Everything here sits inside lint rule R1's no-panic zone and R6's
//! determinism zone: no wall clocks (timestamps are caller-supplied), no
//! hash-map iteration, and total error paths — an audit layer that can
//! panic or drift across runs would defeat its own purpose.

pub mod log;
pub mod record;
pub mod replay;

pub use crate::log::{DecisionLog, DecisionSummary, LogConfig};
pub use record::{
    record_budgeted, record_recommendation, DecisionKind, DecisionOutcome, DecisionRecord, Digests,
    DiskCost, DiskSpecRecord, GraphSnapshot, PhaseRecord, RecordInputs, SearchSettings,
    StatementCost,
};
pub use replay::{replay, ReplayConfig, ReplayReport};

/// FNV-1a 64-bit over a byte slice — the workspace's content-digest
/// primitive (the same fold the server uses for layout hashes). Not
/// cryptographic; collisions are astronomically unlikely at the scale of
/// a decision log and the digests exist to *detect drift*, not to
/// authenticate.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a digest rendered as the canonical 16-hex-digit form used in
/// records and wire responses.
pub fn digest_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes))
}

/// The git revision baked into this process, for joining decision records
/// and scraped metrics with BENCH_* histories by revision. Reads
/// `DBLAYOUT_GIT_REV` (CI exports the commit SHA); `unknown` outside any
/// build pipeline.
pub fn git_rev() -> String {
    match std::env::var("DBLAYOUT_GIT_REV") {
        Ok(rev) if !rev.trim().is_empty() => rev.trim().to_string(),
        _ => "unknown".to_string(),
    }
}

/// The crate version compiled into this process.
pub fn build_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// Anything that can go wrong while recording, storing, or replaying a
/// decision.
#[derive(Debug)]
pub enum AuditError {
    /// Filesystem failure; carries the path so the operator knows *which*
    /// file, not just the errno.
    Io {
        /// The file or directory the operation touched.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A record or index failed to parse.
    Parse(String),
    /// No record with the requested id exists (it may have been pruned by
    /// rotation).
    NotFound(u64),
    /// The replay pass could not re-derive the decision.
    Replay(String),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io { path, source } => write!(f, "audit io error at `{path}`: {source}"),
            AuditError::Parse(msg) => write!(f, "audit parse error: {msg}"),
            AuditError::NotFound(id) => {
                write!(
                    f,
                    "decision {id} not found (pruned by rotation or never recorded)"
                )
            }
            AuditError::Replay(msg) => write!(f, "replay error: {msg}"),
        }
    }
}

impl std::error::Error for AuditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuditError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        assert_eq!(digest_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn digest_hex_is_fixed_width() {
        assert_eq!(digest_hex(b"").len(), 16);
        assert_eq!(digest_hex(b"x").len(), 16);
    }

    #[test]
    fn build_identity_is_present() {
        assert!(!build_version().is_empty());
        // git_rev never fails; without the env var it reports "unknown".
        assert!(!git_rev().is_empty());
    }

    #[test]
    fn errors_render_their_context() {
        let e = AuditError::Io {
            path: "results/decisions/index.json".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        let text = format!("{e}");
        assert!(text.contains("results/decisions/index.json"));
        assert!(format!("{}", AuditError::NotFound(42)).contains("42"));
    }
}
