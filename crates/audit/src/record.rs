//! The decision record: one recommendation, fully re-derivable.
//!
//! A [`DecisionRecord`] captures everything the advisor saw and chose —
//! inputs verbatim (catalog spec, workload SQL, disk specs, search
//! settings), content digests of each, the advised-time access-graph
//! snapshot, and the outcome (layout fractions, costs, per-statement and
//! per-disk predicted breakdown, counters, phase timings, strategy).
//! Serialization is one ordered JSON object per record; the vendored
//! `serde_json` prints `f64`s in shortest-round-trip form, so fraction
//! and weight bits survive a write/read cycle exactly — the property
//! [`crate::replay`]'s bit-identity check rests on.

use std::sync::Arc;

use dblayout_core::advisor::Recommendation;
use dblayout_core::costmodel::{decompose_workload, CostModel};
use dblayout_disksim::{Availability, DiskSpec, Layout};
use dblayout_obs::counters::CounterSnapshot;
use dblayout_obs::prof::PhaseRow;
use dblayout_obs::{Collector, RingSink};
use dblayout_partition::Graph;
use dblayout_planner::Subplan;
use dblayout_relayout::{graph_bytes, BudgetedOutcome};
use serde_json::{Value, ValueExt};

use crate::{digest_hex, AuditError};

/// Which advisor entry point produced the decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Unconstrained-from-scratch recommendation (`recommend`).
    Recommend,
    /// Movement-budgeted recommendation seeded from a deployed layout
    /// (`recommend_budgeted` / `migrate`).
    Budgeted,
}

impl DecisionKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionKind::Recommend => "recommend",
            DecisionKind::Budgeted => "recommend_budgeted",
        }
    }

    fn parse(s: &str) -> Result<Self, AuditError> {
        match s {
            "recommend" => Ok(DecisionKind::Recommend),
            "recommend_budgeted" => Ok(DecisionKind::Budgeted),
            other => Err(AuditError::Parse(format!(
                "unknown decision kind `{other}`"
            ))),
        }
    }
}

/// A disk spec as recorded — value-complete, so replay needs no live
/// `--disks` argument.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSpecRecord {
    /// Drive name.
    pub name: String,
    /// Capacity in blocks.
    pub capacity_blocks: u64,
    /// Average seek+rotate time (ms).
    pub avg_seek_ms: f64,
    /// Sequential read rate (MB/s).
    pub read_mb_s: f64,
    /// Sequential write rate (MB/s).
    pub write_mb_s: f64,
    /// Availability mode: `none`, `parity`, or `mirroring`.
    pub avail: String,
}

impl DiskSpecRecord {
    /// Captures a live spec.
    pub fn of(spec: &DiskSpec) -> Self {
        let avail = match spec.avail {
            Availability::None => "none",
            Availability::Parity => "parity",
            Availability::Mirroring => "mirroring",
        };
        Self {
            name: spec.name.clone(),
            capacity_blocks: spec.capacity_blocks,
            avg_seek_ms: spec.avg_seek_ms,
            read_mb_s: spec.read_mb_s,
            write_mb_s: spec.write_mb_s,
            avail: avail.to_string(),
        }
    }

    /// Rebuilds the live spec for replay.
    pub fn to_spec(&self) -> Result<DiskSpec, AuditError> {
        let avail = match self.avail.as_str() {
            "none" => Availability::None,
            "parity" => Availability::Parity,
            "mirroring" => Availability::Mirroring,
            other => {
                return Err(AuditError::Parse(format!(
                    "unknown availability mode `{other}`"
                )))
            }
        };
        Ok(DiskSpec::new(
            &self.name,
            self.capacity_blocks,
            self.avg_seek_ms,
            self.read_mb_s,
            self.write_mb_s,
        )
        .with_avail(avail))
    }
}

/// The search settings the decision ran under — enough to re-run the
/// exact same search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSettings {
    /// TS-GREEDY `k` (heaviest-edge groups in step 1).
    pub k: usize,
    /// Worker threads the search ran with (the search is byte-identical
    /// at any thread count; recorded for faithful re-execution anyway).
    pub threads: usize,
    /// Movement budget in blocks (budgeted decisions only).
    pub budget_blocks: Option<u64>,
    /// Requested improvement threshold in percent (budgeted only).
    pub min_improvement_pct: Option<f64>,
    /// The deployed layout's fraction matrix the budgeted search was
    /// seeded from (budgeted only), bit-exact.
    pub deployed: Option<Vec<Vec<f64>>>,
}

/// The advised-time access graph, value-complete.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSnapshot {
    /// Node weights by object index (length = object count).
    pub node_weights: Vec<f64>,
    /// Co-access edges `(u, v, weight)` with `u < v`, sorted.
    pub edges: Vec<(usize, usize, f64)>,
}

impl GraphSnapshot {
    /// Captures a live graph.
    pub fn of(g: &Graph) -> Self {
        Self {
            node_weights: (0..g.len()).map(|u| g.node_weight(u)).collect(),
            edges: g.edges(),
        }
    }

    /// Rebuilds the live graph, bit-exact: node and edge weights are
    /// accumulated once onto zero, which preserves every bit.
    pub fn to_graph(&self) -> Result<Graph, AuditError> {
        let n = self.node_weights.len();
        let mut g = Graph::new(n);
        for (u, &w) in self.node_weights.iter().enumerate() {
            if !w.is_finite() {
                return Err(AuditError::Parse(format!("non-finite node weight at {u}")));
            }
            // dblayout::allow(R3, reason = "exact-zero sentinel: the snapshot stores only nonzero weights, so bit-exact zero means 'absent', never a computed near-zero")
            if w != 0.0 {
                g.add_node_weight(u, w);
            }
        }
        for &(u, v, w) in &self.edges {
            if u >= v || v >= n || !w.is_finite() {
                return Err(AuditError::Parse(format!("bad graph edge ({u}, {v}, {w})")));
            }
            g.add_edge(u, v, w);
        }
        Ok(g)
    }
}

/// Content digests of every replay-relevant input, plus the graph. A
/// digest mismatch between two records explains *why* their decisions
/// differ; a graph-digest mismatch at replay time means the record was
/// corrupted in storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Digests {
    /// FNV-1a of the catalog spec string.
    pub catalog: String,
    /// FNV-1a of the workload SQL text.
    pub workload: String,
    /// FNV-1a of the canonical disk-spec encoding.
    pub disks: String,
    /// FNV-1a of the canonical search-settings encoding.
    pub config: String,
    /// FNV-1a of the canonical graph bytes (`graph_bytes`).
    pub graph: String,
}

/// Predicted cost of one weighted statement.
#[derive(Debug, Clone, PartialEq)]
pub struct StatementCost {
    /// Statement weight `w_Q`.
    pub weight: f64,
    /// Unweighted predicted I/O response time (ms).
    pub cost_ms: f64,
}

/// Weighted predicted work landing on one disk across the workload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiskCost {
    /// Transfer milliseconds (weighted sum over statements).
    pub transfer_ms: f64,
    /// Seek milliseconds (weighted sum over statements).
    pub seek_ms: f64,
}

/// One phase-timer row as recorded (`dblayout-prof`).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Phase name (`analyze`, `build-graph`, `search`, `cost`, ...).
    pub name: String,
    /// Times the phase was entered.
    pub calls: u64,
    /// Total wall-clock microseconds attributed.
    pub total_us: u64,
}

impl PhaseRecord {
    fn of(row: &PhaseRow) -> Self {
        Self {
            name: row.name.clone(),
            calls: row.calls,
            total_us: row.total_us,
        }
    }
}

/// What the advisor chose and what it predicted.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionOutcome {
    /// Strategy attribution: `search`, `full_striping` (fallback won), or
    /// a budgeted strategy (`identity` / `seeded_search` /
    /// `ideal_fits_budget`).
    pub strategy: String,
    /// The chosen layout's full fraction matrix, bit-exact.
    pub fractions: Vec<Vec<f64>>,
    /// Predicted workload cost of the chosen layout (ms).
    pub predicted_cost_ms: f64,
    /// Predicted cost of the comparison baseline (full striping for
    /// `recommend`; the deployed layout for budgeted decisions).
    pub baseline_cost_ms: f64,
    /// Improvement over the baseline (percent).
    pub improvement_pct: f64,
    /// Greedy iterations adopted.
    pub iterations: u64,
    /// Cost-model invocations.
    pub cost_evaluations: u64,
    /// Per-statement predicted cost breakdown, workload order.
    pub per_statement: Vec<StatementCost>,
    /// Per-disk predicted transfer/seek breakdown, disk order.
    pub per_disk: Vec<DiskCost>,
    /// Phase timings at decision time.
    pub phases: Vec<PhaseRecord>,
    /// Deterministic counter deltas over the decision (name, delta).
    pub counters: Vec<(String, u64)>,
}

/// One fully self-contained, replayable decision.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Monotone decision id, assigned by [`crate::DecisionLog::append`]
    /// (0 until appended).
    pub id: u64,
    /// Caller-supplied wall-clock milliseconds since the Unix epoch
    /// (`None` in deterministic contexts — this crate never reads a
    /// clock itself).
    pub ts_unix_ms: Option<u64>,
    /// Which advisor entry point ran.
    pub kind: DecisionKind,
    /// Where the decision came from (`cli.recommend`, `server.recommend`,
    /// ...).
    pub source: String,
    /// Git revision of the deciding build (`DBLAYOUT_GIT_REV`).
    pub git_rev: String,
    /// Crate version of the deciding build.
    pub version: String,
    /// The catalog spec string (`tpch:0.1`, `sales`, ...) — replay
    /// re-resolves it; resolution is deterministic.
    pub catalog_spec: String,
    /// The full workload SQL text, weights embedded as `-- weight:`
    /// comments.
    pub workload_sql: String,
    /// Raw constraints file text when the decision ran under placement
    /// constraints. Recorded for provenance; constrained records are not
    /// currently replayable (the constraint compiler lives above this
    /// crate) and [`crate::replay`] says so explicitly.
    pub constraints_text: Option<String>,
    /// Value-complete disk specs.
    pub disks: Vec<DiskSpecRecord>,
    /// Search settings.
    pub config: SearchSettings,
    /// Content digests of all of the above.
    pub digests: Digests,
    /// Advised-time access graph.
    pub graph: GraphSnapshot,
    /// The decision itself.
    pub outcome: DecisionOutcome,
}

/// Canonical byte encoding of the disk list for digesting.
fn disks_bytes(disks: &[DiskSpecRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for d in disks {
        out.extend_from_slice(d.name.as_bytes());
        out.push(0);
        out.extend_from_slice(&d.capacity_blocks.to_le_bytes());
        out.extend_from_slice(&d.avg_seek_ms.to_bits().to_le_bytes());
        out.extend_from_slice(&d.read_mb_s.to_bits().to_le_bytes());
        out.extend_from_slice(&d.write_mb_s.to_bits().to_le_bytes());
        out.extend_from_slice(d.avail.as_bytes());
        out.push(0);
    }
    out
}

/// Canonical byte encoding of the search settings for digesting.
fn config_bytes(cfg: &SearchSettings) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(cfg.k as u64).to_le_bytes());
    out.extend_from_slice(&(cfg.threads as u64).to_le_bytes());
    match cfg.budget_blocks {
        Some(b) => {
            out.push(1);
            out.extend_from_slice(&b.to_le_bytes());
        }
        None => out.push(0),
    }
    match cfg.min_improvement_pct {
        Some(p) => {
            out.push(1);
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        None => out.push(0),
    }
    match &cfg.deployed {
        Some(rows) => {
            out.push(1);
            out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
            for row in rows {
                out.extend_from_slice(&(row.len() as u64).to_le_bytes());
                for f in row {
                    out.extend_from_slice(&f.to_bits().to_le_bytes());
                }
            }
        }
        None => out.push(0),
    }
    out
}

/// Computes the digest block for a record's inputs and graph.
pub fn compute_digests(
    catalog_spec: &str,
    workload_sql: &str,
    disks: &[DiskSpecRecord],
    config: &SearchSettings,
    graph: &Graph,
) -> Digests {
    Digests {
        catalog: digest_hex(catalog_spec.as_bytes()),
        workload: digest_hex(workload_sql.as_bytes()),
        disks: digest_hex(&disks_bytes(disks)),
        config: digest_hex(&config_bytes(config)),
        graph: digest_hex(&graph_bytes(graph)),
    }
}

/// The shared inputs of both record builders.
#[derive(Debug, Clone, Copy)]
pub struct RecordInputs<'a> {
    /// Origin label (`cli.recommend`, `server.recommend_budgeted`, ...).
    pub source: &'a str,
    /// Catalog spec string as the caller resolved it.
    pub catalog_spec: &'a str,
    /// Full workload SQL text (with `-- weight:` directives).
    pub workload_sql: &'a str,
    /// Raw constraints text, when any.
    pub constraints_text: Option<&'a str>,
    /// Live disk specs.
    pub disks: &'a [DiskSpec],
    /// TS-GREEDY `k`.
    pub k: usize,
    /// Search threads.
    pub threads: usize,
    /// Caller-supplied timestamp (Unix ms); `None` keeps the record
    /// deterministic.
    pub ts_unix_ms: Option<u64>,
}

/// Bitwise fraction-matrix equality (the workspace's determinism
/// currency — `==` on floats would also be fine here, but bits say what
/// we mean).
fn layouts_bit_equal(a: &Layout, b: &Layout) -> bool {
    if a.object_count() != b.object_count() || a.disk_count() != b.disk_count() {
        return false;
    }
    (0..a.object_count()).all(|i| {
        a.fractions_of(i)
            .iter()
            .zip(b.fractions_of(i))
            .all(|(x, y)| x.to_bits() == y.to_bits())
    })
}

fn fractions_of_layout(layout: &Layout) -> Vec<Vec<f64>> {
    (0..layout.object_count())
        .map(|i| layout.fractions_of(i).to_vec())
        .collect()
}

/// Per-statement and per-disk predicted cost breakdown of `layout` under
/// the default cost model, via the traced costing path: each statement is
/// costed once with a deterministic collector, and the `costmodel.disk`
/// events are folded into weighted per-disk transfer/seek totals.
pub fn predicted_breakdown(
    workload: &[(Vec<Subplan>, f64)],
    layout: &Layout,
    disks: &[DiskSpec],
) -> (Vec<StatementCost>, Vec<DiskCost>) {
    let ring = Arc::new(RingSink::new(usize::MAX));
    let model = CostModel {
        collector: Collector::deterministic(ring.clone()),
        ..CostModel::default()
    };
    let mut per_statement = Vec::with_capacity(workload.len());
    let mut per_disk = vec![DiskCost::default(); disks.len()];
    for (subs, weight) in workload {
        let cost_ms = model.statement_cost_subplans(subs, layout, disks);
        per_statement.push(StatementCost {
            weight: *weight,
            cost_ms,
        });
        for r in ring.drain() {
            if r.name != "costmodel.disk" {
                continue;
            }
            let Some(j) = r.field_u64("disk") else {
                continue;
            };
            let Some(slot) = per_disk.get_mut(j as usize) else {
                continue;
            };
            slot.transfer_ms += weight * r.field_f64("transfer_ms").unwrap_or(0.0);
            slot.seek_ms += weight * r.field_f64("seek_ms").unwrap_or(0.0);
        }
    }
    (per_statement, per_disk)
}

fn counter_pairs(delta: &CounterSnapshot) -> Vec<(String, u64)> {
    delta
        .deterministic_pairs()
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect()
}

/// Builds the record for an unconstrained `recommend` decision. The
/// decomposed workload and breakdowns are derived from the
/// recommendation's own plans, so the record is consistent with the
/// advice by construction.
pub fn record_recommendation(
    inputs: &RecordInputs<'_>,
    rec: &Recommendation,
    phases: &[PhaseRow],
    counters_delta: &CounterSnapshot,
) -> DecisionRecord {
    let workload = decompose_workload(&rec.plans);
    let (per_statement, per_disk) = predicted_breakdown(&workload, &rec.layout, inputs.disks);
    let strategy = if layouts_bit_equal(&rec.layout, &rec.full_striping) {
        "full_striping"
    } else {
        "search"
    };
    let disks: Vec<DiskSpecRecord> = inputs.disks.iter().map(DiskSpecRecord::of).collect();
    let config = SearchSettings {
        k: inputs.k,
        threads: inputs.threads,
        budget_blocks: None,
        min_improvement_pct: None,
        deployed: None,
    };
    let digests = compute_digests(
        inputs.catalog_spec,
        inputs.workload_sql,
        &disks,
        &config,
        &rec.access_graph,
    );
    DecisionRecord {
        id: 0,
        ts_unix_ms: inputs.ts_unix_ms,
        kind: DecisionKind::Recommend,
        source: inputs.source.to_string(),
        git_rev: crate::git_rev(),
        version: crate::build_version().to_string(),
        catalog_spec: inputs.catalog_spec.to_string(),
        workload_sql: inputs.workload_sql.to_string(),
        constraints_text: inputs.constraints_text.map(str::to_string),
        disks,
        config,
        digests,
        graph: GraphSnapshot::of(&rec.access_graph),
        outcome: DecisionOutcome {
            strategy: strategy.to_string(),
            fractions: fractions_of_layout(&rec.layout),
            predicted_cost_ms: rec.recommended_cost_ms,
            baseline_cost_ms: rec.full_striping_cost_ms,
            improvement_pct: rec.estimated_improvement_pct,
            iterations: rec.search.iterations as u64,
            cost_evaluations: rec.search.cost_evaluations as u64,
            per_statement,
            per_disk,
            phases: phases.iter().map(PhaseRecord::of).collect(),
            counters: counter_pairs(counters_delta),
        },
    }
}

/// Builds the record for a budgeted (`migrate` / `recommend_budgeted`)
/// decision. `current` is the deployed layout the search was seeded from;
/// its fraction matrix is embedded bit-exact so replay can reconstruct
/// the identical seed.
#[allow(clippy::too_many_arguments)]
pub fn record_budgeted(
    inputs: &RecordInputs<'_>,
    outcome: &BudgetedOutcome,
    current: &Layout,
    graph: &Graph,
    workload: &[(Vec<Subplan>, f64)],
    min_improvement_pct: f64,
    phases: &[PhaseRow],
    counters_delta: &CounterSnapshot,
) -> DecisionRecord {
    let (per_statement, per_disk) = predicted_breakdown(workload, &outcome.layout, inputs.disks);
    let disks: Vec<DiskSpecRecord> = inputs.disks.iter().map(DiskSpecRecord::of).collect();
    let config = SearchSettings {
        k: inputs.k,
        threads: inputs.threads,
        budget_blocks: outcome.budget_blocks,
        min_improvement_pct: Some(min_improvement_pct),
        deployed: Some(fractions_of_layout(current)),
    };
    let digests = compute_digests(
        inputs.catalog_spec,
        inputs.workload_sql,
        &disks,
        &config,
        graph,
    );
    DecisionRecord {
        id: 0,
        ts_unix_ms: inputs.ts_unix_ms,
        kind: DecisionKind::Budgeted,
        source: inputs.source.to_string(),
        git_rev: crate::git_rev(),
        version: crate::build_version().to_string(),
        catalog_spec: inputs.catalog_spec.to_string(),
        workload_sql: inputs.workload_sql.to_string(),
        constraints_text: inputs.constraints_text.map(str::to_string),
        disks,
        config,
        digests,
        graph: GraphSnapshot::of(graph),
        outcome: DecisionOutcome {
            strategy: outcome.strategy.as_str().to_string(),
            fractions: fractions_of_layout(&outcome.layout),
            predicted_cost_ms: outcome.new_cost_ms,
            baseline_cost_ms: outcome.current_cost_ms,
            improvement_pct: outcome.improvement_pct,
            iterations: outcome.iterations as u64,
            cost_evaluations: outcome.cost_evaluations as u64,
            per_statement,
            per_disk,
            phases: phases.iter().map(PhaseRecord::of).collect(),
            counters: counter_pairs(counters_delta),
        },
    }
}

// ---- JSON serialization ----

fn opt_u64(v: Option<u64>) -> Value {
    match v {
        Some(n) => Value::U64(n),
        None => Value::Null,
    }
}

fn opt_f64(v: Option<f64>) -> Value {
    match v {
        Some(n) => Value::F64(n),
        None => Value::Null,
    }
}

fn opt_str(v: &Option<String>) -> Value {
    match v {
        Some(s) => Value::Str(s.clone()),
        None => Value::Null,
    }
}

fn fractions_to_json(rows: &[Vec<f64>]) -> Value {
    Value::Seq(
        rows.iter()
            .map(|row| Value::Seq(row.iter().map(|&f| Value::F64(f)).collect()))
            .collect(),
    )
}

impl DecisionRecord {
    /// The record as an ordered JSON value — one JSONL line when passed
    /// through [`serde_json::to_string`].
    pub fn to_json(&self) -> Value {
        let disks = Value::Seq(
            self.disks
                .iter()
                .map(|d| {
                    Value::Map(vec![
                        ("name".into(), Value::Str(d.name.clone())),
                        ("capacity_blocks".into(), Value::U64(d.capacity_blocks)),
                        ("avg_seek_ms".into(), Value::F64(d.avg_seek_ms)),
                        ("read_mb_s".into(), Value::F64(d.read_mb_s)),
                        ("write_mb_s".into(), Value::F64(d.write_mb_s)),
                        ("avail".into(), Value::Str(d.avail.clone())),
                    ])
                })
                .collect(),
        );
        let deployed = match &self.config.deployed {
            Some(rows) => fractions_to_json(rows),
            None => Value::Null,
        };
        let config = Value::Map(vec![
            ("k".into(), Value::U64(self.config.k as u64)),
            ("threads".into(), Value::U64(self.config.threads as u64)),
            ("budget_blocks".into(), opt_u64(self.config.budget_blocks)),
            (
                "min_improvement_pct".into(),
                opt_f64(self.config.min_improvement_pct),
            ),
            ("deployed".into(), deployed),
        ]);
        let digests = Value::Map(vec![
            ("catalog".into(), Value::Str(self.digests.catalog.clone())),
            ("workload".into(), Value::Str(self.digests.workload.clone())),
            ("disks".into(), Value::Str(self.digests.disks.clone())),
            ("config".into(), Value::Str(self.digests.config.clone())),
            ("graph".into(), Value::Str(self.digests.graph.clone())),
        ]);
        let graph = Value::Map(vec![
            (
                "node_weights".into(),
                Value::Seq(
                    self.graph
                        .node_weights
                        .iter()
                        .map(|&w| Value::F64(w))
                        .collect(),
                ),
            ),
            (
                "edges".into(),
                Value::Seq(
                    self.graph
                        .edges
                        .iter()
                        .map(|&(u, v, w)| {
                            Value::Seq(vec![
                                Value::U64(u as u64),
                                Value::U64(v as u64),
                                Value::F64(w),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let outcome = Value::Map(vec![
            ("strategy".into(), Value::Str(self.outcome.strategy.clone())),
            (
                "fractions".into(),
                fractions_to_json(&self.outcome.fractions),
            ),
            (
                "predicted_cost_ms".into(),
                Value::F64(self.outcome.predicted_cost_ms),
            ),
            (
                "baseline_cost_ms".into(),
                Value::F64(self.outcome.baseline_cost_ms),
            ),
            (
                "improvement_pct".into(),
                Value::F64(self.outcome.improvement_pct),
            ),
            ("iterations".into(), Value::U64(self.outcome.iterations)),
            (
                "cost_evaluations".into(),
                Value::U64(self.outcome.cost_evaluations),
            ),
            (
                "per_statement".into(),
                Value::Seq(
                    self.outcome
                        .per_statement
                        .iter()
                        .map(|s| {
                            Value::Map(vec![
                                ("weight".into(), Value::F64(s.weight)),
                                ("cost_ms".into(), Value::F64(s.cost_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "per_disk".into(),
                Value::Seq(
                    self.outcome
                        .per_disk
                        .iter()
                        .map(|d| {
                            Value::Map(vec![
                                ("transfer_ms".into(), Value::F64(d.transfer_ms)),
                                ("seek_ms".into(), Value::F64(d.seek_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "phases".into(),
                Value::Seq(
                    self.outcome
                        .phases
                        .iter()
                        .map(|p| {
                            Value::Map(vec![
                                ("name".into(), Value::Str(p.name.clone())),
                                ("calls".into(), Value::U64(p.calls)),
                                ("total_us".into(), Value::U64(p.total_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters".into(),
                Value::Seq(
                    self.outcome
                        .counters
                        .iter()
                        .map(|(n, v)| Value::Seq(vec![Value::Str(n.clone()), Value::U64(*v)]))
                        .collect(),
                ),
            ),
        ]);
        Value::Map(vec![
            ("id".into(), Value::U64(self.id)),
            ("ts_unix_ms".into(), opt_u64(self.ts_unix_ms)),
            ("kind".into(), Value::Str(self.kind.as_str().into())),
            ("source".into(), Value::Str(self.source.clone())),
            ("git_rev".into(), Value::Str(self.git_rev.clone())),
            ("version".into(), Value::Str(self.version.clone())),
            ("catalog_spec".into(), Value::Str(self.catalog_spec.clone())),
            ("workload_sql".into(), Value::Str(self.workload_sql.clone())),
            ("constraints_text".into(), opt_str(&self.constraints_text)),
            ("disks".into(), disks),
            ("config".into(), config),
            ("digests".into(), digests),
            ("graph".into(), graph),
            ("outcome".into(), outcome),
        ])
    }

    /// One JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> Result<String, AuditError> {
        serde_json::to_string(&self.to_json())
            .map_err(|e| AuditError::Parse(format!("serialize: {e}")))
    }

    /// Parses one JSONL line back into a record (exact inverse of
    /// [`DecisionRecord::to_jsonl`]).
    pub fn from_jsonl(line: &str) -> Result<Self, AuditError> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| AuditError::Parse(format!("invalid JSON: {e}")))?;
        Self::from_json(&value)
    }

    /// Parses the JSON value form.
    pub fn from_json(v: &Value) -> Result<Self, AuditError> {
        let disks = req_array(v, "disks")?
            .iter()
            .map(|d| {
                Ok(DiskSpecRecord {
                    name: req_str(d, "name")?,
                    capacity_blocks: req_u64(d, "capacity_blocks")?,
                    avg_seek_ms: req_f64(d, "avg_seek_ms")?,
                    read_mb_s: req_f64(d, "read_mb_s")?,
                    write_mb_s: req_f64(d, "write_mb_s")?,
                    avail: req_str(d, "avail")?,
                })
            })
            .collect::<Result<Vec<_>, AuditError>>()?;
        let cfg = req(v, "config")?;
        let config = SearchSettings {
            k: req_u64(cfg, "k")? as usize,
            threads: req_u64(cfg, "threads")? as usize,
            budget_blocks: opt_u64_of(cfg, "budget_blocks")?,
            min_improvement_pct: opt_f64_of(cfg, "min_improvement_pct")?,
            deployed: match req(cfg, "deployed")? {
                Value::Null => None,
                rows => Some(fractions_from_json(rows, "config.deployed")?),
            },
        };
        let dg = req(v, "digests")?;
        let digests = Digests {
            catalog: req_str(dg, "catalog")?,
            workload: req_str(dg, "workload")?,
            disks: req_str(dg, "disks")?,
            config: req_str(dg, "config")?,
            graph: req_str(dg, "graph")?,
        };
        let g = req(v, "graph")?;
        let node_weights = req_array(g, "node_weights")?
            .iter()
            .map(|w| num_f64(w, "graph.node_weights"))
            .collect::<Result<Vec<_>, AuditError>>()?;
        let edges = req_array(g, "edges")?
            .iter()
            .map(|e| {
                let items = e
                    .as_array()
                    .ok_or_else(|| AuditError::Parse("graph edge must be an array".into()))?;
                match items.as_slice() {
                    [u, v, w] => Ok((
                        num_u64(u, "edge u")? as usize,
                        num_u64(v, "edge v")? as usize,
                        num_f64(w, "edge weight")?,
                    )),
                    _ => Err(AuditError::Parse("graph edge must have 3 items".into())),
                }
            })
            .collect::<Result<Vec<_>, AuditError>>()?;
        let o = req(v, "outcome")?;
        let per_statement = req_array(o, "per_statement")?
            .iter()
            .map(|s| {
                Ok(StatementCost {
                    weight: req_f64(s, "weight")?,
                    cost_ms: req_f64(s, "cost_ms")?,
                })
            })
            .collect::<Result<Vec<_>, AuditError>>()?;
        let per_disk = req_array(o, "per_disk")?
            .iter()
            .map(|d| {
                Ok(DiskCost {
                    transfer_ms: req_f64(d, "transfer_ms")?,
                    seek_ms: req_f64(d, "seek_ms")?,
                })
            })
            .collect::<Result<Vec<_>, AuditError>>()?;
        let phases = req_array(o, "phases")?
            .iter()
            .map(|p| {
                Ok(PhaseRecord {
                    name: req_str(p, "name")?,
                    calls: req_u64(p, "calls")?,
                    total_us: req_u64(p, "total_us")?,
                })
            })
            .collect::<Result<Vec<_>, AuditError>>()?;
        let counters = req_array(o, "counters")?
            .iter()
            .map(|c| {
                let items = c
                    .as_array()
                    .ok_or_else(|| AuditError::Parse("counter entry must be an array".into()))?;
                match items.as_slice() {
                    [name, value] => Ok((
                        name.as_str()
                            .ok_or_else(|| {
                                AuditError::Parse("counter name must be a string".into())
                            })?
                            .to_string(),
                        num_u64(value, "counter value")?,
                    )),
                    _ => Err(AuditError::Parse("counter entry must have 2 items".into())),
                }
            })
            .collect::<Result<Vec<_>, AuditError>>()?;
        let outcome = DecisionOutcome {
            strategy: req_str(o, "strategy")?,
            fractions: fractions_from_json(req(o, "fractions")?, "outcome.fractions")?,
            predicted_cost_ms: req_f64(o, "predicted_cost_ms")?,
            baseline_cost_ms: req_f64(o, "baseline_cost_ms")?,
            improvement_pct: req_f64(o, "improvement_pct")?,
            iterations: req_u64(o, "iterations")?,
            cost_evaluations: req_u64(o, "cost_evaluations")?,
            per_statement,
            per_disk,
            phases,
            counters,
        };
        Ok(DecisionRecord {
            id: req_u64(v, "id")?,
            ts_unix_ms: opt_u64_of(v, "ts_unix_ms")?,
            kind: DecisionKind::parse(&req_str(v, "kind")?)?,
            source: req_str(v, "source")?,
            git_rev: req_str(v, "git_rev")?,
            version: req_str(v, "version")?,
            catalog_spec: req_str(v, "catalog_spec")?,
            workload_sql: req_str(v, "workload_sql")?,
            constraints_text: match req(v, "constraints_text")? {
                Value::Null => None,
                s => Some(
                    s.as_str()
                        .ok_or_else(|| {
                            AuditError::Parse("constraints_text must be a string or null".into())
                        })?
                        .to_string(),
                ),
            },
            disks,
            config,
            digests,
            graph: GraphSnapshot {
                node_weights,
                edges,
            },
            outcome,
        })
    }
}

fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value, AuditError> {
    v.get(key)
        .ok_or_else(|| AuditError::Parse(format!("missing field `{key}`")))
}

fn req_str(v: &Value, key: &str) -> Result<String, AuditError> {
    req(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| AuditError::Parse(format!("field `{key}` must be a string")))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, AuditError> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| AuditError::Parse(format!("field `{key}` must be an unsigned integer")))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, AuditError> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| AuditError::Parse(format!("field `{key}` must be a number")))
}

fn req_array<'a>(v: &'a Value, key: &str) -> Result<&'a Vec<Value>, AuditError> {
    req(v, key)?
        .as_array()
        .ok_or_else(|| AuditError::Parse(format!("field `{key}` must be an array")))
}

fn opt_u64_of(v: &Value, key: &str) -> Result<Option<u64>, AuditError> {
    match req(v, key)? {
        Value::Null => Ok(None),
        other => other
            .as_u64()
            .map(Some)
            .ok_or_else(|| AuditError::Parse(format!("field `{key}` must be integer or null"))),
    }
}

fn opt_f64_of(v: &Value, key: &str) -> Result<Option<f64>, AuditError> {
    match req(v, key)? {
        Value::Null => Ok(None),
        other => other
            .as_f64()
            .map(Some)
            .ok_or_else(|| AuditError::Parse(format!("field `{key}` must be number or null"))),
    }
}

fn num_f64(v: &Value, what: &str) -> Result<f64, AuditError> {
    v.as_f64()
        .ok_or_else(|| AuditError::Parse(format!("{what} must be a number")))
}

fn num_u64(v: &Value, what: &str) -> Result<u64, AuditError> {
    v.as_u64()
        .ok_or_else(|| AuditError::Parse(format!("{what} must be an unsigned integer")))
}

fn fractions_from_json(v: &Value, what: &str) -> Result<Vec<Vec<f64>>, AuditError> {
    v.as_array()
        .ok_or_else(|| AuditError::Parse(format!("{what} must be an array")))?
        .iter()
        .map(|row| {
            row.as_array()
                .ok_or_else(|| AuditError::Parse(format!("{what} rows must be arrays")))?
                .iter()
                .map(|f| num_f64(f, what))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_core::advisor::{Advisor, AdvisorConfig};
    use dblayout_core::tsgreedy::TsGreedyConfig;
    use dblayout_disksim::uniform_disks;

    fn sample_record() -> DecisionRecord {
        let catalog = dblayout_catalog::resolve_catalog("tpch:0.01").expect("catalog");
        let disks = uniform_disks(4, 200_000, 9.0, 20.0);
        let workload_sql = "-- weight: 2.5\nSELECT COUNT(*) FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey;\nSELECT COUNT(*) FROM customer;";
        let advisor = Advisor::new(&catalog, &disks);
        let cfg = AdvisorConfig {
            search: TsGreedyConfig {
                k: 6,
                threads: 1,
                ..TsGreedyConfig::default()
            },
            ..AdvisorConfig::default()
        };
        let rec = advisor
            .recommend_sql(workload_sql, &cfg)
            .expect("recommend");
        let inputs = RecordInputs {
            source: "test.recommend",
            catalog_spec: "tpch:0.01",
            workload_sql,
            constraints_text: None,
            disks: &disks,
            k: 6,
            threads: 1,
            ts_unix_ms: Some(1_700_000_000_000),
        };
        let snap = dblayout_obs::counters::snapshot();
        record_recommendation(&inputs, &rec, &[], &snap.delta(&snap))
    }

    #[test]
    fn record_round_trips_bit_exactly_through_jsonl() {
        let record = sample_record();
        let line = record.to_jsonl().expect("serialize");
        let back = DecisionRecord::from_jsonl(&line).expect("parse");
        assert_eq!(back, record);
        // Specifically: every fraction bit survives.
        for (a, b) in record
            .outcome
            .fractions
            .iter()
            .flatten()
            .zip(back.outcome.fractions.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And serialization is deterministic.
        assert_eq!(line, back.to_jsonl().expect("serialize"));
    }

    #[test]
    fn graph_snapshot_round_trips_bit_exactly() {
        let record = sample_record();
        let g = record.graph.to_graph().expect("graph");
        let snap2 = GraphSnapshot::of(&g);
        assert_eq!(snap2, record.graph);
        // The canonical graph digest matches what was recorded.
        assert_eq!(crate::digest_hex(&graph_bytes(&g)), record.digests.graph);
    }

    #[test]
    fn digests_distinguish_different_inputs() {
        let record = sample_record();
        assert_eq!(record.digests.workload.len(), 16);
        let other = crate::digest_hex(b"SELECT 1;");
        assert_ne!(record.digests.workload, other);
    }

    #[test]
    fn record_carries_cost_breakdowns() {
        let record = sample_record();
        assert_eq!(record.outcome.per_statement.len(), 2);
        assert!((record.outcome.per_statement[0].weight - 2.5).abs() < 1e-12);
        assert!(record.outcome.per_statement.iter().all(|s| s.cost_ms > 0.0));
        assert_eq!(record.outcome.per_disk.len(), 4);
        let total_transfer: f64 = record.outcome.per_disk.iter().map(|d| d.transfer_ms).sum();
        assert!(total_transfer > 0.0, "per-disk breakdown is empty");
        assert_eq!(record.kind, DecisionKind::Recommend);
        assert_eq!(record.outcome.strategy, "search");
    }

    #[test]
    fn malformed_records_fail_closed() {
        assert!(DecisionRecord::from_jsonl("{not json").is_err());
        assert!(DecisionRecord::from_jsonl("{}").is_err());
        let record = sample_record();
        let line = record.to_jsonl().expect("serialize");
        // Corrupt the kind.
        let bad = line.replace("\"recommend\"", "\"warp\"");
        assert!(DecisionRecord::from_jsonl(&bad).is_err());
    }

    #[test]
    fn disk_spec_round_trips_including_availability() {
        let spec = DiskSpec::new("d0", 98_304, 9.0, 20.0, 18.0).with_avail(Availability::Parity);
        let rec = DiskSpecRecord::of(&spec);
        assert_eq!(rec.avail, "parity");
        let back = rec.to_spec().expect("spec");
        assert_eq!(back.name, "d0");
        assert_eq!(back.avail, Availability::Parity);
        let mut bad = rec.clone();
        bad.avail = "raid60".into();
        assert!(bad.to_spec().is_err());
    }
}
