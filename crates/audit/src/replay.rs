//! The verification pass: re-derive a decision from its record alone.
//!
//! Replay does two independent checks:
//!
//! 1. **Reproducibility.** The recorded inputs (catalog spec, workload
//!    SQL, graph snapshot, search settings) are fed back through the
//!    exact advisor pipeline the decision came from. The reproduced
//!    layout must match the recorded fraction matrix *bit for bit* —
//!    TS-GREEDY is deterministic at any thread count, so any divergence
//!    means the code changed behavior since the decision (or the record
//!    was corrupted; the graph digest distinguishes the two).
//! 2. **Accuracy.** The recorded layout is run through the
//!    `dblayout-disksim` event simulator and the cost model's prediction
//!    is compared against the simulated elapsed time. The relative error
//!    is the observatory's headline number: it quantifies how much the
//!    what-if loop's estimates can be trusted, record by record.
//!
//! [`ReplayConfig::predicted_scale`] is a fault-injection hook: scaling
//! the prediction by 10× must blow past any sane error threshold, which
//! is how the e2e suite proves the threshold check actually bites.

use dblayout_catalog::resolve_catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_core::costmodel::{decompose_workload, CostModel};
use dblayout_core::tsgreedy::TsGreedyConfig;
use dblayout_disksim::{DiskSpec, Layout, SimConfig, Simulator};
use dblayout_relayout::{graph_bytes, recommend_budgeted, BudgetConfig};
use dblayout_sql::{parse_workload_file, Statement};
use serde_json::Value;

use crate::record::{DecisionKind, DecisionRecord};
use crate::{digest_hex, AuditError};

/// Replay knobs.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Search threads for the re-run; `None` re-uses the recorded count.
    /// Byte-identity must hold for any value — that is the determinism
    /// contract being verified.
    pub threads: Option<usize>,
    /// Relative error (percent) at or below which the replay counts as
    /// within threshold. Default: infinity (report, never fail).
    pub error_threshold_pct: f64,
    /// Multiplier applied to the recomputed prediction before the error
    /// comparison. 1.0 in production; a test hook for proving the
    /// threshold catches a perturbed cost model.
    pub predicted_scale: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            threads: None,
            error_threshold_pct: f64::INFINITY,
            predicted_scale: 1.0,
        }
    }
}

/// What replay found.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The replayed decision id.
    pub id: u64,
    /// `recommend` / `recommend_budgeted`.
    pub kind: String,
    /// Whether the re-run reproduced the recorded fraction matrix
    /// bit-for-bit.
    pub layout_matches: bool,
    /// Fraction cells that differ (0 when `layout_matches`).
    pub mismatched_cells: usize,
    /// Whether the stored graph snapshot still hashes to the recorded
    /// graph digest (false ⇒ the record itself was corrupted).
    pub graph_digest_ok: bool,
    /// The prediction stored in the record (ms).
    pub recorded_cost_ms: f64,
    /// The prediction recomputed now, after `predicted_scale` (ms).
    pub predicted_cost_ms: f64,
    /// Simulated workload time of the recorded layout (ms).
    pub simulated_ms: f64,
    /// `100 · |predicted − simulated| / simulated`.
    pub relative_error_pct: f64,
    /// The threshold the report was judged against (percent).
    pub error_threshold_pct: f64,
    /// `relative_error_pct <= error_threshold_pct`.
    pub within_threshold: bool,
    /// Threads the re-run searched with.
    pub threads: usize,
}

impl ReplayReport {
    /// A replay passes when the layout reproduced exactly, the record
    /// was intact, and the error is within threshold.
    pub fn passed(&self) -> bool {
        self.layout_matches && self.graph_digest_ok && self.within_threshold
    }

    /// Ordered JSON rendering for artifacts and the `audit_get` op.
    pub fn to_json(&self) -> Value {
        Value::Map(vec![
            ("id".into(), Value::U64(self.id)),
            ("kind".into(), Value::Str(self.kind.clone())),
            ("layout_matches".into(), Value::Bool(self.layout_matches)),
            (
                "mismatched_cells".into(),
                Value::U64(self.mismatched_cells as u64),
            ),
            ("graph_digest_ok".into(), Value::Bool(self.graph_digest_ok)),
            ("recorded_cost_ms".into(), Value::F64(self.recorded_cost_ms)),
            (
                "predicted_cost_ms".into(),
                Value::F64(self.predicted_cost_ms),
            ),
            ("simulated_ms".into(), Value::F64(self.simulated_ms)),
            (
                "relative_error_pct".into(),
                Value::F64(self.relative_error_pct),
            ),
            (
                "error_threshold_pct".into(),
                Value::F64(self.error_threshold_pct),
            ),
            (
                "within_threshold".into(),
                Value::Bool(self.within_threshold),
            ),
            ("passed".into(), Value::Bool(self.passed())),
            ("threads".into(), Value::U64(self.threads as u64)),
        ])
    }
}

/// Replays `record` from nothing but its own contents and reports
/// reproduction fidelity plus predicted-vs-simulated error.
pub fn replay(record: &DecisionRecord, cfg: &ReplayConfig) -> Result<ReplayReport, AuditError> {
    if record.constraints_text.is_some() {
        return Err(AuditError::Replay(
            "record was advised under placement constraints; constrained replay is not \
             supported yet — re-run the original invocation with its constraints file"
                .into(),
        ));
    }

    // Rebuild every input from the record.
    let catalog = resolve_catalog(&record.catalog_spec)
        .map_err(|e| AuditError::Replay(format!("catalog spec `{}`: {e}", record.catalog_spec)))?;
    let disks: Vec<DiskSpec> = record
        .disks
        .iter()
        .map(|d| d.to_spec())
        .collect::<Result<_, _>>()?;
    let entries = parse_workload_file(&record.workload_sql)
        .map_err(|e| AuditError::Replay(format!("recorded workload failed to parse: {e}")))?;
    let statements: Vec<(Statement, f64)> = entries
        .into_iter()
        .map(|e| (e.statement, e.weight))
        .collect();
    let advisor = Advisor::new(&catalog, &disks);
    let plans = advisor
        .plan_workload(&statements)
        .map_err(|e| AuditError::Replay(format!("recorded workload failed to plan: {e}")))?;
    let subplans = decompose_workload(&plans);
    let graph = record.graph.to_graph()?;
    let graph_digest_ok = digest_hex(&graph_bytes(&graph)) == record.digests.graph;

    let threads = cfg.threads.unwrap_or(record.config.threads).max(1);
    let search = TsGreedyConfig {
        k: record.config.k,
        threads,
        ..TsGreedyConfig::default()
    };

    // Re-run the decision's own entry point.
    let replayed: Layout = match record.kind {
        DecisionKind::Recommend => {
            let acfg = AdvisorConfig {
                search,
                ..AdvisorConfig::default()
            };
            advisor
                .recommend_prepared(plans.clone(), graph.clone(), &subplans, &acfg)
                .map_err(|e| AuditError::Replay(format!("re-recommendation failed: {e}")))?
                .layout
        }
        DecisionKind::Budgeted => {
            let deployed = record.config.deployed.as_ref().ok_or_else(|| {
                AuditError::Replay("budgeted record lacks the deployed layout matrix".into())
            })?;
            let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
            let current = Layout::from_fractions(sizes.clone(), deployed.clone())
                .map_err(|e| AuditError::Replay(format!("recorded deployed layout: {e}")))?;
            let bcfg = BudgetConfig {
                budget_blocks: record.config.budget_blocks,
                min_improvement_pct: record.config.min_improvement_pct.unwrap_or(0.0),
                search,
            };
            recommend_budgeted(&sizes, &graph, &subplans, &disks, &current, &bcfg)
                .map_err(|e| AuditError::Replay(format!("re-recommendation failed: {e}")))?
                .layout
        }
    };

    // Bit-compare the reproduced layout against the record.
    let recorded = &record.outcome.fractions;
    let mut mismatched_cells = 0usize;
    let shape_ok = replayed.object_count() == recorded.len()
        && recorded
            .iter()
            .enumerate()
            .all(|(i, row)| row.len() == replayed.fractions_of(i).len());
    if shape_ok {
        for (i, row) in recorded.iter().enumerate() {
            for (a, b) in row.iter().zip(replayed.fractions_of(i)) {
                if a.to_bits() != b.to_bits() {
                    mismatched_cells += 1;
                }
            }
        }
    } else {
        mismatched_cells = recorded.iter().map(Vec::len).sum();
        mismatched_cells = mismatched_cells.max(1);
    }
    let layout_matches = shape_ok && mismatched_cells == 0;

    // Accuracy: predicted vs simulated on the *recorded* layout (the
    // advice that would actually have been deployed).
    let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
    let recorded_layout = Layout::from_fractions(sizes, recorded.clone())
        .map_err(|e| AuditError::Replay(format!("recorded layout: {e}")))?;
    let predicted_cost_ms = cfg.predicted_scale
        * CostModel::default().workload_cost_subplans(&subplans, &recorded_layout, &disks);
    let mut sim = Simulator::new(&disks, &recorded_layout, SimConfig::default())
        .map_err(|e| AuditError::Replay(format!("recorded layout is not simulable: {e}")))?;
    let simulated_ms = sim.execute_workload(&plans).total_elapsed_ms;
    // dblayout::allow(R3, reason = "0/0 error case: both sides exactly zero means a perfectly reproduced empty cost, not a precision artifact")
    let prediction_is_empty = predicted_cost_ms == 0.0;
    let relative_error_pct = if simulated_ms > 0.0 {
        100.0 * (predicted_cost_ms - simulated_ms).abs() / simulated_ms
    } else if prediction_is_empty {
        0.0
    } else {
        f64::INFINITY
    };

    Ok(ReplayReport {
        id: record.id,
        kind: record.kind.as_str().to_string(),
        layout_matches,
        mismatched_cells,
        graph_digest_ok,
        recorded_cost_ms: record.outcome.predicted_cost_ms,
        predicted_cost_ms,
        simulated_ms,
        relative_error_pct,
        error_threshold_pct: cfg.error_threshold_pct,
        within_threshold: relative_error_pct <= cfg.error_threshold_pct,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record_budgeted, record_recommendation, RecordInputs};
    use dblayout_core::access_graph::build_access_graph;
    use dblayout_disksim::uniform_disks;

    const WORKLOAD: &str = "-- weight: 10\nSELECT COUNT(*) FROM lineitem, orders WHERE \
                            l_orderkey = o_orderkey;\n-- weight: 3\nSELECT COUNT(*) FROM \
                            partsupp, part WHERE ps_partkey = p_partkey;\nSELECT COUNT(*) \
                            FROM customer;";

    fn recommend_record() -> DecisionRecord {
        let catalog = dblayout_catalog::resolve_catalog("tpch:0.05").expect("catalog");
        let disks = uniform_disks(4, 400_000, 9.0, 20.0);
        let advisor = Advisor::new(&catalog, &disks);
        let cfg = AdvisorConfig {
            search: TsGreedyConfig {
                k: 6,
                threads: 1,
                ..TsGreedyConfig::default()
            },
            ..AdvisorConfig::default()
        };
        let rec = advisor.recommend_sql(WORKLOAD, &cfg).expect("recommend");
        let snap = dblayout_obs::counters::snapshot();
        record_recommendation(
            &RecordInputs {
                source: "test.replay",
                catalog_spec: "tpch:0.05",
                workload_sql: WORKLOAD,
                constraints_text: None,
                disks: &disks,
                k: 6,
                threads: 1,
                ts_unix_ms: None,
            },
            &rec,
            &[],
            &snap.delta(&snap),
        )
    }

    #[test]
    fn replay_reproduces_a_recommend_decision_bit_identically() {
        let record = recommend_record();
        // Round-trip through JSONL first: replay must work from the
        // serialized form alone.
        let line = record.to_jsonl().expect("serialize");
        let record = DecisionRecord::from_jsonl(&line).expect("parse");
        let report = replay(&record, &ReplayConfig::default()).expect("replay");
        assert!(report.graph_digest_ok);
        assert!(
            report.layout_matches,
            "{} cells diverged",
            report.mismatched_cells
        );
        assert!(report.simulated_ms > 0.0);
        assert!(report.relative_error_pct.is_finite());
        assert!(report.passed());
    }

    #[test]
    fn replay_is_thread_count_invariant() {
        let record = recommend_record();
        for threads in [1, 4] {
            let report = replay(
                &record,
                &ReplayConfig {
                    threads: Some(threads),
                    ..ReplayConfig::default()
                },
            )
            .expect("replay");
            assert!(report.layout_matches, "diverged at {threads} threads");
            assert_eq!(report.threads, threads);
        }
    }

    #[test]
    fn perturbed_cost_model_is_caught_by_the_threshold() {
        let record = recommend_record();
        let honest = replay(
            &record,
            &ReplayConfig {
                error_threshold_pct: 50.0,
                ..ReplayConfig::default()
            },
        )
        .expect("replay");
        // A 10× perturbation must blow any threshold the honest model
        // meets.
        let perturbed = replay(
            &record,
            &ReplayConfig {
                error_threshold_pct: 50.0,
                predicted_scale: 10.0,
                ..ReplayConfig::default()
            },
        )
        .expect("replay");
        assert!(perturbed.relative_error_pct > honest.relative_error_pct);
        assert!(!perturbed.within_threshold);
        assert!(!perturbed.passed());
    }

    #[test]
    fn budgeted_records_replay_through_the_budgeted_path() {
        let catalog = dblayout_catalog::resolve_catalog("tpch:0.05").expect("catalog");
        let disks = uniform_disks(4, 400_000, 9.0, 20.0);
        let advisor = Advisor::new(&catalog, &disks);
        let entries = parse_workload_file(WORKLOAD).expect("workload");
        let statements: Vec<(Statement, f64)> = entries
            .into_iter()
            .map(|e| (e.statement, e.weight))
            .collect();
        let plans = advisor.plan_workload(&statements).expect("plan");
        let subplans = decompose_workload(&plans);
        let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
        let graph = build_access_graph(sizes.len(), &plans);
        let current = Layout::full_striping(sizes.clone(), &disks);
        let bcfg = BudgetConfig {
            budget_blocks: None,
            min_improvement_pct: 0.0,
            search: TsGreedyConfig {
                k: 6,
                threads: 1,
                ..TsGreedyConfig::default()
            },
        };
        let outcome = recommend_budgeted(&sizes, &graph, &subplans, &disks, &current, &bcfg)
            .expect("budgeted");
        let snap = dblayout_obs::counters::snapshot();
        let record = record_budgeted(
            &RecordInputs {
                source: "test.budgeted",
                catalog_spec: "tpch:0.05",
                workload_sql: WORKLOAD,
                constraints_text: None,
                disks: &disks,
                k: 6,
                threads: 1,
                ts_unix_ms: None,
            },
            &outcome,
            &current,
            &graph,
            &subplans,
            0.0,
            &[],
            &snap.delta(&snap),
        );
        let line = record.to_jsonl().expect("serialize");
        let record = DecisionRecord::from_jsonl(&line).expect("parse");
        assert_eq!(record.kind, DecisionKind::Budgeted);
        let report = replay(&record, &ReplayConfig::default()).expect("replay");
        assert!(
            report.layout_matches,
            "{} cells diverged",
            report.mismatched_cells
        );
        assert!(report.graph_digest_ok);
    }

    #[test]
    fn constrained_records_refuse_replay_with_a_clear_error() {
        let mut record = recommend_record();
        record.constraints_text = Some("separate lineitem orders".into());
        let err = replay(&record, &ReplayConfig::default()).expect_err("must refuse");
        assert!(format!("{err}").contains("constraints"), "{err}");
    }

    #[test]
    fn corrupted_graph_is_reported_via_digest_mismatch() {
        let mut record = recommend_record();
        // Flip a node weight: the decision replays against a different
        // graph, and the digest check attributes the divergence to record
        // corruption rather than code drift.
        if let Some(w) = record.graph.node_weights.first_mut() {
            *w += 1.0;
        }
        let report = replay(&record, &ReplayConfig::default()).expect("replay");
        assert!(!report.graph_digest_ok);
        assert!(!report.passed());
    }
}
