//! The on-disk decision log: rotating JSONL segments plus a JSON index.
//!
//! Layout on disk (all under one directory):
//!
//! ```text
//! results/decisions/
//!   index.json              {"next_id":17,"segments":[...]}
//!   decisions-000001.jsonl  records 1..9   (named by first id)
//!   decisions-000010.jsonl  records 10..16
//! ```
//!
//! Properties:
//!
//! * **Monotone ids.** `index.json` persists `next_id`, so ids keep
//!   increasing across process restarts and even across full pruning —
//!   a decision id is forever unique within a log directory.
//! * **Size-bounded.** A segment is closed once appending would push it
//!   past [`LogConfig::max_segment_bytes`]; when more than
//!   [`LogConfig::max_segments`] segments exist, the oldest is deleted.
//!   The log can therefore run unattended on a long-lived server.
//! * **Crash-tolerant open.** The segment list is rebuilt by scanning the
//!   directory, not trusted from the index — a crash between the record
//!   write and the index write loses nothing. The index contributes only
//!   the id high-water mark (taken as the max of both sources).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use dblayout_obs::counters::{self, Counter};
use serde_json::{Value, ValueExt};

use crate::record::DecisionRecord;
use crate::AuditError;

/// Rotation bounds for a decision log.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Segment size at which rotation happens (a single oversized record
    /// still gets written — into its own segment).
    pub max_segment_bytes: u64,
    /// Segments kept; the oldest beyond this is deleted.
    pub max_segments: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        Self {
            max_segment_bytes: 1 << 20,
            max_segments: 8,
        }
    }
}

#[derive(Debug, Clone)]
struct Segment {
    file: String,
    first_id: u64,
    last_id: u64,
    bytes: u64,
}

/// A one-line view of a record, for listings and the `audit_list` op.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionSummary {
    /// Decision id.
    pub id: u64,
    /// Caller-supplied timestamp, when recorded.
    pub ts_unix_ms: Option<u64>,
    /// `recommend` / `recommend_budgeted`.
    pub kind: String,
    /// Origin label.
    pub source: String,
    /// Strategy attribution.
    pub strategy: String,
    /// Predicted cost of the chosen layout (ms).
    pub predicted_cost_ms: f64,
    /// Improvement over the baseline (percent).
    pub improvement_pct: f64,
    /// Git revision of the deciding build.
    pub git_rev: String,
}

impl DecisionSummary {
    fn of(r: &DecisionRecord) -> Self {
        Self {
            id: r.id,
            ts_unix_ms: r.ts_unix_ms,
            kind: r.kind.as_str().to_string(),
            source: r.source.clone(),
            strategy: r.outcome.strategy.clone(),
            predicted_cost_ms: r.outcome.predicted_cost_ms,
            improvement_pct: r.outcome.improvement_pct,
            git_rev: r.git_rev.clone(),
        }
    }

    /// Ordered JSON rendering for wire responses and CLI listings.
    pub fn to_json(&self) -> Value {
        let ts = match self.ts_unix_ms {
            Some(t) => Value::U64(t),
            None => Value::Null,
        };
        Value::Map(vec![
            ("id".into(), Value::U64(self.id)),
            ("ts_unix_ms".into(), ts),
            ("kind".into(), Value::Str(self.kind.clone())),
            ("source".into(), Value::Str(self.source.clone())),
            ("strategy".into(), Value::Str(self.strategy.clone())),
            (
                "predicted_cost_ms".into(),
                Value::F64(self.predicted_cost_ms),
            ),
            ("improvement_pct".into(), Value::F64(self.improvement_pct)),
            ("git_rev".into(), Value::Str(self.git_rev.clone())),
        ])
    }
}

/// An open decision log bound to one directory.
#[derive(Debug)]
pub struct DecisionLog {
    dir: PathBuf,
    cfg: LogConfig,
    next_id: u64,
    segments: Vec<Segment>,
}

fn io_err(path: &Path, source: std::io::Error) -> AuditError {
    AuditError::Io {
        path: path.display().to_string(),
        source,
    }
}

impl DecisionLog {
    /// Opens (creating missing parent directories) with default rotation
    /// bounds.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, AuditError> {
        Self::open_with(dir, LogConfig::default())
    }

    /// Opens a log directory, creating it (and any missing parents) if
    /// needed, and recovers the id high-water mark and segment list.
    pub fn open_with(dir: impl AsRef<Path>, cfg: LogConfig) -> Result<Self, AuditError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;

        // Id high-water mark from the index, if one survives.
        let index_path = dir.join("index.json");
        let mut next_id: u64 = 1;
        if let Ok(text) = fs::read_to_string(&index_path) {
            let value: Value = serde_json::from_str(&text).map_err(|e| {
                AuditError::Parse(format!("corrupt index `{}`: {e}", index_path.display()))
            })?;
            if let Some(n) = value.get("next_id").and_then(|v| v.as_u64()) {
                next_id = next_id.max(n);
            }
        }

        // Segment list from the directory itself (crash-safe source of
        // truth); the id range of each segment from its own lines.
        let entries = fs::read_dir(&dir).map_err(|e| io_err(&dir, e))?;
        let mut names: Vec<String> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&dir, e))?;
            let name = entry.file_name().to_string_lossy().to_string();
            if name.starts_with("decisions-") && name.ends_with(".jsonl") {
                names.push(name);
            }
        }
        names.sort();
        let mut segments = Vec::with_capacity(names.len());
        for name in names {
            let path = dir.join(&name);
            let text = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
            let mut first_id = 0u64;
            let mut last_id = 0u64;
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                let value: Value = serde_json::from_str(line).map_err(|e| {
                    AuditError::Parse(format!("corrupt segment `{}`: {e}", path.display()))
                })?;
                let id = value.get("id").and_then(|v| v.as_u64()).ok_or_else(|| {
                    AuditError::Parse(format!("record without id in `{}`", path.display()))
                })?;
                if first_id == 0 {
                    first_id = id;
                }
                last_id = last_id.max(id);
            }
            if first_id == 0 {
                continue; // empty segment file; ignore
            }
            next_id = next_id.max(last_id + 1);
            segments.push(Segment {
                file: name,
                first_id,
                last_id,
                bytes: text.len() as u64,
            });
        }
        segments.sort_by_key(|s| s.first_id);

        Ok(Self {
            dir,
            cfg,
            next_id,
            segments,
        })
    }

    /// The directory this log writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The id the next append will assign.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Appends a record, assigning it the next monotone id (also written
    /// back into `record.id`). Returns the assigned id.
    pub fn append(&mut self, record: &mut DecisionRecord) -> Result<u64, AuditError> {
        record.id = self.next_id;
        let mut line = record.to_jsonl()?;
        line.push('\n');
        let line_bytes = line.len() as u64;

        let rotate = match self.segments.last() {
            Some(seg) => seg.bytes + line_bytes > self.cfg.max_segment_bytes,
            None => true,
        };
        if rotate {
            self.segments.push(Segment {
                file: format!("decisions-{:06}.jsonl", record.id),
                first_id: record.id,
                last_id: record.id,
                bytes: 0,
            });
        }
        // `rotate` guarantees a last segment; fall back to a fresh name
        // rather than unwrap to keep this path total.
        let seg = match self.segments.last_mut() {
            Some(seg) => seg,
            None => return Err(AuditError::Parse("segment list empty after rotate".into())),
        };
        let path = self.dir.join(&seg.file);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        file.write_all(line.as_bytes())
            .map_err(|e| io_err(&path, e))?;
        seg.bytes += line_bytes;
        seg.last_id = record.id;
        self.next_id += 1;

        while self.segments.len() > self.cfg.max_segments {
            let old = self.segments.remove(0);
            let old_path = self.dir.join(&old.file);
            match fs::remove_file(&old_path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(&old_path, e)),
            }
        }
        self.write_index()?;
        counters::incr(Counter::AuditRecordsWritten);
        Ok(record.id)
    }

    /// Summaries of every retained record, id order.
    pub fn list(&self) -> Result<Vec<DecisionSummary>, AuditError> {
        let mut out = Vec::new();
        for seg in &self.segments {
            let path = self.dir.join(&seg.file);
            let text = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                out.push(DecisionSummary::of(&DecisionRecord::from_jsonl(line)?));
            }
        }
        out.sort_by_key(|s| s.id);
        Ok(out)
    }

    /// Loads one record by id. [`AuditError::NotFound`] when the id was
    /// never assigned or its segment has been pruned.
    pub fn get(&self, id: u64) -> Result<DecisionRecord, AuditError> {
        let seg = self
            .segments
            .iter()
            .find(|s| s.first_id <= id && id <= s.last_id)
            .ok_or(AuditError::NotFound(id))?;
        let path = self.dir.join(&seg.file);
        let text = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let record = DecisionRecord::from_jsonl(line)?;
            if record.id == id {
                return Ok(record);
            }
        }
        Err(AuditError::NotFound(id))
    }

    fn write_index(&self) -> Result<(), AuditError> {
        let segments = Value::Seq(
            self.segments
                .iter()
                .map(|s| {
                    Value::Map(vec![
                        ("file".into(), Value::Str(s.file.clone())),
                        ("first_id".into(), Value::U64(s.first_id)),
                        ("last_id".into(), Value::U64(s.last_id)),
                        ("bytes".into(), Value::U64(s.bytes)),
                    ])
                })
                .collect(),
        );
        let index = Value::Map(vec![
            ("next_id".into(), Value::U64(self.next_id)),
            ("segments".into(), segments),
        ]);
        let text = serde_json::to_string(&index)
            .map_err(|e| AuditError::Parse(format!("serialize index: {e}")))?;
        let path = self.dir.join("index.json");
        fs::write(&path, text).map_err(|e| io_err(&path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record_recommendation, RecordInputs};
    use dblayout_core::advisor::{Advisor, AdvisorConfig};
    use dblayout_core::tsgreedy::TsGreedyConfig;
    use dblayout_disksim::uniform_disks;

    fn temp_log_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dblayout_audit_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_record(tag: u64) -> DecisionRecord {
        let catalog = dblayout_catalog::resolve_catalog("tpch:0.01").expect("catalog");
        let disks = uniform_disks(3, 200_000, 9.0, 20.0);
        // Vary the weight per record so records are distinguishable.
        let workload_sql = format!(
            "-- weight: {}\nSELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;",
            tag + 1
        );
        let advisor = Advisor::new(&catalog, &disks);
        let cfg = AdvisorConfig {
            search: TsGreedyConfig {
                k: 4,
                threads: 1,
                ..TsGreedyConfig::default()
            },
            ..AdvisorConfig::default()
        };
        let rec = advisor
            .recommend_sql(&workload_sql, &cfg)
            .expect("recommend");
        let snap = dblayout_obs::counters::snapshot();
        record_recommendation(
            &RecordInputs {
                source: "test.log",
                catalog_spec: "tpch:0.01",
                workload_sql: &workload_sql,
                constraints_text: None,
                disks: &disks,
                k: 4,
                threads: 1,
                ts_unix_ms: Some(1_700_000_000_000 + tag),
            },
            &rec,
            &[],
            &snap.delta(&snap),
        )
    }

    #[test]
    fn append_assigns_monotone_ids_and_get_round_trips() {
        let dir = temp_log_dir("roundtrip");
        let mut log = DecisionLog::open(&dir).expect("open");
        let mut a = sample_record(0);
        let mut b = sample_record(1);
        assert_eq!(log.append(&mut a).expect("append"), 1);
        assert_eq!(log.append(&mut b).expect("append"), 2);
        assert_eq!(log.get(1).expect("get").workload_sql, a.workload_sql);
        assert_eq!(log.get(2).expect("get"), b);
        assert!(matches!(log.get(99), Err(AuditError::NotFound(99))));
        let listed = log.list().expect("list");
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].id, 1);
        assert_eq!(listed[1].id, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ids_survive_reopen() {
        let dir = temp_log_dir("reopen");
        {
            let mut log = DecisionLog::open(&dir).expect("open");
            let mut r = sample_record(0);
            assert_eq!(log.append(&mut r).expect("append"), 1);
        }
        {
            let log = DecisionLog::open(&dir).expect("reopen");
            assert_eq!(log.next_id(), 2);
            assert_eq!(log.get(1).expect("get").id, 1);
        }
        // Even with the index deleted, the segments recover the mark.
        let _ = fs::remove_file(dir.join("index.json"));
        let mut log = DecisionLog::open(&dir).expect("reopen without index");
        assert_eq!(log.next_id(), 2);
        let mut r = sample_record(1);
        assert_eq!(log.append(&mut r).expect("append"), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_bounds_segments_and_prunes_oldest() {
        let dir = temp_log_dir("rotate");
        let cfg = LogConfig {
            max_segment_bytes: 1, // every record rotates into its own segment
            max_segments: 3,
        };
        let mut log = DecisionLog::open_with(&dir, cfg).expect("open");
        for i in 0..5u64 {
            let mut r = sample_record(i);
            assert_eq!(log.append(&mut r).expect("append"), i + 1);
        }
        // Only the 3 newest records survive; ids stayed monotone.
        let listed = log.list().expect("list");
        assert_eq!(
            listed.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert!(matches!(log.get(1), Err(AuditError::NotFound(1))));
        assert!(log.get(5).is_ok());
        // Reopening after pruning continues from the high-water mark.
        let log = DecisionLog::open_with(
            &dir,
            LogConfig {
                max_segment_bytes: 1,
                max_segments: 3,
            },
        )
        .expect("reopen");
        assert_eq!(log.next_id(), 6);
        let files: Vec<_> = fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.ends_with(".jsonl"))
            .collect();
        assert_eq!(files.len(), 3, "pruned segment files linger: {files:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_creates_missing_parent_directories() {
        let dir = temp_log_dir("parents").join("deeply/nested/decisions");
        let log = DecisionLog::open(&dir).expect("open with missing parents");
        assert!(log.dir().is_dir());
        let _ = fs::remove_dir_all(dir.ancestors().nth(3).unwrap_or(&dir));
    }

    #[test]
    fn io_errors_name_the_path() {
        // Opening a log "directory" that is actually a file fails with the
        // path in the message.
        let dir = temp_log_dir("badpath");
        fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("not_a_dir");
        fs::write(&file, "x").expect("write");
        let err = DecisionLog::open(&file).expect_err("must fail");
        assert!(format!("{err}").contains("not_a_dir"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
