//! LRU buffer pool over `(object, block)` pages.
//!
//! The paper's machine had 256 MB of RAM; within-query re-reads (e.g. the
//! multiple `lineitem` accesses of TPC-H Q21) hit the cache in the real
//! system, which is exactly the effect the paper blames for its worst
//! cost-model error (§7.2: "reflects the shortcoming of the cost model in
//! capturing effects of buffering"). The simulator models it so that the
//! reproduction exhibits the same estimated-vs-actual gap.

use std::collections::HashMap;

/// A fixed-capacity LRU cache of 64 KB blocks keyed by `(object, block)`.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// key -> LRU tick of last touch
    resident: HashMap<(u32, u64), u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates a pool holding `capacity_blocks` blocks (0 disables caching).
    pub fn new(capacity_blocks: usize) -> Self {
        Self {
            capacity: capacity_blocks,
            resident: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Touches a block: returns `true` on a hit (no disk I/O needed) and
    /// `false` on a miss (the block is fetched and cached, evicting LRU).
    pub fn access(&mut self, object: u32, block: u64) -> bool {
        self.tick += 1;
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        let key = (object, block);
        if let Some(t) = self.resident.get_mut(&key) {
            *t = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.resident.len() >= self.capacity {
            // Evict the least recently used entry. A linear scan keeps the
            // structure simple; pool sizes are a few thousand entries and
            // eviction only happens once the pool is full.
            // dblayout::allow(R6, reason = "ticks are unique (incremented on every access), so min_by_key has a single minimum and iteration order cannot change the victim")
            if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &t)| t) {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(key, self.tick);
        false
    }

    /// Drops all cached blocks (a "cold run" boundary).
    pub fn clear(&mut self) {
        self.resident.clear();
    }

    /// Blocks currently cached.
    pub fn resident_blocks(&self) -> usize {
        self.resident.len()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut p = BufferPool::new(10);
        assert!(!p.access(1, 5));
        assert!(p.access(1, 5));
        assert_eq!(p.stats(), (1, 1));
    }

    #[test]
    fn capacity_zero_never_hits() {
        let mut p = BufferPool::new(0);
        assert!(!p.access(1, 5));
        assert!(!p.access(1, 5));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut p = BufferPool::new(2);
        p.access(0, 0);
        p.access(0, 1);
        p.access(0, 0); // refresh block 0
        p.access(0, 2); // evicts block 1
        assert!(
            p.access(0, 0),
            "block 0 was refreshed, must still be resident"
        );
        assert!(!p.access(0, 1), "block 1 was LRU, must be gone");
    }

    #[test]
    fn clear_empties_pool() {
        let mut p = BufferPool::new(10);
        p.access(1, 1);
        p.clear();
        assert_eq!(p.resident_blocks(), 0);
        assert!(!p.access(1, 1));
    }

    #[test]
    fn distinct_objects_do_not_collide() {
        let mut p = BufferPool::new(10);
        p.access(1, 7);
        assert!(!p.access(2, 7));
        assert!(p.access(1, 7));
    }
}
