//! I/O trace generation from non-blocking sub-plans.
//!
//! Within one sub-plan every object access is pipelined with every other
//! (merge joins, nested loops, RID lookups), so their block streams
//! *interleave* — this interleaving is precisely what creates the random
//! I/O the paper's layout advisor optimizes away. Streams are merged
//! proportionally to their block counts (the same assumption as the paper's
//! cost model, §5: "objects that are co-accessed on a disk drive … are
//! accessed at a rate proportional to the number of blocks accessed of each
//! object"), in turns of `chunk` blocks to model read-ahead.

use dblayout_planner::{AccessKind, Subplan};

/// One block-sized I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRequest {
    /// Catalog object id.
    pub object: u32,
    /// Logical block within the object.
    pub block: u64,
    /// Write (vs. read).
    pub write: bool,
}

/// Logical block sequence for one access of `blocks` blocks into an object
/// of `size` blocks.
fn access_pattern(kind: AccessKind, blocks: u64, size: u64, seed: u64) -> Vec<u64> {
    if size == 0 {
        return Vec::new();
    }
    // More blocks accessed than the object holds means re-reads (e.g. the
    // multiple lineitem accesses of TPC-H Q21 merged into one sub-plan
    // entry): patterns wrap around, so the buffer pool sees true re-reads.
    match kind {
        AccessKind::SequentialRead => (0..blocks).map(|k| k % size).collect(),
        AccessKind::RandomRead => scattered(blocks, size, seed),
        AccessKind::Write => {
            // Full-object writes (bulk loads, full-table updates) stream
            // sequentially; partial writes scatter like the updates they are.
            if blocks * 2 >= size {
                (0..blocks).map(|k| k % size).collect()
            } else {
                scattered(blocks, size, seed)
            }
        }
    }
}

/// `count` pseudo-random block indices in `[0, size)`: a strided walk with
/// a stride coprime to `size`, so indices only repeat after a full cycle
/// (`count > size` wraps — re-reads). Deterministic for a given seed.
fn scattered(count: u64, size: u64, seed: u64) -> Vec<u64> {
    if size == 0 {
        return Vec::new();
    }
    let mut stride = (size as f64 * 0.618_034).round() as u64 % size; // dblayout::allow(R8, reason = "golden-ratio stride seed: value is in [0, size], any nearby integer works")
    stride = stride.max(1);
    while gcd(stride, size) != 1 {
        stride += 1;
        if stride >= size {
            stride = 1;
            break;
        }
    }
    let start = seed % size;
    (0..count).map(|k| (start + k * stride) % size).collect()
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Builds the interleaved request trace of one sub-plan.
///
/// * `object_sizes[id]` gives each catalog object's size in blocks;
/// * `chunk` is the read-ahead unit: each stream emits up to `chunk`
///   consecutive requests per turn before another stream takes over;
/// * `seed` makes scattered patterns deterministic per statement.
///
/// A sub-plan with a single access degenerates to that access's pattern —
/// fully sequential for a scan, which is the I/O-parallel best case.
pub fn subplan_trace(
    subplan: &Subplan,
    object_sizes: &[u64],
    chunk: u64,
    seed: u64,
) -> Vec<BlockRequest> {
    let chunk = chunk.max(1);
    struct Stream {
        object: u32,
        write: bool,
        pattern: Vec<u64>,
        emitted: usize,
    }
    let mut streams: Vec<Stream> = subplan
        .accesses
        .iter()
        .enumerate()
        .filter(|(_, a)| a.blocks > 0)
        .map(|(i, a)| {
            let size = object_sizes[a.object.index()];
            Stream {
                object: a.object.0,
                write: a.kind == AccessKind::Write,
                pattern: access_pattern(a.kind, a.blocks, size, seed.wrapping_add(i as u64 * 7919)),
                emitted: 0,
            }
        })
        .collect();

    let total: usize = streams.iter().map(|s| s.pattern.len()).sum();
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        // Pick the stream that is proportionally furthest behind.
        let mut pick = usize::MAX;
        let mut best = f64::INFINITY;
        for (i, s) in streams.iter().enumerate() {
            if s.emitted >= s.pattern.len() {
                continue;
            }
            let progress = s.emitted as f64 / s.pattern.len() as f64;
            if progress < best {
                best = progress;
                pick = i;
            }
        }
        let s = &mut streams[pick];
        let take = chunk.min((s.pattern.len() - s.emitted) as u64);
        for _ in 0..take {
            out.push(BlockRequest {
                object: s.object,
                block: s.pattern[s.emitted],
                write: s.write,
            });
            s.emitted += 1;
        }
    }
    out
}

/// Merges several request streams into one, proportionally to their
/// lengths (the same progress rule as sub-plan interleaving): used by the
/// simulator's concurrent-execution mode, where whole statements' traces
/// time-share the disks.
pub fn merge_proportional(streams: Vec<Vec<BlockRequest>>) -> Vec<BlockRequest> {
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut emitted = vec![0usize; streams.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let mut pick = usize::MAX;
        let mut best = f64::INFINITY;
        for (i, s) in streams.iter().enumerate() {
            if emitted[i] >= s.len() {
                continue;
            }
            let progress = emitted[i] as f64 / s.len() as f64;
            if progress < best {
                best = progress;
                pick = i;
            }
        }
        out.push(streams[pick][emitted[pick]]);
        emitted[pick] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::ObjectId;
    use dblayout_planner::ObjectAccess;

    fn sub(accesses: Vec<(u32, u64, AccessKind)>) -> Subplan {
        let mut s = Subplan::default();
        for (o, b, k) in accesses {
            s.add(ObjectAccess {
                object: ObjectId(o),
                blocks: b,
                rows: b as f64,
                kind: k,
            });
        }
        s
    }

    #[test]
    fn single_sequential_stream_is_in_order() {
        let s = sub(vec![(0, 10, AccessKind::SequentialRead)]);
        let t = subplan_trace(&s, &[100], 4, 1);
        assert_eq!(t.len(), 10);
        for (k, r) in t.iter().enumerate() {
            assert_eq!(r.block, k as u64);
            assert!(!r.write);
        }
    }

    #[test]
    fn two_streams_interleave_proportionally() {
        let s = sub(vec![
            (0, 80, AccessKind::SequentialRead),
            (1, 20, AccessKind::SequentialRead),
        ]);
        let t = subplan_trace(&s, &[100, 100], 1, 1);
        assert_eq!(t.len(), 100);
        // In every prefix, stream 0 leads by roughly its 4:1 share.
        let halfway: Vec<_> = t.iter().take(50).collect();
        let o0 = halfway.iter().filter(|r| r.object == 0).count();
        assert!((35..=45).contains(&o0), "got {o0}");
        // Interleaved, not concatenated: both objects appear early.
        assert!(t.iter().take(10).any(|r| r.object == 1));
    }

    #[test]
    fn chunking_groups_consecutive_requests() {
        let s = sub(vec![
            (0, 40, AccessKind::SequentialRead),
            (1, 40, AccessKind::SequentialRead),
        ]);
        let t = subplan_trace(&s, &[100, 100], 8, 1);
        // Runs of the same object should be 8 long.
        let mut run = 1;
        let mut min_run = usize::MAX;
        for w in t.windows(2) {
            if w[0].object == w[1].object {
                run += 1;
            } else {
                min_run = min_run.min(run);
                run = 1;
            }
        }
        assert!(min_run >= 8, "min run {min_run}");
    }

    #[test]
    fn scattered_indices_distinct_and_in_range() {
        let idx = scattered(50, 1000, 42);
        assert_eq!(idx.len(), 50);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        assert!(idx.iter().all(|&i| i < 1000));
    }

    #[test]
    fn scattered_requests_more_than_size_wrap() {
        let idx = scattered(500, 100, 7);
        assert_eq!(idx.len(), 500);
        // Exactly 5 full cycles over the 100 blocks.
        assert_eq!(idx.iter().filter(|&&i| i == idx[0]).count(), 5);
    }

    #[test]
    fn random_read_access_is_scattered() {
        let s = sub(vec![(0, 20, AccessKind::RandomRead)]);
        let t = subplan_trace(&s, &[10_000], 1, 3);
        // Not the sequential prefix.
        assert!(t.iter().any(|r| r.block >= 20));
    }

    #[test]
    fn full_object_write_is_sequential() {
        let s = sub(vec![(0, 100, AccessKind::Write)]);
        let t = subplan_trace(&s, &[100], 1, 3);
        assert!(t.iter().all(|r| r.write));
        assert_eq!(t[0].block, 0);
        assert_eq!(t[99].block, 99);
    }

    #[test]
    fn trace_is_deterministic() {
        let s = sub(vec![
            (0, 30, AccessKind::RandomRead),
            (1, 10, AccessKind::SequentialRead),
        ]);
        let a = subplan_trace(&s, &[500, 500], 2, 9);
        let b = subplan_trace(&s, &[500, 500], 2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn rereads_wrap_around_object() {
        let s = sub(vec![(0, 100, AccessKind::SequentialRead)]);
        let t = subplan_trace(&s, &[30], 1, 1);
        assert_eq!(t.len(), 100);
        assert_eq!(t[30].block, 0, "second pass restarts at block 0");
    }
}
