#![warn(missing_docs)]

//! Disk subsystem substrate: drive models, database layouts, block
//! allocation, and an event-level I/O simulator.
//!
//! The paper's evaluation (§7) ran on a machine with 8 heterogeneous
//! physical disks and measured *actual* query execution times on Microsoft
//! SQL Server 2000. This crate replaces that testbed:
//!
//! * [`DiskSpec`] — drive characteristics exactly as the paper's problem
//!   formulation needs them (§2.1): capacity, average seek time, read and
//!   write transfer rates, and an availability class;
//! * [`Layout`] — the paper's Definition 1: an `n × m` fraction matrix
//!   `x[i][j]` assigning each object a share of each disk, with Definition
//!   2's validity checks and the FULL STRIPING constructor (footnote 1:
//!   fractions proportional to transfer rates);
//! * [`allocation`] — block-granularity placement (§2.1: "allocation is
//!   done … at the granularity of a block"): round-robin proportional fill
//!   mapping every logical object block to a `(disk, address)`;
//! * [`sim`] — the execution oracle: walks a physical plan's non-blocking
//!   sub-plans, interleaves the co-accessed objects' block streams, charges
//!   per-disk seek + transfer time, models an LRU buffer pool, read-ahead
//!   and a CPU component, and reports elapsed time per statement. It is
//!   deliberately *richer* than the advisor's analytic cost model so that
//!   cost-model validation (paper Table 2, §7.2) is a real comparison.

pub mod allocation;
pub mod bufferpool;
pub mod disk;
pub mod layout;
pub mod sim;
pub mod trace;

pub use allocation::AllocationMap;
pub use bufferpool::BufferPool;
pub use disk::{paper_disks, tempdb_disk, uniform_disks, Availability, DiskSpec};
pub use layout::{apportion, apportion_into, Layout, LayoutError};
pub use sim::{SimConfig, SimReport, Simulator};
