//! Block-granularity allocation of objects onto disks.
//!
//! Paper §2.1: "the storage engine component … distributes the pages of the
//! object in a particular manner (e.g., round robin fashion) across the disk
//! drives. The allocation is done not at the granularity of a page, but at
//! the granularity of a block". We reproduce SQL Server's proportional-fill
//! round robin: logical block `k` of an object goes to the eligible disk
//! with the largest accumulated deficit (a Bresenham walk over the fraction
//! row), and an object's blocks on a given disk occupy a contiguous address
//! run within that disk's file.

use crate::layout::Layout;

/// Where one logical object block lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLocation {
    /// Disk index.
    pub disk: u16,
    /// Block address within the disk.
    pub addr: u64,
}

/// Materialized mapping from `(object, logical block)` to disk addresses.
#[derive(Debug, Clone)]
pub struct AllocationMap {
    /// `map[i][k]` = location of logical block `k` of object `i`.
    map: Vec<Vec<BlockLocation>>,
    /// Blocks used per disk.
    disk_used: Vec<u64>,
}

impl AllocationMap {
    /// Allocates every object of `layout` onto its disks.
    ///
    /// Objects are placed in object-id order; per disk, each object's blocks
    /// form one contiguous run starting at the disk's current fill point.
    /// Within an object, logical block order round-robins across its disks
    /// proportionally to the fractions, so a parallel scan reads
    /// sequentially on every disk.
    pub fn build(layout: &Layout) -> Self {
        let m = layout.disk_count();
        let mut disk_used = vec![0u64; m];
        let mut map = Vec::with_capacity(layout.object_count());

        for i in 0..layout.object_count() {
            let size = layout.object_size(i);
            let per_disk = layout.blocks_on(i);
            // Run start for this object on each disk.
            let run_start: Vec<u64> = (0..m).map(|j| disk_used[j]).collect();
            let mut next_in_run = vec![0u64; m];
            // Bresenham proportional fill: accumulate fraction credit, pick
            // the disk with the largest credit that still has quota left.
            let fracs = layout.fractions_of(i);
            let mut credit = vec![0.0f64; m];
            let mut locations = Vec::with_capacity(size as usize);
            for _k in 0..size {
                for j in 0..m {
                    credit[j] += fracs[j];
                }
                let mut pick = None;
                let mut best = f64::NEG_INFINITY;
                for j in 0..m {
                    if next_in_run[j] < per_disk[j] && credit[j] > best {
                        best = credit[j];
                        pick = Some(j);
                    }
                }
                let j = pick.expect("apportioned quotas cover the object");
                credit[j] -= 1.0;
                locations.push(BlockLocation {
                    disk: j as u16,
                    addr: run_start[j] + next_in_run[j],
                });
                next_in_run[j] += 1;
            }
            for j in 0..m {
                disk_used[j] += per_disk[j];
            }
            map.push(locations);
        }
        Self { map, disk_used }
    }

    /// Location of logical block `k` of object `i`.
    pub fn locate(&self, object: usize, block: u64) -> BlockLocation {
        self.map[object][block as usize]
    }

    /// Number of blocks allocated on each disk.
    pub fn disk_used(&self) -> &[u64] {
        &self.disk_used
    }

    /// Number of objects mapped.
    pub fn object_count(&self) -> usize {
        self.map.len()
    }

    /// Size (blocks) of an object.
    pub fn object_size(&self, object: usize) -> u64 {
        self.map[object].len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::uniform_disks;
    use crate::layout::Layout;

    #[test]
    fn every_block_mapped_runs_contiguous() {
        let disks = uniform_disks(3, 10_000, 10.0, 20.0);
        let layout = Layout::full_striping(vec![300, 150], &disks);
        let alloc = AllocationMap::build(&layout);
        assert_eq!(alloc.object_size(0), 300);
        assert_eq!(alloc.object_size(1), 150);
        // Per-disk addresses of object 0 form a contiguous increasing run.
        for disk in 0..3u16 {
            let addrs: Vec<u64> = (0..300)
                .map(|k| alloc.locate(0, k))
                .filter(|l| l.disk == disk)
                .map(|l| l.addr)
                .collect();
            assert_eq!(addrs.len(), 100);
            for (i, w) in addrs.windows(2).enumerate() {
                assert_eq!(w[1], w[0] + 1, "gap at {i}");
            }
        }
    }

    #[test]
    fn round_robin_interleaves_logical_order() {
        let disks = uniform_disks(2, 10_000, 10.0, 20.0);
        let layout = Layout::full_striping(vec![10], &disks);
        let alloc = AllocationMap::build(&layout);
        // Equal fractions: logical blocks alternate between the two disks.
        let pattern: Vec<u16> = (0..10).map(|k| alloc.locate(0, k).disk).collect();
        let d0 = pattern.iter().filter(|&&d| d == 0).count();
        assert_eq!(d0, 5);
        // No disk gets two consecutive logical blocks under a 50/50 split.
        assert!(pattern.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn objects_stack_on_disks() {
        let disks = uniform_disks(2, 10_000, 10.0, 20.0);
        let layout = Layout::full_striping(vec![10, 10], &disks);
        let alloc = AllocationMap::build(&layout);
        // Object 1's run on disk 0 starts after object 0's.
        let o0_max = (0..10)
            .map(|k| alloc.locate(0, k))
            .filter(|l| l.disk == 0)
            .map(|l| l.addr)
            .max()
            .unwrap();
        let o1_min = (0..10)
            .map(|k| alloc.locate(1, k))
            .filter(|l| l.disk == 0)
            .map(|l| l.addr)
            .min()
            .unwrap();
        assert!(o1_min > o0_max);
        assert_eq!(alloc.disk_used(), &[10, 10]);
    }

    #[test]
    fn single_disk_placement_is_fully_sequential() {
        let _disks = uniform_disks(2, 10_000, 10.0, 20.0);
        let mut layout = Layout::empty(vec![50], 2);
        layout.place(0, &[(1, 1.0)]);
        let alloc = AllocationMap::build(&layout);
        for k in 0..50 {
            let l = alloc.locate(0, k);
            assert_eq!(l.disk, 1);
            assert_eq!(l.addr, k);
        }
    }

    #[test]
    fn proportional_fill_skews_toward_weight() {
        let _disks = uniform_disks(2, 100_000, 10.0, 20.0);
        let mut layout = Layout::empty(vec![100], 2);
        layout.place(0, &[(0, 3.0), (1, 1.0)]);
        let alloc = AllocationMap::build(&layout);
        let d0 = (0..100).filter(|&k| alloc.locate(0, k).disk == 0).count();
        assert_eq!(d0, 75);
    }
}
