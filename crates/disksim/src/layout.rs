//! Database layout: the paper's Definition 1 and 2.
//!
//! A layout is "an assignment of each database object to a set of disk
//! drives along with a specification of the fraction of the object that is
//! allocated to each disk drive" — logically an `n × m` matrix of fractions
//! `x[i][j]` with the three validity constraints of §2.1:
//!
//! 1. `x[i][j] ≥ 0`;
//! 2. `Σ_j x[i][j] = 1` for every object (allocated in its entirety);
//! 3. `Σ_i |R_i|·x[i][j] ≤ C_j` for every disk (capacity).

use std::fmt;

use crate::disk::DiskSpec;

/// Why a layout is invalid (paper Definition 2 violations).
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutError {
    /// Some `x[i][j]` is negative or non-finite.
    BadFraction {
        /// Object index.
        object: usize,
        /// Disk index.
        disk: usize,
        /// The offending value.
        value: f64,
    },
    /// An object's fractions do not sum to 1.
    NotFullyAllocated {
        /// Object index.
        object: usize,
        /// Sum of its fractions.
        sum: f64,
    },
    /// A disk's capacity is exceeded.
    OverCapacity {
        /// Disk index.
        disk: usize,
        /// Blocks placed there.
        used: u64,
        /// Its capacity.
        capacity: u64,
    },
    /// Matrix dimensions do not match the disk set.
    DimensionMismatch {
        /// Columns in the layout.
        layout_disks: usize,
        /// Drives supplied.
        actual_disks: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::BadFraction {
                object,
                disk,
                value,
            } => {
                write!(f, "x[{object}][{disk}] = {value} is not a valid fraction")
            }
            LayoutError::NotFullyAllocated { object, sum } => {
                write!(f, "object {object} allocates {sum} of itself (must be 1)")
            }
            LayoutError::OverCapacity {
                disk,
                used,
                capacity,
            } => {
                write!(f, "disk {disk} holds {used} blocks > capacity {capacity}")
            }
            LayoutError::DimensionMismatch {
                layout_disks,
                actual_disks,
            } => write!(
                f,
                "layout has {layout_disks} disk columns but {actual_disks} drives were supplied"
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Splits `size` blocks across weights by largest-remainder apportionment so
/// the shares sum exactly to `size`. Weights must be non-negative; an
/// all-zero weight vector yields all-zero shares.
pub fn apportion(size: u64, fractions: &[f64]) -> Vec<u64> {
    let mut shares = Vec::with_capacity(fractions.len());
    apportion_into(size, fractions, &mut shares, &mut Vec::new());
    shares
}

/// [`apportion`] into caller-owned buffers: `shares` receives the result
/// (cleared first), `scratch` holds the remainder table. The search's
/// incremental validity check runs this once per moved object per
/// candidate, so the allocation-free form matters; the arithmetic is the
/// allocating path's, bit for bit ([`apportion`] delegates here).
pub fn apportion_into(
    size: u64,
    fractions: &[f64],
    shares: &mut Vec<u64>,
    scratch: &mut Vec<(usize, f64)>,
) {
    shares.clear();
    scratch.clear();
    let total: f64 = fractions.iter().sum();
    if total <= 0.0 || size == 0 {
        shares.resize(fractions.len(), 0);
        return;
    }
    let mut assigned = 0u64;
    for (j, &w) in fractions.iter().enumerate() {
        let exact = size as f64 * (w / total);
        let floor = exact.floor() as u64; // dblayout::allow(R8, reason = "largest-remainder apportionment: exact is in [0, size], flooring is the method")
        shares.push(floor);
        assigned += floor;
        scratch.push((j, exact - floor as f64));
    }
    // Hand out the leftover blocks to the largest remainders (ties by index
    // for determinism).
    scratch.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut left = size - assigned;
    for &(j, _) in scratch.iter() {
        if left == 0 {
            break;
        }
        shares[j] += 1;
        left -= 1;
    }
}

/// A database layout (paper Definition 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// `fractions[i][j]` = share of object `i` on disk `j`.
    fractions: Vec<Vec<f64>>,
    /// `|R_i|` in blocks.
    object_sizes: Vec<u64>,
}

impl Layout {
    /// An all-zero (entirely unallocated — invalid) layout to be filled via
    /// [`Layout::place`].
    pub fn empty(object_sizes: Vec<u64>, disks: usize) -> Self {
        let n = object_sizes.len();
        Self {
            fractions: vec![vec![0.0; disks]; n],
            object_sizes,
        }
    }

    /// Rebuilds a layout from raw fraction rows, adopting each row
    /// bit-for-bit with **no renormalization** — the exact inverse of
    /// reading [`Layout::fractions_of`] row by row. This is what a
    /// serialized layout (e.g. a `dblayout-audit` decision record) needs
    /// to round-trip bit-identically; [`Layout::place`] would divide by
    /// the row sum and perturb the last bits. Only the matrix shape is
    /// checked here; call [`Layout::validate`] for Definition-2 validity.
    pub fn from_fractions(
        object_sizes: Vec<u64>,
        fractions: Vec<Vec<f64>>,
    ) -> Result<Self, LayoutError> {
        if fractions.len() != object_sizes.len() {
            return Err(LayoutError::DimensionMismatch {
                layout_disks: fractions.len(),
                actual_disks: object_sizes.len(),
            });
        }
        let disks = fractions.first().map_or(0, |r| r.len());
        for row in &fractions {
            if row.len() != disks {
                return Err(LayoutError::DimensionMismatch {
                    layout_disks: row.len(),
                    actual_disks: disks,
                });
            }
        }
        Ok(Self {
            fractions,
            object_sizes,
        })
    }

    /// FULL STRIPING: every object striped across all drives with fractions
    /// proportional to read transfer rates (paper §6 footnote 1).
    pub fn full_striping(object_sizes: Vec<u64>, disks: &[DiskSpec]) -> Self {
        let total_rate: f64 = disks.iter().map(|d| d.read_mb_s).sum();
        let row: Vec<f64> = disks.iter().map(|d| d.read_mb_s / total_rate).collect();
        let n = object_sizes.len();
        Self {
            fractions: vec![row; n],
            object_sizes,
        }
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.object_sizes.len()
    }

    /// Number of disk columns.
    pub fn disk_count(&self) -> usize {
        self.fractions.first().map_or(0, |r| r.len())
    }

    /// `|R_i|` in blocks.
    pub fn object_size(&self, object: usize) -> u64 {
        self.object_sizes[object]
    }

    /// All object sizes.
    pub fn object_sizes(&self) -> &[u64] {
        &self.object_sizes
    }

    /// `x[i][j]`.
    pub fn fraction(&self, object: usize, disk: usize) -> f64 {
        self.fractions[object][disk]
    }

    /// The full fraction row of an object.
    pub fn fractions_of(&self, object: usize) -> &[f64] {
        &self.fractions[object]
    }

    /// Places `object` on `disks` with the given relative weights
    /// (normalized internally). Weights of zero drop a disk.
    ///
    /// # Panics
    /// Panics if all weights are zero or any is negative.
    pub fn place(&mut self, object: usize, disks: &[(usize, f64)]) {
        let total: f64 = disks.iter().map(|&(_, w)| w).sum();
        assert!(
            total > 0.0 && disks.iter().all(|&(_, w)| w >= 0.0),
            "placement weights must be non-negative with a positive sum"
        );
        for f in self.fractions[object].iter_mut() {
            *f = 0.0;
        }
        for &(j, w) in disks {
            self.fractions[object][j] = w / total;
        }
    }

    /// Places `object` across `disks` proportionally to their read rates
    /// (the footnote-1 rule used by both FULL STRIPING and TS-GREEDY).
    /// Allocation-free — the search's candidate loop rewrites rows with
    /// this — and bit-identical to `place` with `(id, read_mb_s)` weights.
    ///
    /// # Panics
    /// Panics if the rate sum is not positive or any rate is negative.
    pub fn place_proportional(&mut self, object: usize, disk_ids: &[usize], specs: &[DiskSpec]) {
        let total: f64 = disk_ids.iter().map(|&j| specs[j].read_mb_s).sum();
        assert!(
            total > 0.0 && disk_ids.iter().all(|&j| specs[j].read_mb_s >= 0.0),
            "placement weights must be non-negative with a positive sum"
        );
        for f in self.fractions[object].iter_mut() {
            *f = 0.0;
        }
        for &j in disk_ids {
            self.fractions[object][j] = specs[j].read_mb_s / total;
        }
    }

    /// Overwrites `object`'s fraction row with the same row of `other`.
    ///
    /// This is the restore half of the search's scratch-trial idiom: a
    /// candidate move rewrites one group's rows in a reused layout, and
    /// this puts the base placement back without reallocating.
    ///
    /// # Panics
    /// Panics if the two layouts have different disk counts.
    pub fn copy_row_from(&mut self, other: &Layout, object: usize) {
        self.fractions[object].copy_from_slice(&other.fractions[object]);
    }

    /// The disks holding any part of `object`.
    pub fn disks_of(&self, object: usize) -> Vec<usize> {
        self.fractions[object]
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > 0.0)
            .map(|(j, _)| j)
            .collect()
    }

    /// Exact block counts of `object` per disk (largest-remainder
    /// apportionment of `|R_i|` over the fraction row; sums to `|R_i|`).
    pub fn blocks_on(&self, object: usize) -> Vec<u64> {
        apportion(self.object_sizes[object], &self.fractions[object])
    }

    /// [`Layout::blocks_on`] into caller-owned buffers — see
    /// [`apportion_into`] for the buffer contract and identity guarantee.
    pub fn blocks_on_into(
        &self,
        object: usize,
        shares: &mut Vec<u64>,
        scratch: &mut Vec<(usize, f64)>,
    ) {
        apportion_into(
            self.object_sizes[object],
            &self.fractions[object],
            shares,
            scratch,
        );
    }

    /// Total blocks each disk holds under this layout.
    pub fn disk_usage(&self) -> Vec<u64> {
        let m = self.disk_count();
        let mut usage = vec![0u64; m];
        for i in 0..self.object_count() {
            for (j, b) in self.blocks_on(i).into_iter().enumerate() {
                usage[j] += b;
            }
        }
        usage
    }

    /// The per-row half of [`Layout::validate`] for one object.
    fn row_error(&self, object: usize) -> Option<LayoutError> {
        let mut sum = 0.0;
        for (j, &f) in self.fractions[object].iter().enumerate() {
            if !f.is_finite() || !(0.0..=1.0 + 1e-9).contains(&f) {
                return Some(LayoutError::BadFraction {
                    object,
                    disk: j,
                    value: f,
                });
            }
            sum += f;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Some(LayoutError::NotFullyAllocated { object, sum });
        }
        None
    }

    /// Whether `object`'s row alone passes Definition 2 (valid fractions
    /// summing to 1). The same check [`Layout::validate`] applies per row,
    /// exposed so incremental validity checks (which re-examine only the
    /// rows a candidate move rewrote) agree with the full scan bit for bit.
    pub fn row_is_valid(&self, object: usize) -> bool {
        self.row_error(object).is_none()
    }

    /// Checks Definition 2 validity against `disks`.
    pub fn validate(&self, disks: &[DiskSpec]) -> Result<(), LayoutError> {
        if self.disk_count() != disks.len() {
            return Err(LayoutError::DimensionMismatch {
                layout_disks: self.disk_count(),
                actual_disks: disks.len(),
            });
        }
        for i in 0..self.object_count() {
            if let Some(e) = self.row_error(i) {
                return Err(e);
            }
        }
        for (j, (&used, spec)) in self.disk_usage().iter().zip(disks).enumerate() {
            if used > spec.capacity_blocks {
                return Err(LayoutError::OverCapacity {
                    disk: j,
                    used,
                    capacity: spec.capacity_blocks,
                });
            }
        }
        Ok(())
    }

    /// Blocks that must be written to new locations to turn `from` into
    /// `self` — the data-movement metric for the paper's incremental
    /// manageability constraint (§2.3.1).
    pub fn data_movement_from(&self, from: &Layout) -> u64 {
        assert_eq!(
            self.object_sizes, from.object_sizes,
            "same objects required"
        );
        let mut moved = 0u64;
        for i in 0..self.object_count() {
            let new = self.blocks_on(i);
            let old = from.blocks_on(i);
            for (n, o) in new.iter().zip(old.iter()) {
                moved += n.saturating_sub(*o);
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::uniform_disks;

    fn disks3() -> Vec<DiskSpec> {
        uniform_disks(3, 1_000, 10.0, 20.0)
    }

    #[test]
    fn apportion_into_matches_apportion_with_reused_buffers() {
        let mut shares = Vec::new();
        let mut scratch = Vec::new();
        for size in [0u64, 1, 7, 100, 999] {
            for fractions in [vec![0.3, 0.3, 0.4], vec![0.0, 0.0], vec![1.0]] {
                apportion_into(size, &fractions, &mut shares, &mut scratch);
                assert_eq!(shares, apportion(size, &fractions), "size={size}");
            }
        }
    }

    #[test]
    fn blocks_on_into_matches_blocks_on() {
        let disks = disks3();
        let layout = Layout::full_striping(vec![300, 151, 0], &disks);
        let (mut shares, mut scratch) = (Vec::new(), Vec::new());
        for i in 0..layout.object_count() {
            layout.blocks_on_into(i, &mut shares, &mut scratch);
            assert_eq!(shares, layout.blocks_on(i));
        }
    }

    #[test]
    fn apportion_sums_exactly() {
        for size in [0u64, 1, 7, 100, 999] {
            let shares = apportion(size, &[0.3, 0.3, 0.4]);
            assert_eq!(shares.iter().sum::<u64>(), size);
        }
    }

    #[test]
    fn apportion_zero_weights() {
        assert_eq!(apportion(100, &[0.0, 0.0]), vec![0, 0]);
    }

    #[test]
    fn apportion_respects_proportions() {
        let shares = apportion(100, &[1.0, 3.0]);
        assert_eq!(shares, vec![25, 75]);
    }

    #[test]
    fn full_striping_is_valid_and_uniform_on_identical_disks() {
        let disks = disks3();
        let l = Layout::full_striping(vec![300, 150], &disks);
        l.validate(&disks).unwrap();
        assert_eq!(l.blocks_on(0), vec![100, 100, 100]);
        assert_eq!(l.blocks_on(1), vec![50, 50, 50]);
    }

    #[test]
    fn full_striping_proportional_to_rates() {
        let mut disks = disks3();
        disks[0].read_mb_s = 40.0; // twice as fast as the others
        let l = Layout::full_striping(vec![400], &disks);
        let b = l.blocks_on(0);
        assert_eq!(b.iter().sum::<u64>(), 400);
        assert_eq!(b[0], 200);
        assert_eq!(b[1], 100);
    }

    #[test]
    fn place_normalizes_weights() {
        let disks = disks3();
        let mut l = Layout::empty(vec![300], 3);
        l.place(0, &[(0, 2.0), (2, 2.0)]);
        l.validate(&disks).unwrap();
        assert_eq!(l.disks_of(0), vec![0, 2]);
        assert_eq!(l.blocks_on(0), vec![150, 0, 150]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn place_rejects_zero_weights() {
        Layout::empty(vec![1], 2).place(0, &[(0, 0.0)]);
    }

    #[test]
    fn validate_catches_unallocated() {
        let l = Layout::empty(vec![10], 3);
        assert!(matches!(
            l.validate(&disks3()),
            Err(LayoutError::NotFullyAllocated { .. })
        ));
    }

    #[test]
    fn validate_catches_over_capacity() {
        let disks = disks3(); // 1000 blocks each
        let mut l = Layout::empty(vec![5_000], 3);
        l.place(0, &[(0, 1.0)]);
        assert!(matches!(
            l.validate(&disks),
            Err(LayoutError::OverCapacity { disk: 0, .. })
        ));
    }

    #[test]
    fn validate_catches_dimension_mismatch() {
        let l = Layout::empty(vec![10], 2);
        assert!(matches!(
            l.validate(&disks3()),
            Err(LayoutError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn data_movement_zero_for_same_layout() {
        let disks = disks3();
        let l = Layout::full_striping(vec![300, 150], &disks);
        assert_eq!(l.data_movement_from(&l), 0);
    }

    #[test]
    fn data_movement_counts_new_placement() {
        let disks = disks3();
        let a = Layout::full_striping(vec![300], &disks); // 100 each
        let mut b = Layout::empty(vec![300], 3);
        b.place(0, &[(0, 1.0)]); // all 300 on disk 0
                                 // 200 blocks must move onto disk 0.
        assert_eq!(b.data_movement_from(&a), 200);
        // And back: 100 onto each of disks 1, 2.
        assert_eq!(a.data_movement_from(&b), 200);
    }

    #[test]
    fn disk_usage_sums_objects() {
        let disks = disks3();
        let l = Layout::full_striping(vec![300, 150], &disks);
        assert_eq!(l.disk_usage(), vec![150, 150, 150]);
    }

    #[test]
    fn row_is_valid_matches_validate_per_row() {
        let disks = disks3();
        let mut l = Layout::full_striping(vec![300, 150], &disks);
        assert!(l.row_is_valid(0) && l.row_is_valid(1));
        l.place(1, &[(0, 1.0)]);
        // Corrupt row 1 only: fractions no longer sum to 1.
        let mut broken = Layout::empty(vec![300, 150], 3);
        broken.copy_row_from(&l, 0);
        assert!(broken.row_is_valid(0));
        assert!(!broken.row_is_valid(1)); // still the all-zero empty row
        assert!(matches!(
            broken.validate(&disks),
            Err(LayoutError::NotFullyAllocated { object: 1, .. })
        ));
    }

    #[test]
    fn copy_row_from_restores_the_base_placement() {
        let disks = disks3();
        let base = Layout::full_striping(vec![300, 150], &disks);
        let mut trial = base.clone();
        trial.place(0, &[(0, 1.0)]);
        assert_ne!(trial.fractions_of(0), base.fractions_of(0));
        trial.copy_row_from(&base, 0);
        assert_eq!(trial, base);
    }
}
