//! Disk drive model (paper §2.1).

use dblayout_catalog::BLOCK_BYTES;

/// Availability class of a drive (paper §2.1: None / Parity / Mirroring,
/// e.g. RAID 0 / RAID 5 / RAID 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Availability {
    /// RAID 0 or bare drive.
    None,
    /// RAID 5.
    Parity,
    /// RAID 1.
    Mirroring,
}

/// A single addressable disk drive (possibly itself an array).
///
/// The four performance-relevant properties are exactly the paper's:
/// capacity `C_j`, average seek time `S_j`, read transfer rate `TR_j` and
/// write transfer rate `TW_j`, plus `AVAIL_j`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSpec {
    /// Drive name, e.g. `"D3"`.
    pub name: String,
    /// Capacity in 64 KB blocks.
    pub capacity_blocks: u64,
    /// Average positioning time per discontiguous access, in milliseconds.
    pub avg_seek_ms: f64,
    /// Sequential read rate in MB/s.
    pub read_mb_s: f64,
    /// Sequential write rate in MB/s.
    pub write_mb_s: f64,
    /// Availability class.
    pub avail: Availability,
}

impl DiskSpec {
    /// Milliseconds to transfer one block at the read rate.
    pub fn read_ms_per_block(&self) -> f64 {
        BLOCK_BYTES as f64 / (self.read_mb_s * 1e6) * 1e3
    }

    /// Milliseconds to transfer one block at the write rate, including the
    /// drive's availability-class write penalty: RAID-1 mirrors write both
    /// copies in parallel (a small synchronization overhead), RAID-5 parity
    /// updates cost extra I/O even for full-block writes.
    pub fn write_ms_per_block(&self) -> f64 {
        let penalty = match self.avail {
            Availability::None => 1.0,
            Availability::Mirroring => 1.1,
            Availability::Parity => 1.5,
        };
        BLOCK_BYTES as f64 / (self.write_mb_s * 1e6) * 1e3 * penalty
    }

    /// Convenience constructor for a plain (RAID 0) drive.
    pub fn new(
        name: &str,
        capacity_blocks: u64,
        avg_seek_ms: f64,
        read_mb_s: f64,
        write_mb_s: f64,
    ) -> Self {
        Self {
            name: name.to_string(),
            capacity_blocks,
            avg_seek_ms,
            read_mb_s,
            write_mb_s,
            avail: Availability::None,
        }
    }

    /// Same drive with a different availability class.
    pub fn with_avail(mut self, avail: Availability) -> Self {
        self.avail = avail;
        self
    }
}

/// The paper's experimental array: 8 external disks, 48 GB aggregate, with
/// ~30% spread between the fastest and slowest drives in both transfer rate
/// and seek time (§7.1), calibrated to 2002-era hardware.
pub fn paper_disks() -> Vec<DiskSpec> {
    // 6 GB per drive = 98_304 blocks. Transfer 17.5–23 MB/s, seek 8.6–11.4 ms.
    let profiles: [(f64, f64); 8] = [
        (23.0, 8.6),
        (22.0, 9.0),
        (21.0, 9.4),
        (20.5, 9.8),
        (19.5, 10.2),
        (19.0, 10.6),
        (18.0, 11.0),
        (17.5, 11.4),
    ];
    profiles
        .iter()
        .enumerate()
        .map(|(i, &(read, seek))| {
            DiskSpec::new(&format!("D{}", i + 1), 98_304, seek, read, read * 0.8)
        })
        .collect()
}

/// `n` identical drives (used for controlled experiments such as the
/// paper's Example 5, which assumes identical disks).
pub fn uniform_disks(
    n: usize,
    capacity_blocks: u64,
    seek_ms: f64,
    read_mb_s: f64,
) -> Vec<DiskSpec> {
    (0..n)
        .map(|i| {
            DiskSpec::new(
                &format!("D{}", i + 1),
                capacity_blocks,
                seek_ms,
                read_mb_s,
                read_mb_s * 0.8,
            )
        })
        .collect()
}

/// The separate 9th drive the paper dedicated to tempdb (§7.1).
pub fn tempdb_disk() -> DiskSpec {
    DiskSpec::new("tempdb", 98_304, 10.0, 20.0, 16.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_math() {
        let d = DiskSpec::new("d", 100, 10.0, 20.0, 16.0);
        // 64 KB at 20 MB/s = 3.2768 ms.
        assert!((d.read_ms_per_block() - 3.2768).abs() < 1e-3);
        assert!(d.write_ms_per_block() > d.read_ms_per_block());
    }

    #[test]
    fn paper_set_shape() {
        let disks = paper_disks();
        assert_eq!(disks.len(), 8);
        let total_gb = disks
            .iter()
            .map(|d| d.capacity_blocks * BLOCK_BYTES)
            .sum::<u64>() as f64
            / 1e9;
        assert!((45.0..56.0).contains(&total_gb), "{total_gb}");
        // ~30% spread fastest to slowest.
        let fastest = disks.iter().map(|d| d.read_mb_s).fold(0.0f64, f64::max);
        let slowest = disks.iter().map(|d| d.read_mb_s).fold(f64::MAX, f64::min);
        let spread = (fastest - slowest) / slowest;
        assert!((0.25..0.40).contains(&spread), "{spread}");
    }

    #[test]
    fn uniform_disks_are_identical() {
        let ds = uniform_disks(3, 1000, 10.0, 20.0);
        assert_eq!(ds.len(), 3);
        assert!(ds.windows(2).all(|w| w[0].read_mb_s == w[1].read_mb_s));
        assert_ne!(ds[0].name, ds[1].name);
    }

    #[test]
    fn availability_builder() {
        let d = DiskSpec::new("d", 1, 1.0, 1.0, 1.0).with_avail(Availability::Mirroring);
        assert_eq!(d.avail, Availability::Mirroring);
    }

    #[test]
    fn write_penalty_by_availability_class() {
        let base = DiskSpec::new("d", 1, 1.0, 20.0, 16.0);
        let mirrored = base.clone().with_avail(Availability::Mirroring);
        let parity = base.clone().with_avail(Availability::Parity);
        assert!(mirrored.write_ms_per_block() > base.write_ms_per_block());
        assert!(parity.write_ms_per_block() > mirrored.write_ms_per_block());
        // Reads are unaffected by the class.
        assert_eq!(parity.read_ms_per_block(), base.read_ms_per_block());
    }
}
