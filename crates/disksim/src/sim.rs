//! The execution oracle: simulated "actual" query times for a layout.
//!
//! Replaces the paper's physical 8-disk SQL Server testbed. Per statement:
//! every non-blocking sub-plan's interleaved request trace is served by the
//! per-disk model (head position, seek on discontiguity, sequential
//! transfer), filtered through an LRU buffer pool; tempdb I/O runs on the
//! dedicated tempdb drive (paper §7.1 put tempdb on a separate 9th disk);
//! CPU work overlaps I/O, so a sub-plan's elapsed time is
//! `max(slowest disk, tempdb, CPU)`, and the statement's elapsed time is the
//! sum over sub-plans (pipelines execute one after another across blocking
//! boundaries).

use dblayout_planner::PhysicalPlan;

use crate::allocation::AllocationMap;
use crate::bufferpool::BufferPool;
use crate::disk::{tempdb_disk, DiskSpec};
use crate::layout::{Layout, LayoutError};
use crate::trace::{merge_proportional, subplan_trace};

/// Simulator tunables.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Buffer pool capacity in blocks (default 4096 = 256 MB, the paper's
    /// machine memory). 0 disables caching.
    pub buffer_pool_blocks: usize,
    /// Read-ahead unit: consecutive blocks a stream keeps per turn before
    /// co-accessed streams interleave (default 1 = one 64 KB block per I/O).
    pub read_ahead_blocks: u64,
    /// CPU time per block processed, in milliseconds (overlapped with I/O).
    pub cpu_ms_per_block: f64,
    /// Clear the buffer pool before each statement ("cold runs", §7.2).
    pub cold_cache_per_statement: bool,
    /// The dedicated tempdb drive.
    pub tempdb: DiskSpec,
    /// Seed for scattered access patterns.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            buffer_pool_blocks: 4096,
            read_ahead_blocks: 1,
            // ~105 MB/s of row processing (2002-era 1 GHz CPU): just below
            // the 8-disk aggregate transfer rate, so a full-width scan is
            // I/O-bound but a 5-of-8-disk scan turns (nearly) CPU-bound —
            // reproducing the paper's "table scans become about 5% slower"
            // observation for the split layout.
            cpu_ms_per_block: 0.6,
            cold_cache_per_statement: true,
            tempdb: tempdb_disk(),
            seed: 0xD15C,
        }
    }
}

/// Timing of one simulated statement.
#[derive(Debug, Clone, PartialEq)]
pub struct StatementTiming {
    /// Elapsed wall-clock milliseconds.
    pub elapsed_ms: f64,
    /// Portion attributable to data-disk I/O (max-disk per sub-plan, summed).
    pub io_ms: f64,
    /// Total CPU milliseconds (overlapped).
    pub cpu_ms: f64,
    /// Tempdb milliseconds.
    pub temp_ms: f64,
}

/// Aggregate of a simulated workload run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-statement timings, in workload order.
    pub statements: Vec<StatementTiming>,
    /// Weighted total elapsed milliseconds.
    pub total_elapsed_ms: f64,
}

/// A simulator bound to one layout over one disk set.
pub struct Simulator<'a> {
    disks: &'a [DiskSpec],
    layout: &'a Layout,
    alloc: AllocationMap,
    pool: BufferPool,
    cfg: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator, validating the layout first.
    pub fn new(
        disks: &'a [DiskSpec],
        layout: &'a Layout,
        cfg: SimConfig,
    ) -> Result<Self, LayoutError> {
        layout.validate(disks)?;
        Ok(Self {
            disks,
            layout,
            alloc: AllocationMap::build(layout),
            pool: BufferPool::new(cfg.buffer_pool_blocks),
            cfg,
        })
    }

    /// Simulates one statement's plan and returns its timing.
    pub fn execute_plan(&mut self, plan: &PhysicalPlan) -> StatementTiming {
        if self.cfg.cold_cache_per_statement {
            self.pool.clear();
        }
        let m = self.disks.len();
        let sizes = self.layout.object_sizes().to_vec();
        let mut elapsed = 0.0;
        let mut io_total = 0.0;
        let mut cpu_total = 0.0;
        let mut temp_total = 0.0;

        for (s_idx, sub) in plan.subplans().iter().enumerate() {
            let trace = subplan_trace(
                sub,
                &sizes,
                self.cfg.read_ahead_blocks,
                self.cfg.seed.wrapping_add(s_idx as u64 * 104_729),
            );
            let mut busy = vec![0.0f64; m];
            // Last address served per disk, for sequentiality detection.
            let mut head: Vec<Option<u64>> = vec![None; m];
            for req in &trace {
                if req.write {
                    // Write-through: cache the block but always hit disk.
                    self.pool.access(req.object, req.block);
                } else if self.pool.access(req.object, req.block) {
                    continue; // buffer hit
                }
                let loc = self.alloc.locate(req.object as usize, req.block);
                let j = loc.disk as usize;
                let d = &self.disks[j];
                let mut t = if req.write {
                    d.write_ms_per_block()
                } else {
                    d.read_ms_per_block()
                };
                let sequential = head[j] == loc.addr.checked_sub(1).map(Some).unwrap_or(None);
                if !sequential {
                    t += d.avg_seek_ms;
                }
                busy[j] += t;
                head[j] = Some(loc.addr);
            }

            // Tempdb lane: sequential spill writes and run reads plus a
            // handful of positioning operations.
            let td = &self.cfg.tempdb;
            let temp_ms = sub.temp_write_blocks as f64 * td.write_ms_per_block()
                + sub.temp_read_blocks as f64 * td.read_ms_per_block()
                + if sub.temp_write_blocks + sub.temp_read_blocks > 0 {
                    td.avg_seek_ms * 2.0
                } else {
                    0.0
                };

            let io_ms = busy.iter().copied().fold(0.0f64, f64::max);
            let cpu_ms = self.cfg.cpu_ms_per_block * trace.len() as f64;
            let sub_elapsed = io_ms.max(temp_ms).max(cpu_ms);
            elapsed += sub_elapsed;
            io_total += io_ms;
            cpu_total += cpu_ms;
            temp_total += temp_ms;
        }

        StatementTiming {
            elapsed_ms: elapsed,
            io_ms: io_total,
            cpu_ms: cpu_total,
            temp_ms: temp_total,
        }
    }

    /// Simulates `plans` executing **concurrently** (a multiprogramming
    /// mix): each statement's serialized block trace (its sub-plans in
    /// order) is interleaved with the others proportionally to trace
    /// length, and the merged stream is served by the per-disk model.
    /// Returns the elapsed time of the whole mix — the validation oracle
    /// for the concurrency-aware workload extension (paper §2.2/§9).
    pub fn execute_concurrent(&mut self, plans: &[&PhysicalPlan]) -> StatementTiming {
        if self.cfg.cold_cache_per_statement {
            self.pool.clear();
        }
        let m = self.disks.len();
        let sizes = self.layout.object_sizes().to_vec();

        // Serialize each statement into one trace, then merge streams.
        let mut streams: Vec<Vec<crate::trace::BlockRequest>> = Vec::with_capacity(plans.len());
        let mut temp_ms = 0.0;
        for (p_idx, plan) in plans.iter().enumerate() {
            let mut trace = Vec::new();
            for (s_idx, sub) in plan.subplans().iter().enumerate() {
                trace.extend(subplan_trace(
                    sub,
                    &sizes,
                    self.cfg.read_ahead_blocks,
                    self.cfg
                        .seed
                        .wrapping_add((p_idx * 31 + s_idx) as u64 * 104_729),
                ));
                temp_ms += sub.temp_write_blocks as f64 * self.cfg.tempdb.write_ms_per_block()
                    + sub.temp_read_blocks as f64 * self.cfg.tempdb.read_ms_per_block();
            }
            streams.push(trace);
        }
        let merged = merge_proportional(streams);

        let mut busy = vec![0.0f64; m];
        let mut head: Vec<Option<u64>> = vec![None; m];
        for req in &merged {
            if req.write {
                self.pool.access(req.object, req.block);
            } else if self.pool.access(req.object, req.block) {
                continue;
            }
            let loc = self.alloc.locate(req.object as usize, req.block);
            let j = loc.disk as usize;
            let d = &self.disks[j];
            let mut t = if req.write {
                d.write_ms_per_block()
            } else {
                d.read_ms_per_block()
            };
            let sequential = head[j] == loc.addr.checked_sub(1).map(Some).unwrap_or(None);
            if !sequential {
                t += d.avg_seek_ms;
            }
            busy[j] += t;
            head[j] = Some(loc.addr);
        }
        let io_ms = busy.iter().copied().fold(0.0f64, f64::max);
        let cpu_ms = self.cfg.cpu_ms_per_block * merged.len() as f64;
        StatementTiming {
            elapsed_ms: io_ms.max(cpu_ms).max(temp_ms),
            io_ms,
            cpu_ms,
            temp_ms,
        }
    }

    /// Simulates a weighted workload; `plans` pairs each statement's plan
    /// with its weight `w_Q`.
    pub fn execute_workload(&mut self, plans: &[(PhysicalPlan, f64)]) -> SimReport {
        let mut statements = Vec::with_capacity(plans.len());
        let mut total = 0.0;
        for (plan, weight) in plans {
            let t = self.execute_plan(plan);
            total += weight * t.elapsed_ms;
            statements.push(t);
        }
        SimReport {
            statements,
            total_elapsed_ms: total,
        }
    }

    /// Buffer-pool `(hits, misses)` so far.
    pub fn pool_stats(&self) -> (u64, u64) {
        self.pool.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::uniform_disks;
    use dblayout_catalog::ObjectId;
    use dblayout_planner::{PhysicalPlan, PlanNode};

    fn scan(obj: u32, blocks: u64) -> PlanNode {
        PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64,
        }
    }

    fn cfg_no_cache() -> SimConfig {
        SimConfig {
            buffer_pool_blocks: 0,
            cpu_ms_per_block: 0.0,
            ..SimConfig::default()
        }
    }

    /// Example-5 style setup: objects A=300 and B=150 blocks, 3 identical
    /// disks, merge-join co-access.
    fn example5_plan() -> PhysicalPlan {
        PhysicalPlan::new(PlanNode::MergeJoin {
            on: "a=b".into(),
            rows: 100.0,
            left: Box::new(scan(0, 300)),
            right: Box::new(scan(1, 150)),
        })
    }

    #[test]
    fn separated_layout_beats_full_striping_for_coaccess() {
        let disks = uniform_disks(3, 10_000, 10.0, 20.0);
        let sizes = vec![300u64, 150];

        let striped = Layout::full_striping(sizes.clone(), &disks);
        let mut sim = Simulator::new(&disks, &striped, cfg_no_cache()).unwrap();
        let t_striped = sim.execute_plan(&example5_plan()).elapsed_ms;

        // Example 5's L3: A on D1+D2, B on D3.
        let mut separated = Layout::empty(sizes, 3);
        separated.place(0, &[(0, 1.0), (1, 1.0)]);
        separated.place(1, &[(2, 1.0)]);
        let mut sim = Simulator::new(&disks, &separated, cfg_no_cache()).unwrap();
        let t_sep = sim.execute_plan(&example5_plan()).elapsed_ms;

        assert!(
            t_sep < t_striped,
            "separated {t_sep} should beat striped {t_striped}"
        );
    }

    #[test]
    fn single_scan_full_striping_maximizes_parallelism() {
        let disks = uniform_disks(4, 10_000, 10.0, 20.0);
        let sizes = vec![400u64];
        let plan = PhysicalPlan::new(scan(0, 400));

        let striped = Layout::full_striping(sizes.clone(), &disks);
        let mut sim = Simulator::new(&disks, &striped, cfg_no_cache()).unwrap();
        let t_striped = sim.execute_plan(&plan).elapsed_ms;

        let mut narrow = Layout::empty(sizes, 4);
        narrow.place(0, &[(0, 1.0)]);
        let mut sim = Simulator::new(&disks, &narrow, cfg_no_cache()).unwrap();
        let t_narrow = sim.execute_plan(&plan).elapsed_ms;

        assert!(
            t_striped < t_narrow / 2.0,
            "striped {t_striped} vs narrow {t_narrow}"
        );
    }

    #[test]
    fn buffer_pool_absorbs_rereads() {
        let disks = uniform_disks(2, 10_000, 10.0, 20.0);
        let sizes = vec![100u64];
        // Two scans of the same object in one pipeline (self-join shape).
        let plan = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "k".into(),
            rows: 1.0,
            left: Box::new(scan(0, 100)),
            right: Box::new(scan(0, 100)),
        });
        let layout = Layout::full_striping(sizes, &disks);

        let mut cold = Simulator::new(&disks, &layout, cfg_no_cache()).unwrap();
        let t_cold = cold.execute_plan(&plan).elapsed_ms;

        let cfg = SimConfig {
            buffer_pool_blocks: 4096,
            cpu_ms_per_block: 0.0,
            ..SimConfig::default()
        };
        let mut warm = Simulator::new(&disks, &layout, cfg).unwrap();
        let t_warm = warm.execute_plan(&plan).elapsed_ms;
        let (hits, _) = warm.pool_stats();

        assert!(hits > 0, "second scan should hit the pool");
        assert!(t_warm < t_cold, "warm {t_warm} vs cold {t_cold}");
    }

    #[test]
    fn invalid_layout_rejected() {
        let disks = uniform_disks(2, 10, 10.0, 20.0);
        let layout = Layout::empty(vec![100], 2); // unallocated
        assert!(Simulator::new(&disks, &layout, SimConfig::default()).is_err());
    }

    #[test]
    fn temp_io_charged_to_tempdb_lane() {
        let disks = uniform_disks(2, 10_000, 10.0, 20.0);
        let sizes = vec![100u64];
        let plan = PhysicalPlan::new(PlanNode::Sort {
            by: "k".into(),
            rows: 1e5,
            spill_blocks: 400,
            child: Box::new(scan(0, 100)),
        });
        let layout = Layout::full_striping(sizes, &disks);
        let mut sim = Simulator::new(&disks, &layout, cfg_no_cache()).unwrap();
        let t = sim.execute_plan(&plan);
        assert!(t.temp_ms > 0.0);
        // Spill dominates the tiny scan: elapsed must reflect the temp lane.
        assert!(t.elapsed_ms >= t.temp_ms * 0.99);
    }

    #[test]
    fn cpu_bound_subplan_clamped_by_cpu() {
        let disks = uniform_disks(2, 10_000, 10.0, 20.0);
        let sizes = vec![100u64];
        let plan = PhysicalPlan::new(scan(0, 100));
        let layout = Layout::full_striping(sizes, &disks);
        let cfg = SimConfig {
            buffer_pool_blocks: 0,
            cpu_ms_per_block: 1000.0, // absurdly slow CPU
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&disks, &layout, cfg).unwrap();
        let t = sim.execute_plan(&plan);
        assert!((t.elapsed_ms - t.cpu_ms).abs() < 1e-9);
    }

    #[test]
    fn workload_totals_weighted() {
        let disks = uniform_disks(2, 10_000, 10.0, 20.0);
        let sizes = vec![100u64];
        let layout = Layout::full_striping(sizes, &disks);
        let plan = PhysicalPlan::new(scan(0, 100));
        let mut sim = Simulator::new(&disks, &layout, cfg_no_cache()).unwrap();
        let report = sim.execute_workload(&[(plan.clone(), 1.0), (plan, 3.0)]);
        assert_eq!(report.statements.len(), 2);
        let t = report.statements[0].elapsed_ms;
        assert!((report.total_elapsed_ms - 4.0 * t).abs() < 1e-6);
    }

    #[test]
    fn determinism_across_runs() {
        let disks = uniform_disks(3, 10_000, 10.0, 20.0);
        let sizes = vec![300u64, 150];
        let layout = Layout::full_striping(sizes, &disks);
        let run = || {
            let mut sim = Simulator::new(&disks, &layout, SimConfig::default()).unwrap();
            sim.execute_plan(&example5_plan()).elapsed_ms
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod concurrent_tests {
    use super::*;
    use crate::disk::uniform_disks;
    use dblayout_catalog::ObjectId;
    use dblayout_planner::PlanNode;

    fn scan_plan(obj: u32, blocks: u64) -> PhysicalPlan {
        PhysicalPlan::new(PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64,
        })
    }

    fn cfg() -> SimConfig {
        SimConfig {
            buffer_pool_blocks: 0,
            cpu_ms_per_block: 0.0,
            ..SimConfig::default()
        }
    }

    /// Two concurrent scans of objects sharing every disk interleave and
    /// seek; with the objects on disjoint disks the mix runs clean. This is
    /// the co-access effect the sequential set-model misses (paper §2.2).
    #[test]
    fn concurrent_scans_prefer_separated_layouts() {
        let disks = uniform_disks(4, 100_000, 10.0, 20.0);
        let sizes = vec![800u64, 800];
        let p0 = scan_plan(0, 800);
        let p1 = scan_plan(1, 800);

        let shared = Layout::full_striping(sizes.clone(), &disks);
        let mut sim = Simulator::new(&disks, &shared, cfg()).unwrap();
        let t_shared = sim.execute_concurrent(&[&p0, &p1]).elapsed_ms;

        let mut split = Layout::empty(sizes, 4);
        split.place(0, &[(0, 1.0), (1, 1.0)]);
        split.place(1, &[(2, 1.0), (3, 1.0)]);
        let mut sim = Simulator::new(&disks, &split, cfg()).unwrap();
        let t_split = sim.execute_concurrent(&[&p0, &p1]).elapsed_ms;

        assert!(
            t_split < t_shared,
            "split {t_split} should beat shared {t_shared}"
        );

        // Executed *sequentially*, the same statements prefer full striping
        // — exactly why ignoring concurrency mis-advises.
        let mut sim = Simulator::new(&disks, &shared, cfg()).unwrap();
        let seq_shared = sim.execute_plan(&p0).elapsed_ms + sim.execute_plan(&p1).elapsed_ms;
        let mut sim = Simulator::new(&disks, &split, cfg()).unwrap();
        let seq_split = sim.execute_plan(&p0).elapsed_ms + sim.execute_plan(&p1).elapsed_ms;
        assert!(
            seq_shared < seq_split,
            "sequentially, striping {seq_shared} beats split {seq_split}"
        );
    }

    #[test]
    fn single_statement_concurrent_equals_sequential() {
        let disks = uniform_disks(3, 100_000, 10.0, 20.0);
        let sizes = vec![300u64];
        let layout = Layout::full_striping(sizes, &disks);
        let plan = scan_plan(0, 300);
        let mut sim = Simulator::new(&disks, &layout, cfg()).unwrap();
        let conc = sim.execute_concurrent(&[&plan]).elapsed_ms;
        let seq = sim.execute_plan(&plan).elapsed_ms;
        assert!((conc - seq).abs() < 1e-6, "{conc} vs {seq}");
    }

    #[test]
    fn concurrent_empty_mix_is_zero() {
        let disks = uniform_disks(2, 100_000, 10.0, 20.0);
        let layout = Layout::full_striping(vec![10], &disks);
        let mut sim = Simulator::new(&disks, &layout, cfg()).unwrap();
        let t = sim.execute_concurrent(&[]);
        assert_eq!(t.elapsed_ms, 0.0);
    }
}
