//! Deterministic request schedules: a seeded LCG expands `(seed, n,
//! weights)` into the exact op sequence a load run will send.
//!
//! No wall-clock feeds the schedule — the same seed yields the same op
//! sequence (and therefore the same mix counters) on every host, which is
//! what lets `BENCH_server.json` rows carry *exact* mix counters that
//! `dblayout benchdiff` gates without `--ignore-counters`. This file is an
//! R6 determinism-zone seed: nothing here (or reachable from here) may
//! read a clock, iterate a hash map, or branch on thread identity.

/// One request kind in the load mix, a subset of the wire vocabulary
/// chosen to cover the advisory loop: session churn, workload ingestion,
/// search, and monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `open_session` (each is paired with an unmeasured `close_session`
    /// by the driver so session capacity stays bounded).
    OpenSession,
    /// `add_statements` on the worker's long-lived session.
    AddStatements,
    /// `recommend` (k=1) on the worker's long-lived session.
    Recommend,
    /// `stats` — the cheap monitoring probe.
    Stats,
}

impl OpKind {
    /// Every kind, in mix-weight order.
    pub const ALL: [OpKind; 4] = [
        OpKind::OpenSession,
        OpKind::AddStatements,
        OpKind::Recommend,
        OpKind::Stats,
    ];

    /// The wire `op` string.
    pub fn wire_name(self) -> &'static str {
        match self {
            OpKind::OpenSession => "open_session",
            OpKind::AddStatements => "add_statements",
            OpKind::Recommend => "recommend",
            OpKind::Stats => "stats",
        }
    }
}

/// Relative op frequencies. The default mix models a monitoring-heavy
/// advisory deployment: mostly cheap `stats` probes, a steady trickle of
/// workload ingestion, occasional searches, rare session churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixWeights {
    /// Weight of `open_session` (+ paired close).
    pub open_session: u32,
    /// Weight of `add_statements`.
    pub add_statements: u32,
    /// Weight of `recommend`.
    pub recommend: u32,
    /// Weight of `stats`.
    pub stats: u32,
}

impl Default for MixWeights {
    fn default() -> Self {
        MixWeights {
            open_session: 1,
            add_statements: 20,
            recommend: 2,
            stats: 977,
        }
    }
}

impl MixWeights {
    /// Parses `"1,20,2,977"` (open_session, add_statements, recommend,
    /// stats). Returns `None` unless exactly four integers with a
    /// positive sum are given.
    pub fn parse_weights(text: &str) -> Option<Self> {
        let mut vals = [0u32; 4];
        let mut seen = 0usize;
        for part in text.split(',') {
            if seen >= 4 {
                return None;
            }
            if let Some(slot) = vals.get_mut(seen) {
                *slot = part.trim().parse().ok()?;
            }
            seen += 1;
        }
        if seen != 4 {
            return None;
        }
        let [open_session, add_statements, recommend, stats] = vals;
        let mix = MixWeights {
            open_session,
            add_statements,
            recommend,
            stats,
        };
        if mix.weight_sum() == 0 {
            return None;
        }
        Some(mix)
    }

    /// The weights in [`OpKind::ALL`] order.
    pub fn as_array(&self) -> [u32; 4] {
        [
            self.open_session,
            self.add_statements,
            self.recommend,
            self.stats,
        ]
    }

    /// Sum of all weights.
    pub fn weight_sum(&self) -> u64 {
        self.as_array().iter().map(|&w| w as u64).sum()
    }

    /// The canonical `"1,20,2,977"` encoding (inverse of
    /// [`MixWeights::parse_weights`]).
    pub fn encode(&self) -> String {
        let [a, b, c, d] = self.as_array();
        format!("{a},{b},{c},{d}")
    }
}

/// A splitmix64-scrambled 64-bit LCG — tiny, seedable, and plenty for
/// weighted op draws. (MMIX multiplier; the splitmix finalizer on the
/// state kills the low-bit lattice structure raw LCGs carry.)
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A generator whose whole stream is determined by `seed`.
    pub fn seeded(seed: u64) -> Self {
        // splitmix64 of the seed so nearby seeds diverge immediately.
        Lcg {
            state: mix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        mix64(self.state)
    }

    /// Uniform draw in `0..bound` (`bound` of 0 yields 0). Modulo bias is
    /// below 2^-50 for the small bounds used here.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }
}

/// The splitmix64 output permutation.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands `(seed, n, weights)` into the exact op sequence of a run:
/// request `i` (global order; workers stride through it) is an
/// independent weighted draw.
pub fn build_schedule(seed: u64, requests: usize, weights: &MixWeights) -> Vec<OpKind> {
    let totals = weights.as_array();
    let weight_sum = weights.weight_sum();
    let mut rng = Lcg::seeded(seed);
    let mut plan = Vec::with_capacity(requests);
    for _ in 0..requests {
        let mut draw = rng.next_below(weight_sum);
        let mut picked = OpKind::Stats;
        for (kind, &w) in OpKind::ALL.iter().zip(totals.iter()) {
            let w = w as u64;
            if draw < w {
                picked = *kind;
                break;
            }
            draw -= w;
        }
        plan.push(picked);
    }
    plan
}

/// Per-op request counts of a schedule — the deterministic fingerprint
/// that load-test history rows carry as exact-gated counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MixCounts {
    /// Counts in [`OpKind::ALL`] order.
    pub per_op: [u64; 4],
}

impl MixCounts {
    /// Counts each op in a schedule.
    pub fn tally(plan: &[OpKind]) -> Self {
        let mut per_op = [0u64; 4];
        for op in plan {
            for (slot, kind) in per_op.iter_mut().zip(OpKind::ALL.iter()) {
                if op == kind {
                    *slot += 1;
                }
            }
        }
        MixCounts { per_op }
    }

    /// Count for one kind.
    pub fn of(&self, kind: OpKind) -> u64 {
        OpKind::ALL
            .iter()
            .zip(self.per_op.iter())
            .find(|(k, _)| **k == kind)
            .map(|(_, &n)| n)
            .unwrap_or(0)
    }

    /// `("load_mix_<op>", count)` pairs in fixed order, for history rows.
    pub fn counter_pairs(&self) -> Vec<(String, u64)> {
        OpKind::ALL
            .iter()
            .zip(self.per_op.iter())
            .map(|(kind, &n)| (format!("load_mix_{}", kind.wire_name()), n))
            .collect()
    }

    /// Total requests.
    pub fn total_requests(&self) -> u64 {
        self.per_op.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let w = MixWeights::default();
        let a = build_schedule(42, 5_000, &w);
        let b = build_schedule(42, 5_000, &w);
        assert_eq!(a, b);
        assert_ne!(
            a,
            build_schedule(43, 5_000, &w),
            "different seeds should diverge"
        );
    }

    #[test]
    fn mix_tracks_weights() {
        let w = MixWeights::default();
        let plan = build_schedule(7, 100_000, &w);
        let mix = MixCounts::tally(&plan);
        assert_eq!(mix.total_requests(), 100_000);
        // Expected ~0.1% open_session, ~2% add_statements, ~97.7% stats.
        let stats = mix.of(OpKind::Stats) as f64 / 100_000.0;
        assert!((stats - 0.977).abs() < 0.01, "stats fraction {stats}");
        let adds = mix.of(OpKind::AddStatements) as f64 / 100_000.0;
        assert!((adds - 0.02).abs() < 0.005, "add fraction {adds}");
        assert!(mix.of(OpKind::OpenSession) > 0);
        assert!(mix.of(OpKind::Recommend) > 0);
    }

    #[test]
    fn weights_round_trip_through_text() {
        let w = MixWeights::parse_weights("1,20,2,977").unwrap();
        assert_eq!(w, MixWeights::default());
        assert_eq!(w.encode(), "1,20,2,977");
        assert_eq!(MixWeights::parse_weights("0,0,0,1").unwrap().stats, 1);
        assert!(MixWeights::parse_weights("0,0,0,0").is_none(), "zero sum");
        assert!(MixWeights::parse_weights("1,2,3").is_none());
        assert!(MixWeights::parse_weights("1,2,3,4,5").is_none());
        assert!(MixWeights::parse_weights("1,2,x,4").is_none());
    }

    #[test]
    fn zero_weight_ops_never_appear() {
        let w = MixWeights {
            open_session: 0,
            add_statements: 0,
            recommend: 0,
            stats: 3,
        };
        let plan = build_schedule(9, 10_000, &w);
        assert!(plan.iter().all(|op| *op == OpKind::Stats));
    }

    #[test]
    fn counter_pairs_are_fixed_order_and_named() {
        let mix = MixCounts {
            per_op: [1, 2, 3, 4],
        };
        let pairs = mix.counter_pairs();
        assert_eq!(
            pairs,
            vec![
                ("load_mix_open_session".to_string(), 1),
                ("load_mix_add_statements".to_string(), 2),
                ("load_mix_recommend".to_string(), 3),
                ("load_mix_stats".to_string(), 4),
            ]
        );
    }

    #[test]
    fn lcg_streams_are_seed_determined() {
        let mut a = Lcg::seeded(1);
        let mut b = Lcg::seeded(1);
        let mut c = Lcg::seeded(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        // Bounded draws stay in range.
        for bound in [1u64, 2, 7, 1000] {
            let mut r = Lcg::seeded(5);
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
        assert_eq!(Lcg::seeded(5).next_below(0), 0);
    }
}
