//! The load driver: connections, pacing, latency recording, reporting.
//!
//! ## Open loop vs closed loop, and coordinated omission
//!
//! A **closed-loop** driver sends a request, waits for the reply, sends
//! the next. When the server stalls, the driver stalls *with* it: the
//! requests that would have arrived during the stall are never sent, so
//! they never appear in the latency distribution — the stall is
//! "coordinated" away (Tene's *coordinated omission*). Closed-loop
//! numbers answer "how fast is one synchronous caller", not "what do
//! clients experience at this arrival rate".
//!
//! The **open-loop** mode fixes the arrival process instead: worker `w`
//! of `W` owns requests `w, w+W, w+2W, …` of the global schedule, and its
//! `k`-th request has an *intended* send time `t0 + k·(W/rate)`. Latency
//! is charged from that intended time, not from the actual write: if the
//! server (or a queued predecessor on the same connection) delays the
//! send, the wait counts. A stalled server therefore shows its true
//! inflated p99 in open-loop mode — the regression test in
//! `tests/loadtest_loopback.rs` drives a deliberately stalled responder
//! both ways and asserts exactly that divergence.
//!
//! Latencies land in [`dblayout_obs::hist`] histograms (≤12.5% relative
//! error), one per op kind, merged across workers by construction (the
//! recorders are shared atomics).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dblayout_obs::hist;
use serde_json::{Value, ValueExt};

use crate::schedule::{build_schedule, MixCounts, MixWeights, OpKind};

/// Pacing discipline for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Fixed arrival rate (requests/second across all connections);
    /// latency is charged from each request's intended send time.
    Open {
        /// Offered load, requests per second, spread across connections.
        rate_per_sec: f64,
    },
    /// Fixed concurrency: each connection issues its next request as soon
    /// as the previous reply lands. Subject to coordinated omission — kept
    /// for single-caller service-time measurements and as the contrast
    /// mode for the CO regression test.
    Closed,
}

/// One load run's parameters. `Default` is a 100k-request closed-loop
/// smoke against nothing in particular — set `addr` before use.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Total requests across all connections.
    pub requests: usize,
    /// Concurrent connections (must be ≤ the server's worker threads —
    /// the server parks one thread per connection).
    pub connections: usize,
    /// Open- or closed-loop pacing.
    pub mode: Mode,
    /// Schedule seed: same seed → same op sequence and mix counts.
    pub seed: u64,
    /// Op mix weights.
    pub weights: MixWeights,
    /// Catalog spec for sessions (`tpch:0.01` keeps setup cheap).
    pub catalog: String,
    /// Open one long-lived session per connection (with a seed statement)
    /// before the measured phase; disable only when the mix never needs a
    /// session (e.g. pure `stats` against a fake responder).
    pub setup_sessions: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            requests: 100_000,
            connections: 4,
            mode: Mode::Closed,
            seed: 42,
            weights: MixWeights::default(),
            catalog: "tpch:0.01".to_string(),
            setup_sessions: true,
        }
    }
}

/// The seed statement added to each long-lived session so `recommend`
/// has a workload to search over.
const SEED_SQL: &str = "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;";

/// Shared latency/error recorders (lock-free; workers write concurrently).
#[derive(Default)]
struct Recorders {
    per_op: [hist::Histogram; 4],
    errors: AtomicU64,
    shed: AtomicU64,
}

/// One finished run: per-op latency snapshots plus throughput accounting.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent (== the schedule length).
    pub requests: u64,
    /// Measured-phase wall clock.
    pub wall: Duration,
    /// Offered rate for open-loop runs (`None` for closed loop).
    pub offered_rps: Option<f64>,
    /// Completed requests / wall seconds.
    pub achieved_rps: f64,
    /// Connections used.
    pub connections: usize,
    /// Schedule seed.
    pub seed: u64,
    /// Deterministic per-op request counts.
    pub mix: MixCounts,
    /// Non-`ok` responses.
    pub errors: u64,
    /// Busy sheds (server queue full) among those errors.
    pub shed: u64,
    /// `(wire op name, latency snapshot)` in [`OpKind::ALL`] order.
    pub per_op: Vec<(&'static str, hist::Snapshot)>,
}

impl LoadReport {
    /// Machine-readable report (the `--json` payload).
    pub fn to_json(&self) -> Value {
        let mut ops = Vec::new();
        for (op, snap) in &self.per_op {
            if snap.count == 0 {
                continue;
            }
            ops.push(Value::Map(vec![
                ("op".to_string(), Value::Str((*op).to_string())),
                ("count".to_string(), Value::U64(snap.count)),
                ("p50_us".to_string(), Value::U64(snap.quantile(0.50))),
                ("p90_us".to_string(), Value::U64(snap.quantile(0.90))),
                ("p99_us".to_string(), Value::U64(snap.quantile(0.99))),
                ("p999_us".to_string(), Value::U64(snap.quantile(0.999))),
                ("max_us".to_string(), Value::U64(snap.max)),
                ("mean_us".to_string(), Value::F64(snap.mean())),
            ]));
        }
        let mut pairs = vec![
            ("requests".to_string(), Value::U64(self.requests)),
            (
                "connections".to_string(),
                Value::U64(self.connections as u64),
            ),
            ("seed".to_string(), Value::U64(self.seed)),
            ("mode".to_string(), Value::Str(self.mode_name().to_string())),
            ("wall_secs".to_string(), Value::F64(self.wall.as_secs_f64())),
            ("achieved_rps".to_string(), Value::F64(self.achieved_rps)),
        ];
        if let Some(rate) = self.offered_rps {
            pairs.push(("offered_rps".to_string(), Value::F64(rate)));
        }
        pairs.push(("errors".to_string(), Value::U64(self.errors)));
        pairs.push(("shed".to_string(), Value::U64(self.shed)));
        pairs.push((
            "mix".to_string(),
            Value::Map(
                self.mix
                    .counter_pairs()
                    .into_iter()
                    .map(|(k, v)| (k, Value::U64(v)))
                    .collect(),
            ),
        ));
        pairs.push(("per_op".to_string(), Value::Seq(ops)));
        Value::Map(pairs)
    }

    /// `"open"` or `"closed"`.
    pub fn mode_name(&self) -> &'static str {
        if self.offered_rps.is_some() {
            "open"
        } else {
            "closed"
        }
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadtest: {} requests over {} connections ({} loop), {:.2}s wall\n",
            self.requests,
            self.connections,
            self.mode_name(),
            self.wall.as_secs_f64(),
        ));
        match self.offered_rps {
            Some(rate) => out.push_str(&format!(
                "throughput: {:.0} rps achieved of {rate:.0} rps offered\n",
                self.achieved_rps
            )),
            None => out.push_str(&format!(
                "throughput: {:.0} rps achieved\n",
                self.achieved_rps
            )),
        }
        out.push_str(&format!(
            "errors: {} (busy sheds: {})\n",
            self.errors, self.shed
        ));
        out.push_str(
            "op              count     p50_us     p90_us     p99_us    p999_us     max_us\n",
        );
        for (op, snap) in &self.per_op {
            if snap.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{op:<14} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                snap.count,
                snap.quantile(0.50),
                snap.quantile(0.90),
                snap.quantile(0.99),
                snap.quantile(0.999),
                snap.max,
            ));
        }
        out
    }
}

/// One blocking connection speaking the newline-delimited JSON protocol.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok(); // best-effort latency hint
        let writer = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line (no trailing newline) and reads the one-line
    /// reply.
    fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

/// The request line for one scheduled op on a worker's session.
fn request_line(op: OpKind, session: u64, catalog: &str) -> String {
    match op {
        OpKind::OpenSession => {
            format!(r#"{{"op":"open_session","catalog":"{catalog}"}}"#)
        }
        OpKind::AddStatements => {
            format!(r#"{{"op":"add_statements","session":{session},"sql":"{SEED_SQL}"}}"#)
        }
        OpKind::Recommend => {
            format!(r#"{{"op":"recommend","session":{session},"k":1}}"#)
        }
        OpKind::Stats => r#"{"op":"stats"}"#.to_string(),
    }
}

/// Classifies a reply into the shared recorders and returns the session
/// id when the reply opened one (so the caller can close it).
fn record_reply(op: OpKind, charged: Duration, reply: &str, rec: &Recorders) -> Option<u64> {
    let slot = OpKind::ALL.iter().position(|k| *k == op).unwrap_or(0);
    if let Some(h) = rec.per_op.get(slot) {
        h.record_duration_us(charged);
    }
    if reply.starts_with(r#"{"ok":true"#) {
        if op == OpKind::OpenSession {
            let parsed: Value = serde_json::from_str(reply).ok()?;
            return parsed
                .get("result")
                .and_then(|r| r.get("session"))
                .and_then(|s| s.as_u64());
        }
        return None;
    }
    rec.errors.fetch_add(1, Ordering::Relaxed);
    if reply.contains(r#""busy""#) {
        rec.shed.fetch_add(1, Ordering::Relaxed);
    }
    None
}

/// Sleeps (coarsely) then spins (finely) until `deadline`. The 200 µs
/// spin tail keeps intended send times honest on hosts whose sleep
/// granularity is ~50–100 µs without burning a whole core per worker.
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        let Some(remaining) = deadline.checked_duration_since(now) else {
            return;
        };
        if remaining > Duration::from_micros(300) {
            std::thread::sleep(remaining - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Opens one long-lived session per connection over a temporary setup
/// connection (released before the measured phase) and seeds each with
/// one statement so `recommend` has work to do. Session ids come back in
/// worker order.
fn setup_sessions(addr: &str, connections: usize, catalog: &str) -> std::io::Result<Vec<u64>> {
    let mut conn = Conn::connect(addr)?;
    let mut sessions = Vec::with_capacity(connections);
    for _ in 0..connections {
        let open = conn.roundtrip(&format!(r#"{{"op":"open_session","catalog":"{catalog}"}}"#))?;
        let parsed: Value = serde_json::from_str(&open)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let sid = parsed
            .get("result")
            .and_then(|r| r.get("session"))
            .and_then(|s| s.as_u64())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("open_session failed during setup: {open}"),
                )
            })?;
        let added = conn.roundtrip(&format!(
            r#"{{"op":"add_statements","session":{sid},"sql":"{SEED_SQL}"}}"#
        ))?;
        if !added.starts_with(r#"{"ok":true"#) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("seed statement rejected during setup: {added}"),
            ));
        }
        sessions.push(sid);
    }
    Ok(sessions)
}

/// Runs one load test to completion: builds the deterministic schedule,
/// opens the connections, drives the configured pacing, and returns the
/// merged report. Errors only on transport failures (connect/EOF) —
/// protocol-level errors are counted, not fatal.
pub fn run_load(cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let plan = Arc::new(build_schedule(cfg.seed, cfg.requests, &cfg.weights));
    let mix = MixCounts::tally(&plan);
    let connections = cfg.connections.max(1);
    let sessions = if cfg.setup_sessions {
        setup_sessions(&cfg.addr, connections, &cfg.catalog)?
    } else {
        vec![0; connections]
    };
    let rec = Arc::new(Recorders::default());
    // Per-worker intended inter-arrival gap: W workers share the offered
    // rate, so each sends every W/rate seconds.
    let gap = match cfg.mode {
        Mode::Open { rate_per_sec } if rate_per_sec > 0.0 => Some(Duration::from_nanos(
            (1e9 * connections as f64 / rate_per_sec) as u64,
        )),
        Mode::Open { .. } => None, // rate 0 degenerates to closed loop
        Mode::Closed => None,
    };
    let barrier = Arc::new(Barrier::new(connections + 1));
    let mut workers = Vec::with_capacity(connections);
    for w in 0..connections {
        let plan = Arc::clone(&plan);
        let rec = Arc::clone(&rec);
        let barrier = Arc::clone(&barrier);
        let addr = cfg.addr.clone();
        let catalog = cfg.catalog.clone();
        let session = sessions.get(w).copied().unwrap_or(0);
        workers.push(std::thread::spawn(move || -> std::io::Result<()> {
            let mut conn = Conn::connect(&addr)?;
            barrier.wait();
            let t0 = Instant::now();
            let mut k = 0u64; // this worker's request ordinal
            let mut i = w;
            while let Some(&op) = plan.get(i) {
                let line = request_line(op, session, &catalog);
                let (reply, charged) = match gap {
                    Some(gap) => {
                        // Open loop: charge from the intended send time.
                        let intended =
                            t0 + Duration::from_nanos((gap.as_nanos() as u64).saturating_mul(k));
                        wait_until(intended);
                        let reply = conn.roundtrip(&line)?;
                        let charged = Instant::now()
                            .checked_duration_since(intended)
                            .unwrap_or_default();
                        (reply, charged)
                    }
                    None => {
                        // Closed loop: charge from the actual send.
                        let sent = Instant::now();
                        let reply = conn.roundtrip(&line)?;
                        (reply, sent.elapsed())
                    }
                };
                if let Some(sid) = record_reply(op, charged, &reply, &rec) {
                    // Unmeasured companion close keeps session capacity
                    // bounded under session-churn mixes.
                    conn.roundtrip(&format!(r#"{{"op":"close_session","session":{sid}}}"#))?;
                }
                k += 1;
                i += connections;
            }
            Ok(())
        }));
    }
    barrier.wait();
    let started = Instant::now();
    let mut transport_error: Option<std::io::Error> = None;
    for worker in workers {
        match worker.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => transport_error = Some(e),
            Err(_) => {
                transport_error = Some(std::io::Error::other("load worker panicked"));
            }
        }
    }
    let wall = started.elapsed();
    if let Some(e) = transport_error {
        return Err(e);
    }
    let per_op: Vec<(&'static str, hist::Snapshot)> = OpKind::ALL
        .iter()
        .enumerate()
        .map(|(idx, kind)| {
            (
                kind.wire_name(),
                rec.per_op
                    .get(idx)
                    .map(hist::Histogram::snapshot)
                    .unwrap_or_default(),
            )
        })
        .collect();
    let completed: u64 = per_op.iter().map(|(_, s)| s.count).sum();
    Ok(LoadReport {
        requests: plan.len() as u64,
        wall,
        offered_rps: match cfg.mode {
            Mode::Open { rate_per_sec } if rate_per_sec > 0.0 => Some(rate_per_sec),
            _ => None,
        },
        achieved_rps: if wall.as_secs_f64() > 0.0 {
            completed as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        connections,
        seed: cfg.seed,
        mix,
        errors: rec.errors.load(Ordering::Relaxed),
        shed: rec.shed.load(Ordering::Relaxed),
        per_op,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_are_valid_wire_json() {
        for op in OpKind::ALL {
            let line = request_line(op, 3, "tpch:0.01");
            let parsed: Value = serde_json::from_str(&line).expect("valid JSON");
            assert_eq!(
                parsed.get("op").and_then(|v| v.as_str()),
                Some(op.wire_name())
            );
        }
    }

    #[test]
    fn record_reply_classifies_errors_and_sheds() {
        let rec = Recorders::default();
        let d = Duration::from_micros(10);
        assert_eq!(
            record_reply(OpKind::Stats, d, r#"{"ok":true,"result":{}}"#, &rec),
            None
        );
        record_reply(
            OpKind::Stats,
            d,
            r#"{"ok":false,"error":{"code":"bad_request","message":"x"}}"#,
            &rec,
        );
        record_reply(
            OpKind::Stats,
            d,
            r#"{"ok":false,"error":{"code":"busy","message":"queue full"}}"#,
            &rec,
        );
        assert_eq!(rec.errors.load(Ordering::Relaxed), 2);
        assert_eq!(rec.shed.load(Ordering::Relaxed), 1);
        let sid = record_reply(
            OpKind::OpenSession,
            d,
            r#"{"ok":true,"result":{"session":7,"tables":2}}"#,
            &rec,
        );
        assert_eq!(sid, Some(7));
    }

    #[test]
    fn wait_until_honors_past_and_near_deadlines() {
        wait_until(Instant::now()); // already due: returns immediately
        let t = Instant::now();
        wait_until(t + Duration::from_millis(2));
        assert!(t.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn report_json_carries_mix_and_quantiles() {
        let h = hist::Histogram::default();
        h.record(100);
        let report = LoadReport {
            requests: 1,
            wall: Duration::from_secs(1),
            offered_rps: Some(10.0),
            achieved_rps: 1.0,
            connections: 1,
            seed: 42,
            mix: MixCounts {
                per_op: [0, 0, 0, 1],
            },
            errors: 0,
            shed: 0,
            per_op: vec![("stats", h.snapshot())],
        };
        let json = report.to_json();
        assert_eq!(json.get("requests").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            json.get("mix")
                .and_then(|m| m.get("load_mix_stats"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        let ops = json.get("per_op").and_then(|v| v.as_array()).unwrap();
        assert_eq!(ops.len(), 1);
        assert!(ops[0].get("p99_us").and_then(|v| v.as_u64()).unwrap() >= 100);
        assert!(report.render().contains("stats"));
    }
}
