//! # dblayout-loadgen — deterministic, coordinated-omission-safe load
//!
//! A std-only load harness for the advisory server's newline-delimited
//! JSON protocol. Three properties drive the design (DESIGN.md §12):
//!
//! 1. **Deterministic schedules.** The op sequence is a pure function of
//!    `(seed, requests, weights)` — a seeded LCG in [`schedule`], an R6
//!    determinism-zone seed file with no wall-clock input. Identical
//!    seeds give identical request mixes on every host, so the mix
//!    counters stamped into `BENCH_server.json` gate exactly.
//! 2. **Honest tails.** Open-loop mode fixes the arrival process and
//!    charges each request's latency from its *intended* send time, so a
//!    stalled server's queueing delay lands in the histogram instead of
//!    being coordinated away ([`driver`] module docs).
//! 3. **Bounded-error histograms.** Latencies are recorded into
//!    [`dblayout_obs::hist`] log-linear histograms — lock-free, mergeable,
//!    ≤12.5% relative error per bucket, property-tested in `obs`.
//!
//! The `dblayout loadtest` subcommand is the CLI front-end; the
//! loopback integration tests (`tests/loadtest_loopback.rs`) cover
//! determinism and the coordinated-omission contrast.

pub mod driver;
pub mod schedule;

pub use driver::{run_load, LoadConfig, LoadReport, Mode};
pub use schedule::{build_schedule, MixCounts, MixWeights, OpKind};
