//! Property tests for the multilevel coarsening pipeline (ISSUE 9,
//! satellite 2): over ≥100 seeded graphs, heavy-edge matching/contraction
//! preserves total node and edge weight *exactly*, uncoarsening projects a
//! valid partition whose cut equals the coarse cut bit-for-bit, and the
//! multilevel search never produces a worse co-location cost than direct
//! KL.
//!
//! Exactness is not a float-tolerance hand-wave: the generators emit
//! integer-valued weights (as every real access graph does — weights are
//! block counts scaled by integer statement frequencies), and sums of
//! integers below 2^53 are exact in f64 regardless of association order,
//! so `==` on the re-associated sums is the honest assertion.

use dblayout_partition::coarsen::{coarsen, heavy_edge_matching};
use dblayout_partition::{max_cut_partition, multilevel_max_cut, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded random graph with integer-valued weights and mild community
/// structure — the shape of real co-access graphs (hot statement groups
/// touch clustered object sets; cross-group co-access is light). Sizes and
/// fan-outs vary with the seed so the 100-seed sweep covers sparse,
/// dense, and isolated-node corners.
fn seeded_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 60 + (seed as usize * 13) % 240;
    let communities = 3 + (seed as usize) % 7;
    let fanout = 2 + (seed as usize) % 4;
    let mut g = Graph::new(n);
    for u in 0..n {
        g.add_node_weight(u, rng.gen_range(1..500) as f64);
    }
    let span = n.div_ceil(communities).max(1);
    for u in 0..n {
        let home = u / span;
        for _ in 0..fanout {
            let (v, w) = if rng.gen_range(0..100) < 70 {
                let lo = home * span;
                let hi = (lo + span).min(n);
                (rng.gen_range(lo..hi), rng.gen_range(20..80))
            } else {
                (rng.gen_range(0..n), rng.gen_range(1..12))
            };
            if v != u {
                g.add_edge(u, v, w as f64);
            }
        }
    }
    g
}

fn node_weight_sum(g: &Graph) -> f64 {
    (0..g.len()).map(|u| g.node_weight(u)).sum()
}

#[test]
fn contraction_preserves_node_and_edge_weight_exactly_on_100_seeded_graphs() {
    for seed in 0..120u64 {
        let g = seeded_graph(seed);
        let c = coarsen(&g);
        assert_eq!(
            node_weight_sum(&g),
            node_weight_sum(&c.graph),
            "seed {seed}: node weight not conserved"
        );
        assert_eq!(
            g.total_edge_weight(),
            c.graph.total_edge_weight() + c.internal_weight,
            "seed {seed}: edge weight not conserved"
        );
        // The matching itself is a valid involution with only real edges.
        let mate = heavy_edge_matching(&g);
        for (u, &v) in mate.iter().enumerate() {
            assert_eq!(mate[v], u, "seed {seed}: matching not an involution");
            assert!(
                v == u || g.edge_weight(u, v) > 0.0,
                "seed {seed}: matched {u}-{v} without an edge"
            );
        }
    }
}

#[test]
fn full_coarsening_chain_preserves_weight_exactly_on_100_seeded_graphs() {
    for seed in 0..110u64 {
        let g = seeded_graph(seed);
        let nodes = node_weight_sum(&g);
        let edges = g.total_edge_weight();
        let mut cur = g;
        let mut dropped = 0.0;
        // Contract all the way down to (near) a single node.
        for _ in 0..32 {
            let c = coarsen(&cur);
            dropped += c.internal_weight;
            let stalled = c.graph.len() == cur.len();
            cur = c.graph;
            if stalled || cur.len() <= 1 {
                break;
            }
        }
        assert_eq!(nodes, node_weight_sum(&cur), "seed {seed}");
        assert_eq!(edges, cur.total_edge_weight() + dropped, "seed {seed}");
    }
}

#[test]
fn uncoarsening_projects_a_valid_partition_on_100_seeded_graphs() {
    for seed in 0..110u64 {
        let g = seeded_graph(seed);
        let parts = 2 + (seed as usize) % 8;
        let c = coarsen(&g);
        let coarse_assign = max_cut_partition(&c.graph, parts);
        // Exact-weight-preserving projection: fine[u] = coarse[map[u]].
        let fine_assign: Vec<usize> = c.map.iter().map(|&cu| coarse_assign[cu]).collect();
        assert_eq!(fine_assign.len(), g.len(), "seed {seed}");
        assert!(
            fine_assign.iter().all(|&p| p < parts),
            "seed {seed}: label out of range"
        );
        // Crossing fine edges are exactly the coarse crossing edges with
        // weights accumulated, so the cuts agree bit-for-bit.
        assert_eq!(
            g.cut_weight(&fine_assign),
            c.graph.cut_weight(&coarse_assign),
            "seed {seed}: projected cut diverged from coarse cut"
        );
    }
}

#[test]
fn multilevel_colocation_cost_never_exceeds_direct_kl_on_100_seeded_graphs() {
    // Step 1 of TS-GREEDY *maximizes* cut weight, i.e. minimizes the
    // co-located (internal) weight — that internal weight is the "cut
    // cost" a partition pays. Multilevel must never pay more than the
    // direct O(n²) search it replaces.
    let mut multilevel_strictly_better = 0usize;
    for seed in 0..110u64 {
        let g = seeded_graph(seed);
        let parts = 2 + (seed as usize) % 8;
        let direct = max_cut_partition(&g, parts);
        let ml = multilevel_max_cut(&g, parts);
        let direct_cost = g.internal_weight(&direct);
        let ml_cost = g.internal_weight(&ml);
        assert!(
            ml_cost <= direct_cost + 1e-9,
            "seed {seed} (n={}, parts={parts}): multilevel co-location cost {ml_cost} \
             exceeds direct KL {direct_cost}",
            g.len()
        );
        if ml_cost < direct_cost - 1e-9 {
            multilevel_strictly_better += 1;
        }
    }
    // Sanity that the comparison is not vacuous (both all-zero, say).
    assert!(
        multilevel_strictly_better > 0,
        "multilevel never strictly improved on direct KL across all seeds — \
         the V-cycle is probably not engaging"
    );
}
