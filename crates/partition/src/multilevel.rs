//! Multilevel max-cut: coarsen → direct KL at the coarsest level →
//! uncoarsen with boundary refinement.
//!
//! `kl::max_cut_partition` rescans every node per move, so one pass is
//! O(n²·deg) — fine for paper-scale access graphs (dozens of objects),
//! hopeless for the mega-scale family (thousands). The multilevel pipeline
//! runs the expensive direct search only on a graph contracted below
//! `coarsest_nodes`, then walks the coarsening hierarchy back up,
//! projecting the partition through each level's fine→coarse map and
//! repairing it with cheap single-node gain sweeps (O(E + n·parts) per
//! pass, bounded passes) instead of the quadratic KL pass.
//!
//! Determinism argument (DESIGN.md §11): the matching and contraction are
//! id-ordered over sorted adjacency (`coarsen.rs`), projection is exact
//! (`fine[u] = coarse[map[u]]` — no arithmetic, and because contraction
//! accumulates crossing-edge weights exactly, the projected fine cut
//! equals the coarse cut bit-for-bit), and the refinement sweep visits
//! nodes in ascending id order with a fixed tie-break (smallest target
//! partition). The whole pipeline is a pure function of the input graph.

use std::collections::BinaryHeap;

use crate::coarsen::coarsen;
use crate::graph::Graph;
use crate::kl::{greedy_seed, max_cut_partition};

/// Tuning knobs for the multilevel V-cycle. The defaults keep the coarsest
/// direct search around a hundred nodes, where `max_cut_partition` costs
/// single-digit milliseconds.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// Stop coarsening once the graph has at most this many nodes; the
    /// direct KL search runs there.
    pub coarsest_nodes: usize,
    /// Abort coarsening early when a level fails to shrink the node count
    /// by at least this factor (guards against matching stalls on graphs
    /// with many isolated nodes).
    pub min_shrink: f64,
    /// Upper bound on refinement sweeps per uncoarsening level; each sweep
    /// stops early once no node moves.
    pub max_refine_passes: usize,
    /// Upper bound on cut-neutral balance sweeps after the V-cycle; each
    /// sweep stops early once no node moves. See [`balance_pass`].
    pub max_balance_passes: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        Self {
            coarsest_nodes: 96,
            min_shrink: 0.95,
            max_refine_passes: 24,
            max_balance_passes: 16,
        }
    }
}

/// `multilevel_max_cut_with` under the default configuration.
pub fn multilevel_max_cut(g: &Graph, parts: usize) -> Vec<usize> {
    multilevel_max_cut_with(g, parts, &MultilevelConfig::default())
}

/// Partitions `g` into `parts` groups maximizing cut weight via the
/// coarsen / direct-search / refine V-cycle. Deterministic: identical
/// inputs produce identical assignments on every run and host.
///
/// # Panics
/// Panics (via `assert!`) when `parts == 0`.
pub fn multilevel_max_cut_with(g: &Graph, parts: usize, cfg: &MultilevelConfig) -> Vec<usize> {
    assert!(parts >= 1, "need at least one partition");
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    if parts == 1 {
        return vec![0; n];
    }

    // Coarsening phase: graphs[i] is the (i+1)-th contraction of `g`,
    // maps[i] sends level i-1 (or `g` for i == 0) into graphs[i].
    let mut graphs: Vec<Graph> = Vec::new();
    let mut maps: Vec<Vec<usize>> = Vec::new();
    loop {
        let cur = graphs.last().unwrap_or(g);
        if cur.len() <= cfg.coarsest_nodes {
            break;
        }
        let c = coarsen(cur);
        if (c.graph.len() as f64) > (cur.len() as f64) * cfg.min_shrink {
            break;
        }
        maps.push(c.map);
        graphs.push(c.graph);
    }

    // Direct search at the coarsest level.
    let coarsest = graphs.last().unwrap_or(g);
    let mut assignment = max_cut_partition(coarsest, parts);

    // Uncoarsening phase: project one level down, then repair locally.
    for lvl in (0..graphs.len()).rev() {
        let fine = if lvl == 0 { g } else { &graphs[lvl - 1] };
        let map = &maps[lvl];
        let mut projected = vec![0usize; fine.len()];
        for (u, slot) in projected.iter_mut().enumerate() {
            *slot = assignment[map[u]];
        }
        refine_max_cut(fine, parts, &mut projected, cfg.max_refine_passes);
        assignment = projected;
    }

    // Quality floor: heavy-edge matching optimizes for *min*-cut locality,
    // so on some graphs the V-cycle lands in a local optimum a flat greedy
    // seeding avoids. Race the result against greedy-seed + FM refinement
    // (both cheap: O(n·parts·deg) and O((E + n·parts)·log n)) and keep
    // whichever cuts strictly more; ties keep the V-cycle result. Both
    // contenders are deterministic, so the winner is too.
    if !graphs.is_empty() {
        let mut challenger = greedy_seed(g, parts);
        refine_max_cut(g, parts, &mut challenger, cfg.max_refine_passes);
        if g.cut_weight(&challenger) > g.cut_weight(&assignment) + 1e-12 {
            assignment = challenger;
        }
        // At mega scale the cut objective saturates (almost every edge is
        // already cut across dozens of parts), so what separates a good
        // step-1 layout from a bad one is *node-weight balance* — heavy-
        // edge matching produces lumpy supernodes whose projection loads a
        // few parts far beyond their share. Rebalance with moves that
        // provably leave the cut untouched.
        balance_pass(g, parts, &mut assignment, cfg.max_balance_passes);
    }
    // When the input was already at or below `coarsest_nodes` no levels
    // exist; the direct result on `g` itself is returned untouched, so the
    // small-graph path is bit-identical to plain `max_cut_partition`.
    assignment
}

/// Cut-neutral balance sweeps: move a node `u` from its partition to a
/// strictly lighter one only when `u`'s co-access into the target equals
/// its co-access into its current partition exactly — the move then changes
/// the cut weight by `co[from] − co[to] = 0` while strictly decreasing the
/// sum of squared partition node weights (the move requires
/// `weight[from] > weight[target] + node_weight(u)`), so sweeps terminate.
///
/// Deterministic: nodes are visited in ascending id order, the target is
/// the admissible partition with the smallest weight (ties → smallest
/// partition id), and the co-access table is maintained incrementally in
/// the same visit order. Returns the number of moves applied.
pub fn balance_pass(g: &Graph, parts: usize, assignment: &mut [usize], max_passes: usize) -> usize {
    assert!(parts >= 1, "need at least one partition");
    assert_eq!(assignment.len(), g.len(), "assignment length mismatch");
    let n = g.len();
    if parts < 2 || n < 2 {
        return 0;
    }
    let mut weight = vec![0.0f64; parts];
    for (u, &p) in assignment.iter().enumerate() {
        weight[p] += g.node_weight(u);
    }
    let mut co = vec![0.0f64; n * parts];
    for u in 0..n {
        for (v, w) in g.neighbors(u) {
            co[u * parts + assignment[v]] += w;
        }
    }
    let mut moved_total = 0usize;
    for _ in 0..max_passes {
        let mut moved = 0usize;
        for u in 0..n {
            let from = assignment[u];
            let w_u = g.node_weight(u);
            if w_u <= 0.0 {
                continue;
            }
            let row = &co[u * parts..(u + 1) * parts];
            let co_from = row[from];
            let mut best: Option<usize> = None;
            for (p, &c) in row.iter().enumerate() {
                if p == from || c != co_from {
                    continue;
                }
                if weight[from] > weight[p] + w_u && best.is_none_or(|b| weight[p] < weight[b]) {
                    best = Some(p);
                }
            }
            if let Some(to) = best {
                assignment[u] = to;
                weight[from] -= w_u;
                weight[to] += w_u;
                for (v, w) in g.neighbors(u) {
                    co[v * parts + from] -= w;
                    co[v * parts + to] += w;
                }
                moved += 1;
            }
        }
        moved_total += moved;
        if moved == 0 {
            break;
        }
    }
    moved_total
}

/// A pending single-node move in the refinement heap. Max-heap order is
/// gain descending, then node id ascending — the documented tie-break
/// (DESIGN.md §11) that keeps pop order a pure function of the gain table.
#[derive(Debug, PartialEq)]
struct MoveEntry {
    gain: f64,
    node: usize,
    target: usize,
    stamp: u64,
}

impl Eq for MoveEntry {}

impl Ord for MoveEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for MoveEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// FM-style boundary refinement for max-cut: move nodes one at a time to
/// the partition minimizing their co-located edge weight, allowing
/// negative-gain moves, then keep only the best prefix of the move
/// sequence — the same lock-and-rollback discipline as `kl.rs`, at
/// O((E + n·parts)·log n) per pass instead of the O(n²·parts) full
/// multiway pass.
///
/// Candidates live in a max-heap ordered by (gain descending, node id
/// ascending); entries are lazily invalidated by a per-node stamp when a
/// neighbor's move changes the gain table. Each pass locks every moved
/// node once, tracks the cumulative gain, and rolls back past the best
/// prefix (strict improvement above the shared 1e-12 threshold). Passes
/// repeat until one keeps no move or `max_passes` is hit. Returns the
/// total number of moves kept. Deterministic: pop order, target choice
/// (smallest partition id on ties), and rollback are all pure functions
/// of the input.
pub fn refine_max_cut(
    g: &Graph,
    parts: usize,
    assignment: &mut [usize],
    max_passes: usize,
) -> usize {
    assert!(parts >= 1, "need at least one partition");
    assert_eq!(assignment.len(), g.len(), "assignment length mismatch");
    if parts < 2 || g.len() < 2 {
        return 0;
    }
    let n = g.len();
    // Flat n×parts co-access table: co[u*parts + p] = weight of u's edges
    // into partition p. Rebuilt once per pass, maintained incrementally
    // within a pass.
    let mut co = vec![0.0f64; n * parts];
    let mut kept_total = 0usize;
    for _ in 0..max_passes {
        let kept = fm_pass(g, parts, assignment, &mut co);
        kept_total += kept;
        if kept == 0 {
            break;
        }
    }
    kept_total
}

/// Best move for `u` out of its current partition: the target minimizing
/// co-located weight (ties → smallest partition id) and the resulting
/// gain (may be negative).
fn best_move(co: &[f64], parts: usize, u: usize, from: usize) -> (usize, f64) {
    let row = &co[u * parts..(u + 1) * parts];
    let mut best_p = usize::MAX;
    let mut best_co = f64::INFINITY;
    for (p, &c) in row.iter().enumerate() {
        if p != from && c < best_co {
            best_p = p;
            best_co = c;
        }
    }
    (best_p, row[from] - best_co)
}

/// One lock-and-rollback pass; see `refine_max_cut`.
fn fm_pass(g: &Graph, parts: usize, assignment: &mut [usize], co: &mut [f64]) -> usize {
    let n = g.len();
    co.fill(0.0);
    for u in 0..n {
        for (v, w) in g.neighbors(u) {
            co[u * parts + assignment[v]] += w;
        }
    }
    let mut locked = vec![false; n];
    let mut stamp = vec![0u64; n];
    let mut heap: BinaryHeap<MoveEntry> = BinaryHeap::with_capacity(n);
    for (u, &au) in assignment.iter().enumerate() {
        if g.degree(u) == 0 {
            continue;
        }
        let (target, gain) = best_move(co, parts, u, au);
        heap.push(MoveEntry {
            gain,
            node: u,
            target,
            stamp: 0,
        });
    }
    let mut moves: Vec<(usize, usize)> = Vec::new();
    let mut cumulative = 0.0f64;
    let mut best_sum = 0.0f64;
    let mut best_len = 0usize;
    while let Some(e) = heap.pop() {
        if locked[e.node] || e.stamp != stamp[e.node] || e.target == usize::MAX {
            continue;
        }
        let from = assignment[e.node];
        locked[e.node] = true;
        assignment[e.node] = e.target;
        cumulative += e.gain;
        moves.push((e.node, from));
        if cumulative > best_sum + 1e-12 {
            best_sum = cumulative;
            best_len = moves.len();
        }
        for (v, w) in g.neighbors(e.node) {
            co[v * parts + from] -= w;
            co[v * parts + e.target] += w;
            if !locked[v] {
                stamp[v] += 1;
                let (target, gain) = best_move(co, parts, v, assignment[v]);
                heap.push(MoveEntry {
                    gain,
                    node: v,
                    target,
                    stamp: stamp[v],
                });
            }
        }
    }
    // Undo everything past the best prefix (in reverse, restoring the
    // partition each node came from).
    for &(u, from) in moves[best_len..].iter().rev() {
        assignment[u] = from;
    }
    best_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Seeded random graph with integer-valued weights (so every f64 sum
    /// is exact regardless of association) and mild community structure,
    /// mirroring the co-access graphs the advisor actually partitions.
    fn community_graph(n: usize, communities: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        for u in 0..n {
            g.add_node_weight(u, rng.gen_range(1..100) as f64);
        }
        let span = n.div_ceil(communities.max(1));
        for u in 0..n {
            let home = u / span.max(1);
            for _ in 0..3 {
                // Mostly intra-community heavy edges, occasional light
                // cross links.
                let (v, w) = if rng.gen_range(0..100) < 70 {
                    let lo = home * span;
                    let hi = (lo + span).min(n);
                    (rng.gen_range(lo..hi), rng.gen_range(20..60))
                } else {
                    (rng.gen_range(0..n), rng.gen_range(1..10))
                };
                if v != u {
                    g.add_edge(u, v, w as f64);
                }
            }
        }
        g
    }

    #[test]
    fn small_graphs_bypass_coarsening_and_match_direct_kl() {
        for seed in 0..10u64 {
            let g = community_graph(40, 4, seed);
            let direct = max_cut_partition(&g, 3);
            let ml = multilevel_max_cut(&g, 3);
            assert_eq!(
                direct, ml,
                "seed {seed}: 40 ≤ coarsest_nodes ⇒ identical path"
            );
        }
    }

    #[test]
    fn multilevel_is_deterministic() {
        let g = community_graph(300, 6, 42);
        let a = multilevel_max_cut(&g, 8);
        let b = multilevel_max_cut(&g, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn assignment_is_a_valid_partition() {
        let g = community_graph(500, 8, 7);
        let parts = 16;
        let a = multilevel_max_cut(&g, parts);
        assert_eq!(a.len(), g.len());
        assert!(a.iter().all(|&p| p < parts));
    }

    #[test]
    fn refinement_never_reduces_cut_weight() {
        for seed in 0..20u64 {
            let g = community_graph(150, 5, seed);
            let mut assignment: Vec<usize> = (0..g.len()).map(|u| u % 4).collect();
            let before = g.cut_weight(&assignment);
            refine_max_cut(&g, 4, &mut assignment, 24);
            let after = g.cut_weight(&assignment);
            assert!(
                after >= before,
                "seed {seed}: refinement regressed cut {before} -> {after}"
            );
        }
    }

    #[test]
    fn parts_one_and_empty_graph_are_trivial() {
        let g = community_graph(50, 2, 1);
        assert_eq!(multilevel_max_cut(&g, 1), vec![0; 50]);
        assert!(multilevel_max_cut(&Graph::new(0), 4).is_empty());
    }

    #[test]
    fn balance_pass_preserves_cut_and_improves_balance() {
        for seed in 0..20u64 {
            let g = community_graph(300, 6, seed);
            let parts = 8;
            // Deliberately lumpy start: everything in partition 0 except a
            // thin tail.
            let mut a: Vec<usize> = (0..g.len())
                .map(|u| if u % 29 == 0 { u % parts } else { 0 })
                .collect();
            let cut_before = g.cut_weight(&a);
            let sq = |a: &[usize]| -> f64 {
                let mut w = vec![0.0f64; parts];
                for (u, &p) in a.iter().enumerate() {
                    w[p] += g.node_weight(u);
                }
                w.iter().map(|x| x * x).sum()
            };
            let sq_before = sq(&a);
            let moved = balance_pass(&g, parts, &mut a, 16);
            assert_eq!(
                g.cut_weight(&a),
                cut_before,
                "seed {seed}: balance pass changed the cut"
            );
            if moved > 0 {
                assert!(sq(&a) < sq_before, "seed {seed}: balance did not improve");
            }
            assert!(a.iter().all(|&p| p < parts));
        }
    }

    #[test]
    fn balance_pass_is_deterministic() {
        let g = community_graph(400, 8, 5);
        let seed_assignment: Vec<usize> = (0..g.len()).map(|u| u % 3).collect();
        let mut a = seed_assignment.clone();
        let mut b = seed_assignment;
        balance_pass(&g, 16, &mut a, 16);
        balance_pass(&g, 16, &mut b, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn coarsening_actually_engages_on_large_graphs() {
        // Indirect check: a 600-node graph must still produce a valid,
        // deterministic partition with a healthy cut (the direct path
        // would too, but this exercises the V-cycle end to end).
        let g = community_graph(600, 10, 9);
        let a = multilevel_max_cut(&g, 12);
        let cut = g.cut_weight(&a);
        assert!(
            cut > 0.5 * g.total_edge_weight(),
            "cut {cut} suspiciously low"
        );
    }
}
