//! Undirected weighted graph with node weights.

/// An undirected graph over nodes `0..n` with `f64` node and edge weights.
///
/// In the advisor's access graph, node weights are total blocks accessed for
/// an object and edge weights are total blocks co-accessed between two
/// objects (paper §4.1). Parallel `add_edge` calls accumulate, matching how
/// Figure 6 increments edge weights per statement.
///
/// Adjacency is a flat sorted vector per node (not a hash map): neighbor
/// iteration order is then a pure function of the edge set, so every float
/// accumulation downstream (KL gain sums, coarsening contractions) replays
/// in the same order on every run and every host — a prerequisite for the
/// R6 determinism zone that `coarsen`/`multilevel` live in — and the scan
/// is cache-friendly at mega-graph sizes.
#[derive(Debug, Clone)]
pub struct Graph {
    node_weights: Vec<f64>,
    adj: Vec<Vec<(usize, f64)>>,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes of weight 0.
    pub fn new(n: usize) -> Self {
        Self {
            node_weights: vec![0.0; n],
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.node_weights.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_weights.is_empty()
    }

    /// Adds `w` to node `u`'s weight.
    pub fn add_node_weight(&mut self, u: usize, w: f64) {
        self.node_weights[u] += w;
    }

    /// Node `u`'s weight.
    pub fn node_weight(&self, u: usize) -> f64 {
        self.node_weights[u]
    }

    /// Accumulates `w` onto the undirected edge `(u, v)`.
    ///
    /// # Panics
    /// Panics on self-loops (an object is never "co-accessed with itself" in
    /// the access-graph model) and on out-of-range nodes.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(u < self.len() && v < self.len(), "node out of range");
        Self::accumulate(&mut self.adj[u], v, w);
        Self::accumulate(&mut self.adj[v], u, w);
    }

    /// Adds `w` to the slot for neighbor `v` in a sorted adjacency row,
    /// inserting the slot if absent.
    fn accumulate(row: &mut Vec<(usize, f64)>, v: usize, w: f64) {
        match row.binary_search_by_key(&v, |&(n, _)| n) {
            Ok(i) => row[i].1 += w,
            Err(i) => row.insert(i, (v, w)),
        }
    }

    /// Weight of edge `(u, v)`; 0 when absent.
    pub fn edge_weight(&self, u: usize, v: usize) -> f64 {
        match self.adj[u].binary_search_by_key(&v, |&(n, _)| n) {
            Ok(i) => self.adj[u][i].1,
            Err(_) => 0.0,
        }
    }

    /// Neighbors of `u` with edge weights, in ascending neighbor id order.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adj[u].iter().copied()
    }

    /// Node degree (number of incident edges).
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// All edges `(u, v, w)` with `u < v`, sorted by `(u, v)`.
    pub fn edges(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &(v, w) in nbrs {
                if u < v {
                    out.push((u, v, w));
                }
            }
        }
        out
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|m| m.len()).sum::<usize>() / 2
    }

    /// Sum of all edge weights.
    pub fn total_edge_weight(&self) -> f64 {
        self.edges().iter().map(|&(_, _, w)| w).sum()
    }

    /// Scales every node and edge weight by `factor` in place.
    ///
    /// This is the epoch-advance primitive of the decayed access graph
    /// (`dblayout-relayout`): multiplying all weights by a decay factor
    /// ages past observations while new folds keep accumulating at full
    /// weight. Callers that need the decay-1.0 identity skip the call
    /// entirely rather than multiplying by 1.0, so the no-decay path stays
    /// bit-for-bit the plain accumulation path.
    pub fn scale(&mut self, factor: f64) {
        for w in &mut self.node_weights {
            *w *= factor;
        }
        for nbrs in &mut self.adj {
            for slot in nbrs.iter_mut() {
                slot.1 *= factor;
            }
        }
    }

    /// Sum of edge weights crossing partitions under `assignment`
    /// (`assignment[u]` = partition of node `u`).
    pub fn cut_weight(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.len());
        self.edges()
            .iter()
            .filter(|&&(u, v, _)| assignment[u] != assignment[v])
            .map(|&(_, _, w)| w)
            .sum()
    }

    /// Sum of edge weights *within* partitions (total − cut).
    pub fn internal_weight(&self, assignment: &[usize]) -> f64 {
        self.total_edge_weight() - self.cut_weight(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 20.0);
        g.add_edge(0, 2, 30.0);
        g
    }

    #[test]
    fn edges_accumulate() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 0, 7.0);
        assert_eq!(g.edge_weight(0, 1), 12.0);
        assert_eq!(g.edge_weight(1, 0), 12.0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Graph::new(2).add_edge(1, 1, 1.0);
    }

    #[test]
    fn missing_edge_is_zero() {
        let g = Graph::new(3);
        assert_eq!(g.edge_weight(0, 2), 0.0);
    }

    #[test]
    fn cut_plus_internal_is_total() {
        let g = triangle();
        let assignment = vec![0, 1, 0];
        let total = g.total_edge_weight();
        assert_eq!(
            g.cut_weight(&assignment) + g.internal_weight(&assignment),
            total
        );
    }

    #[test]
    fn cut_weight_counts_crossing_edges() {
        let g = triangle();
        // 0|12: edges (0,1)=10 and (0,2)=30 cross.
        assert_eq!(g.cut_weight(&[0, 1, 1]), 40.0);
        // all same partition: nothing crosses.
        assert_eq!(g.cut_weight(&[0, 0, 0]), 0.0);
        // all distinct: everything crosses.
        assert_eq!(g.cut_weight(&[0, 1, 2]), 60.0);
    }

    #[test]
    fn node_weights_accumulate() {
        let mut g = Graph::new(1);
        g.add_node_weight(0, 100.0);
        g.add_node_weight(0, 50.0);
        assert_eq!(g.node_weight(0), 150.0);
    }

    #[test]
    fn edges_sorted_and_deduped() {
        let g = triangle();
        assert_eq!(g.edges(), vec![(0, 1, 10.0), (0, 2, 30.0), (1, 2, 20.0)]);
    }

    #[test]
    fn neighbors_iterate_in_ascending_id_order() {
        let mut g = Graph::new(5);
        // Insert out of order; iteration must still be sorted.
        g.add_edge(2, 4, 1.0);
        g.add_edge(2, 0, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(2, 1, 1.0);
        let ids: Vec<usize> = g.neighbors(2).map(|(v, _)| v).collect();
        assert_eq!(ids, vec![0, 1, 3, 4]);
    }

    #[test]
    fn degree_counts_neighbors() {
        let g = triangle();
        assert_eq!(g.degree(0), 2);
        let lone = Graph::new(1);
        assert_eq!(lone.degree(0), 0);
    }
}
