//! Kernighan–Lin-style max-cut partitioning.
//!
//! The classic KL algorithm minimizes the cut of a bipartition by swapping
//! locked pairs and keeping the best prefix of the swap sequence. The
//! paper's step 1 wants the *opposite* objective — maximize the weight of
//! edges **across** partitions so co-accessed objects separate — which is
//! the same algorithm with gains negated. For `m > 2` partitions we use a
//! generalized single-move KL (Fiduccia–Mattheyses-style passes): each pass
//! tentatively moves every node once (best gain first, negative gains
//! allowed), then rolls back to the best prefix; passes repeat until no
//! improvement. Greedy seeding places heavy nodes first in the partition
//! minimizing internal co-access.

use crate::graph::Graph;

/// Two-way Kernighan–Lin maximizing the cut. Returns partition labels 0/1.
///
/// Starts from an even-odd split and applies KL swap passes until a pass
/// yields no improvement.
pub fn kl_bipartition(g: &Graph) -> Vec<usize> {
    let n = g.len();
    let mut assignment: Vec<usize> = (0..n).map(|u| u % 2).collect();
    loop {
        let improved = kl_swap_pass(g, &mut assignment);
        if !improved {
            return assignment;
        }
    }
}

/// One classic KL pass over a bipartition: compute the best sequence of
/// pair swaps (with locking) and keep the prefix with the highest cumulative
/// cut gain. Returns whether the cut strictly improved.
fn kl_swap_pass(g: &Graph, assignment: &mut [usize]) -> bool {
    let n = g.len();
    let mut locked = vec![false; n];
    // D[u] = gain in cut from moving u to the other side
    //      = internal(u) − external(u)   [for max-cut]
    let mut d = vec![0.0f64; n];
    let recompute = |d: &mut [f64], assignment: &[usize], locked: &[bool]| {
        for u in 0..n {
            if locked[u] {
                continue;
            }
            let mut internal = 0.0;
            let mut external = 0.0;
            for (v, w) in g.neighbors(u) {
                if assignment[v] == assignment[u] {
                    internal += w;
                } else {
                    external += w;
                }
            }
            d[u] = internal - external;
        }
    };
    recompute(&mut d, assignment, &locked);

    let mut swaps: Vec<(usize, usize, f64)> = Vec::new();
    let mut work = assignment.to_vec();
    let pairs = {
        let a_count = work.iter().filter(|&&p| p == 0).count();
        a_count.min(n - a_count)
    };
    for _ in 0..pairs {
        // Pick the unlocked cross pair (a in 0, b in 1) with max combined gain.
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..n {
            if locked[a] || work[a] != 0 {
                continue;
            }
            for b in 0..n {
                if locked[b] || work[b] != 1 {
                    continue;
                }
                // The (a,b) edge crosses the cut both before and after a
                // simultaneous swap, but d[a] and d[b] each counted it as a
                // −w loss (they assume the other endpoint stays put), so the
                // pair gain needs a +2w correction — the max-cut mirror of
                // classic KL's g = D[a] + D[b] − 2·c(a,b).
                let gain = d[a] + d[b] + 2.0 * g.edge_weight(a, b);
                if best.is_none() || gain > best.unwrap().2 {
                    best = Some((a, b, gain));
                }
            }
        }
        let Some((a, b, gain)) = best else { break };
        work[a] = 1;
        work[b] = 0;
        locked[a] = true;
        locked[b] = true;
        swaps.push((a, b, gain));
        recompute(&mut d, &work, &locked);
    }

    // Best prefix of cumulative gains.
    let mut best_k = 0;
    let mut best_sum = 0.0;
    let mut sum = 0.0;
    for (k, &(_, _, gain)) in swaps.iter().enumerate() {
        sum += gain;
        if sum > best_sum + 1e-12 {
            best_sum = sum;
            best_k = k + 1;
        }
    }
    if best_k == 0 {
        return false;
    }
    for &(a, b, _) in &swaps[..best_k] {
        assignment[a] = 1;
        assignment[b] = 0;
    }
    true
}

/// Multiway max-cut partitioning into `parts` parts.
///
/// Greedy seeding (heaviest nodes first, each into the partition with least
/// co-access to it) followed by KL-style single-move refinement passes with
/// locking and best-prefix rollback. Deterministic.
///
/// Returns `assignment[u] ∈ 0..parts`. With `parts >= n` every node gets its
/// own partition (maximum possible cut).
pub fn max_cut_partition(g: &Graph, parts: usize) -> Vec<usize> {
    assert!(parts >= 1, "need at least one partition");
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    if parts == 1 {
        return vec![0; n];
    }

    let mut assignment = greedy_seed(g, parts);

    // --- KL-style refinement ---
    loop {
        if !multiway_pass(g, parts, &mut assignment) {
            break;
        }
    }
    assignment
}

/// Greedy seeding: the opening phase of [`max_cut_partition`], exposed so
/// the multilevel pipeline can use it as a deterministic quality-floor
/// challenger without paying for the O(n²) refinement passes.
///
/// Orders nodes by descending node weight (ties by id for determinism):
/// heavy objects claim empty partitions first, mirroring step 2-3 of
/// Figure 9 which assigns partitions in descending node-weight order. Each
/// node lands in the partition with the smallest co-access to it (ties →
/// smallest partition id).
pub fn greedy_seed(g: &Graph, parts: usize) -> Vec<usize> {
    assert!(parts >= 1, "need at least one partition");
    let n = g.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        g.node_weight(b)
            .total_cmp(&g.node_weight(a))
            .then(a.cmp(&b))
    });
    let mut assignment = vec![usize::MAX; n];
    for &u in &order {
        let mut best_p = 0;
        let mut best_cost = f64::INFINITY;
        for p in 0..parts {
            let cost: f64 = g
                .neighbors(u)
                .filter(|&(v, _)| assignment[v] == p)
                .map(|(_, w)| w)
                .sum();
            if cost < best_cost {
                best_cost = cost;
                best_p = p;
            }
        }
        assignment[u] = best_p;
    }
    assignment
}

/// One multiway refinement pass: tentatively move every node once (best
/// single-node move first, negative gains allowed to escape local optima),
/// then keep the best prefix. Returns whether the cut strictly improved.
fn multiway_pass(g: &Graph, parts: usize, assignment: &mut [usize]) -> bool {
    let n = g.len();
    let mut locked = vec![false; n];
    let mut work = assignment.to_vec();
    let mut moves: Vec<(usize, usize, usize, f64)> = Vec::new(); // (node, from, to, gain)

    for _ in 0..n {
        let mut best: Option<(usize, usize, f64)> = None; // (node, to, gain)
        for u in 0..n {
            if locked[u] {
                continue;
            }
            // co[p] = co-access weight of u into partition p
            let mut co = vec![0.0f64; parts];
            for (v, w) in g.neighbors(u) {
                co[work[v]] += w;
            }
            let from = work[u];
            for (to, &co_to) in co.iter().enumerate() {
                if to == from {
                    continue;
                }
                // Moving u from `from` to `to` converts co[from] from
                // internal to cut (+) and co[to] from cut to internal (−).
                let gain = co[from] - co_to;
                if best.is_none() || gain > best.unwrap().2 {
                    best = Some((u, to, gain));
                }
            }
        }
        let Some((u, to, gain)) = best else { break };
        moves.push((u, work[u], to, gain));
        work[u] = to;
        locked[u] = true;
    }

    let mut best_k = 0;
    let mut best_sum = 0.0;
    let mut sum = 0.0;
    for (k, &(_, _, _, gain)) in moves.iter().enumerate() {
        sum += gain;
        if sum > best_sum + 1e-12 {
            best_sum = sum;
            best_k = k + 1;
        }
    }
    if best_k == 0 {
        return false;
    }
    for &(u, _, to, _) in &moves[..best_k] {
        assignment[u] = to;
    }
    true
}

/// Exhaustive max-cut over all `parts^n` assignments (first node pinned to
/// partition 0 to break symmetry). Only for small instances — used to
/// validate [`max_cut_partition`] in tests and the A2 ablation.
///
/// # Panics
/// Panics when `parts^n` exceeds ~10⁷ states.
pub fn exhaustive_max_cut(g: &Graph, parts: usize) -> Vec<usize> {
    let n = g.len();
    assert!(parts >= 1);
    if n == 0 {
        return Vec::new();
    }
    let states = (parts as f64).powi((n as i32 - 1).max(0));
    assert!(states <= 1e7, "instance too large for exhaustive search");

    let mut best = vec![0; n];
    let mut best_cut = f64::NEG_INFINITY;
    let mut current = vec![0usize; n];
    loop {
        let cut = g.cut_weight(&current);
        if cut > best_cut {
            best_cut = cut;
            best = current.clone();
        }
        // Odometer increment over positions 1..n (position 0 pinned).
        let mut i = 1;
        loop {
            if i >= n {
                return best;
            }
            current[i] += 1;
            if current[i] < parts {
                break;
            }
            current[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two hot pairs: (0,1) and (2,3) heavily co-accessed; cross edges tiny.
    fn two_pairs() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 100.0);
        g.add_edge(2, 3, 100.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(1, 3, 1.0);
        g
    }

    #[test]
    fn bipartition_separates_hot_pairs() {
        let g = two_pairs();
        let a = kl_bipartition(&g);
        // Max cut must separate 0 from 1 and 2 from 3 (cut = 200 + maybe 2).
        assert_ne!(a[0], a[1]);
        assert_ne!(a[2], a[3]);
        assert!(g.cut_weight(&a) >= 200.0);
    }

    #[test]
    fn bipartition_matches_exhaustive_on_small_graphs() {
        let g = two_pairs();
        let heuristic = g.cut_weight(&kl_bipartition(&g));
        let optimal = g.cut_weight(&exhaustive_max_cut(&g, 2));
        assert!(heuristic >= optimal - 1e-9, "{heuristic} < {optimal}");
    }

    #[test]
    fn multiway_uses_all_partitions_when_beneficial() {
        // Triangle with equal weights: 3 partitions cut everything.
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 10.0);
        g.add_edge(0, 2, 10.0);
        let a = max_cut_partition(&g, 3);
        assert_eq!(g.cut_weight(&a), 30.0);
    }

    #[test]
    fn multiway_matches_exhaustive_on_random_small_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n = rng.gen_range(2..7);
            let parts = rng.gen_range(2..4);
            let mut g = Graph::new(n);
            for u in 0..n {
                g.add_node_weight(u, rng.gen_range(1.0..100.0));
                for v in (u + 1)..n {
                    if rng.gen_bool(0.7) {
                        g.add_edge(u, v, rng.gen_range(1.0..50.0));
                    }
                }
            }
            let heuristic = g.cut_weight(&max_cut_partition(&g, parts));
            let optimal = g.cut_weight(&exhaustive_max_cut(&g, parts));
            // Heuristic should be within 10% of optimal on tiny graphs.
            assert!(
                heuristic >= 0.9 * optimal - 1e-9,
                "trial {trial}: heuristic {heuristic} vs optimal {optimal}"
            );
        }
    }

    #[test]
    fn single_partition_returns_zeros() {
        let g = two_pairs();
        assert_eq!(max_cut_partition(&g, 1), vec![0, 0, 0, 0]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(max_cut_partition(&g, 4).is_empty());
        assert!(kl_bipartition(&g).is_empty());
        assert!(exhaustive_max_cut(&g, 2).is_empty());
    }

    #[test]
    fn isolated_nodes_are_fine() {
        let g = Graph::new(5); // no edges at all
        let a = max_cut_partition(&g, 3);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|&p| p < 3));
    }

    #[test]
    fn more_parts_than_nodes() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 5.0);
        let a = max_cut_partition(&g, 8);
        assert_ne!(a[0], a[1]); // full cut achievable
    }

    #[test]
    fn labels_in_range() {
        let g = two_pairs();
        for parts in 1..5 {
            let a = max_cut_partition(&g, parts);
            assert!(a.iter().all(|&p| p < parts));
        }
    }

    #[test]
    fn exhaustive_pins_first_node() {
        let g = two_pairs();
        let a = exhaustive_max_cut(&g, 2);
        assert_eq!(a[0], 0);
    }

    #[test]
    fn refinement_never_worse_than_seeding_alone() {
        // Path graph where greedy seeding can be suboptimal.
        let mut g = Graph::new(6);
        for u in 0..5 {
            g.add_edge(u, u + 1, (u + 1) as f64 * 10.0);
        }
        let a = max_cut_partition(&g, 2);
        let optimal = g.cut_weight(&exhaustive_max_cut(&g, 2));
        assert!(g.cut_weight(&a) >= 0.9 * optimal);
    }
}
