//! Heavy-edge matching and graph contraction — the coarsening half of the
//! multilevel max-cut pipeline (`multilevel.rs`).
//!
//! METIS-style multilevel partitioning makes KL-family search scale: match
//! pairs of nodes along heavy edges, contract each matched pair into one
//! coarse node, repeat until the graph is small enough for the O(n²)
//! direct search, then project the coarse partition back down and repair
//! locally. This module provides the two primitives — `heavy_edge_matching`
//! and `contract` — plus the `coarsen` convenience that chains them.
//!
//! Everything here is deterministic by construction: nodes are visited in
//! ascending id order, candidate mates are scanned in the sorted neighbor
//! order `Graph` guarantees, ties break to the smallest id, and contraction
//! accumulates weights in the sorted `edges()` order. Given the same graph,
//! every run on every host produces bit-identical coarse graphs (the code
//! sits in the R1 no-panic and R6 determinism lint zones).

use crate::graph::Graph;

/// Result of contracting one level: the coarse graph, the fine→coarse node
/// map, and the total weight of fine edges that collapsed *inside* coarse
/// nodes (dropped from the coarse edge set, reported so callers can verify
/// exact weight conservation: `graph.total_edge_weight() + internal_weight`
/// equals the fine graph's total edge weight).
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// The contracted graph.
    pub graph: Graph,
    /// `map[u]` = coarse node containing fine node `u`.
    pub map: Vec<usize>,
    /// Total weight of fine edges whose endpoints merged into one coarse
    /// node (these become internal, not coarse self-loops).
    pub internal_weight: f64,
}

/// Computes a maximal matching preferring heavy edges.
///
/// Returns `mate` with `mate[u] == v` when `u` and `v` are matched and
/// `mate[u] == u` when `u` stays single. Deterministic: nodes are visited
/// in ascending id order; each unmatched node takes its heaviest unmatched
/// neighbor, breaking weight ties to the smallest neighbor id (weights are
/// compared exactly — no epsilon — so the choice is a pure function of the
/// edge list).
pub fn heavy_edge_matching(g: &Graph) -> Vec<usize> {
    let n = g.len();
    let mut mate: Vec<usize> = (0..n).collect();
    let mut matched = vec![false; n];
    for u in 0..n {
        if matched[u] {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (v, w) in g.neighbors(u) {
            if matched[v] || v == u {
                continue;
            }
            // Strictly heavier wins; sorted neighbor order means the first
            // (= smallest-id) neighbor at the maximum weight is kept.
            let better = match best {
                None => true,
                Some((_, bw)) => w > bw,
            };
            if better {
                best = Some((v, w));
            }
        }
        if let Some((v, _)) = best {
            mate[u] = v;
            mate[v] = u;
            matched[u] = true;
            matched[v] = true;
        }
    }
    mate
}

/// Contracts `g` along a matching, merging each matched pair into one
/// coarse node.
///
/// Coarse ids are assigned in ascending order of each pair's smaller fine
/// id, so the coarse node numbering is a pure function of the matching.
/// Node weights accumulate in fine id order; edge weights accumulate in
/// the sorted `edges()` order — with the deterministic matching above this
/// makes repeated contractions of the same graph bit-identical.
///
/// # Panics
/// Panics (via `assert!`) when `mate` is not an involution over `0..n`.
pub fn contract(g: &Graph, mate: &[usize]) -> Coarsening {
    let n = g.len();
    assert_eq!(mate.len(), n, "matching length must equal node count");
    let mut map = vec![usize::MAX; n];
    let mut next = 0usize;
    for u in 0..n {
        let v = mate[u];
        assert!(v < n, "matching partner out of range");
        assert_eq!(mate[v], u, "matching must be an involution");
        if map[u] != usize::MAX {
            continue;
        }
        map[u] = next;
        if v != u {
            map[v] = next;
        }
        next += 1;
    }
    let mut coarse = Graph::new(next);
    for (u, &cu) in map.iter().enumerate() {
        coarse.add_node_weight(cu, g.node_weight(u));
    }
    let mut internal_weight = 0.0;
    for (u, v, w) in g.edges() {
        let (cu, cv) = (map[u], map[v]);
        if cu == cv {
            internal_weight += w;
        } else {
            coarse.add_edge(cu, cv, w);
        }
    }
    Coarsening {
        graph: coarse,
        map,
        internal_weight,
    }
}

/// One full coarsening level: heavy-edge matching followed by contraction.
pub fn coarsen(g: &Graph) -> Coarsening {
    contract(g, &heavy_edge_matching(g))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        // 0 -5- 1 -9- 2 -5- 3
        let mut g = Graph::new(4);
        g.add_node_weight(0, 1.0);
        g.add_node_weight(1, 2.0);
        g.add_node_weight(2, 3.0);
        g.add_node_weight(3, 4.0);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 9.0);
        g.add_edge(2, 3, 5.0);
        g
    }

    #[test]
    fn matching_is_an_involution_and_prefers_heavy_edges() {
        let g = path4();
        let mate = heavy_edge_matching(&g);
        for (u, &v) in mate.iter().enumerate() {
            assert_eq!(mate[v], u);
        }
        // Node 0 goes first and takes its only neighbor 1 (greedy maximal
        // matching is id-ordered, not globally optimal), leaving 2-3.
        assert_eq!(mate[0], 1);
        assert_eq!(mate[2], 3);
    }

    #[test]
    fn heaviest_neighbor_wins_with_ties_to_smallest_id() {
        let mut g = Graph::new(4);
        g.add_edge(1, 0, 7.0);
        g.add_edge(1, 2, 9.0);
        g.add_edge(1, 3, 9.0);
        // Visit order starts at node 0, which grabs its only neighbor 1?
        // No — node 0's heaviest neighbor is 1 (weight 7), so 0 matches 1
        // before node 1 is ever visited.
        let mate = heavy_edge_matching(&g);
        assert_eq!(mate[0], 1);
        // Isolated-after-matching nodes stay single.
        assert_eq!(mate[2], 2);
        assert_eq!(mate[3], 3);

        // Starting from node 1 instead: equal 9.0 ties break to id 2.
        let mut h = Graph::new(4);
        h.add_edge(1, 2, 9.0);
        h.add_edge(1, 3, 9.0);
        let mate = heavy_edge_matching(&h);
        assert_eq!(mate[0], 0);
        assert_eq!(mate[1], 2);
        assert_eq!(mate[3], 3);
    }

    #[test]
    fn contract_preserves_node_and_edge_weight_exactly() {
        let g = path4();
        let c = coarsen(&g);
        let fine_nodes: f64 = (0..g.len()).map(|u| g.node_weight(u)).sum();
        let coarse_nodes: f64 = (0..c.graph.len()).map(|u| c.graph.node_weight(u)).sum();
        assert_eq!(fine_nodes, coarse_nodes);
        assert_eq!(
            g.total_edge_weight(),
            c.graph.total_edge_weight() + c.internal_weight
        );
        // {0,1} and {2,3} merge: coarse edge (0,1) carries the old 1-2 edge.
        assert_eq!(c.graph.len(), 2);
        assert_eq!(c.graph.edge_weight(0, 1), 9.0);
        assert_eq!(c.internal_weight, 10.0);
    }

    #[test]
    fn coarse_ids_follow_smallest_fine_id_order() {
        let g = path4();
        let c = coarsen(&g);
        assert_eq!(c.map, vec![0, 0, 1, 1]);
    }

    #[test]
    fn singleton_nodes_survive_contraction() {
        let mut g = Graph::new(3);
        g.add_node_weight(2, 7.0);
        g.add_edge(0, 1, 1.0);
        let c = coarsen(&g);
        assert_eq!(c.graph.len(), 2);
        assert_eq!(c.map, vec![0, 0, 1]);
        assert_eq!(c.graph.node_weight(1), 7.0);
        assert_eq!(c.internal_weight, 1.0);
    }

    #[test]
    #[should_panic(expected = "involution")]
    fn non_involution_matching_is_rejected() {
        let g = path4();
        contract(&g, &[1, 2, 3, 0]);
    }

    #[test]
    fn projected_cut_equals_coarse_cut() {
        let g = path4();
        let c = coarsen(&g);
        let coarse_assign = vec![0, 1];
        let fine_assign: Vec<usize> = c.map.iter().map(|&cu| coarse_assign[cu]).collect();
        assert_eq!(
            g.cut_weight(&fine_assign),
            c.graph.cut_weight(&coarse_assign)
        );
    }
}
