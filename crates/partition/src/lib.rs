#![warn(missing_docs)]

//! Weighted-graph partitioning substrate.
//!
//! Step 1 of the paper's TS-GREEDY search (§6.2, Figure 9) partitions the
//! nodes of the *access graph* into `m` parts "so as to maximize the sum of
//! edge weights across partitions" — i.e. **max-cut** multiway partitioning:
//! objects that are heavily co-accessed should land in *different*
//! partitions (different disks). The paper uses the Kernighan–Lin heuristic
//! [KL70]; we provide:
//!
//! * [`Graph`] — an undirected weighted graph with node weights (total
//!   blocks accessed) and edge weights (co-accessed blocks);
//! * [`kl_bipartition`] — the classic two-way Kernighan–Lin pass structure,
//!   adapted to maximize the cut;
//! * [`max_cut_partition`] — multiway partitioning: greedy seeding plus
//!   KL-style refinement passes with locking and best-prefix rollback;
//! * [`exhaustive_max_cut`] — brute force for small instances, used to
//!   validate heuristic quality in tests and the A2 ablation;
//! * [`coarsen`] / [`multilevel`] — METIS-style multilevel scaling: deterministic
//!   heavy-edge matching and contraction ([`coarsen::coarsen`]), then
//!   coarsen → direct KL → uncoarsen-with-refinement
//!   ([`multilevel_max_cut`]) for mega-scale access graphs where the
//!   O(n²) direct search is the bottleneck (DESIGN.md §11).

pub mod coarsen;
pub mod graph;
pub mod kl;
pub mod multilevel;

pub use coarsen::{coarsen as coarsen_graph, heavy_edge_matching, Coarsening};
pub use graph::Graph;
pub use kl::{exhaustive_max_cut, greedy_seed, kl_bipartition, max_cut_partition};
pub use multilevel::{
    balance_pass, multilevel_max_cut, multilevel_max_cut_with, refine_max_cut, MultilevelConfig,
};
