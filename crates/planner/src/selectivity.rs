//! Predicate selectivity estimation from catalog statistics.
//!
//! Classic System-R-style estimates over per-column uniform statistics:
//! equality → `1/NDV`, range → covered fraction of `[min, max]`, `IN` list →
//! `n/NDV`, `LIKE 'prefix%'` → configurable prefix factor, conjunction →
//! independence. Values land in `[SEL_FLOOR, 1]` so downstream block math
//! never degenerates.

use dblayout_catalog::{ColumnStats, Table};
use dblayout_sql::ast::{BinaryOp, Expr, UnaryOp};

/// Lower bound on any estimated selectivity.
pub const SEL_FLOOR: f64 = 1e-7;

/// Default selectivity for predicates we cannot analyze (magic 1/3,
/// following System R's unknown-predicate guess).
pub const SEL_UNKNOWN: f64 = 1.0 / 3.0;

/// Selectivity of a `LIKE` with a leading literal prefix.
pub const SEL_LIKE_PREFIX: f64 = 0.05;

/// Selectivity of a `LIKE` with a leading wildcard.
pub const SEL_LIKE_CONTAINS: f64 = 0.10;

fn clamp(s: f64) -> f64 {
    if s.is_finite() {
        s.clamp(SEL_FLOOR, 1.0)
    } else {
        SEL_UNKNOWN
    }
}

/// Extracts a literal numeric value from an expression if it is (or reduces
/// to) a constant: literals, date strings, negation, and literal arithmetic
/// (`DATE '1998-12-01' - 90`).
pub fn const_value(e: &Expr) -> Option<f64> {
    match e {
        Expr::Literal(lit) => lit.numeric_value(),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => const_value(expr).map(|v| -v),
        Expr::Binary { op, left, right } => {
            let l = const_value(left)?;
            let r = const_value(right)?;
            Some(match op {
                BinaryOp::Add => l + r,
                BinaryOp::Sub => l - r,
                BinaryOp::Mul => l * r,
                BinaryOp::Div => {
                    // dblayout::allow(R3, reason = "exact-zero divisor guard; anything else divides fine")
                    if r == 0.0 {
                        return None;
                    }
                    l / r
                }
                _ => return None,
            })
        }
        _ => None,
    }
}

/// Range fraction `P(col op value)` under uniformity on `[min, max]`.
fn range_fraction(stats: &ColumnStats, op: BinaryOp, value: f64) -> f64 {
    let span = stats.max - stats.min;
    if span <= 0.0 {
        // Single-valued column: comparison either hits or misses entirely;
        // split the difference for robustness.
        return 0.5;
    }
    let f = ((value - stats.min) / span).clamp(0.0, 1.0);
    match op {
        BinaryOp::Lt | BinaryOp::Le => f,
        BinaryOp::Gt | BinaryOp::Ge => 1.0 - f,
        _ => SEL_UNKNOWN,
    }
}

/// Selectivity of a single-table predicate `pred` against `table`'s stats.
///
/// Column references are assumed to belong to `table` (the optimizer routes
/// predicates to the right binding before calling this). Unknown shapes fall
/// back to [`SEL_UNKNOWN`].
pub fn predicate_selectivity(table: &Table, pred: &Expr) -> f64 {
    clamp(sel(table, pred))
}

fn col_stats<'t>(table: &'t Table, e: &Expr) -> Option<&'t ColumnStats> {
    match e {
        Expr::Column { name, .. } => table.column(name).map(|c| &c.stats),
        _ => None,
    }
}

fn sel(table: &Table, pred: &Expr) -> f64 {
    match pred {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            // Normalize literal-on-left comparisons. The other side must be
            // constant (not a second column) for stats-based estimation.
            let (col, other, lit, op) = match (col_stats(table, left), col_stats(table, right)) {
                (Some(s), None) => (Some(s), &**right, const_value(right), *op),
                (None, Some(s)) => (Some(s), &**left, const_value(left), flip(*op)),
                _ => (None, &**left, None, *op),
            };
            let other_is_const = matches!(other, Expr::Literal(_)) || lit.is_some();
            match col {
                // Equality/inequality only needs the NDV, so string literals
                // (no numeric interpretation) estimate fine.
                Some(stats) if other_is_const && matches!(op, BinaryOp::Eq) => {
                    1.0 / stats.distinct_count as f64
                }
                Some(stats) if other_is_const && matches!(op, BinaryOp::Neq) => {
                    1.0 - 1.0 / stats.distinct_count as f64
                }
                Some(stats) => match lit {
                    Some(v) => range_fraction(stats, op, v),
                    None => SEL_UNKNOWN,
                },
                None => SEL_UNKNOWN,
            }
        }
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => sel(table, left) * sel(table, right),
        Expr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        } => {
            let a = clamp(sel(table, left));
            let b = clamp(sel(table, right));
            a + b - a * b
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => 1.0 - clamp(sel(table, expr)),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let s = match (col_stats(table, expr), const_value(low), const_value(high)) {
                (Some(stats), Some(lo), Some(hi)) => {
                    let span = stats.max - stats.min;
                    if span <= 0.0 {
                        0.5
                    } else {
                        let lo_f = ((lo - stats.min) / span).clamp(0.0, 1.0);
                        let hi_f = ((hi - stats.min) / span).clamp(0.0, 1.0);
                        (hi_f - lo_f).max(0.0)
                    }
                }
                _ => SEL_UNKNOWN,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let s = match col_stats(table, expr) {
                Some(stats) => (list.len() as f64 / stats.distinct_count as f64).min(1.0),
                None => SEL_UNKNOWN,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::Like {
            pattern, negated, ..
        } => {
            let s = if pattern.starts_with('%') || pattern.starts_with('_') {
                SEL_LIKE_CONTAINS
            } else if pattern.contains('%') || pattern.contains('_') {
                SEL_LIKE_PREFIX
            } else {
                // Exact-match LIKE behaves like equality; without NDV routing
                // here, use the prefix factor as a conservative stand-in.
                SEL_LIKE_PREFIX
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::IsNull { negated, .. } => {
            // Benchmarks here are NOT NULL-heavy; assume 1% nulls.
            if *negated {
                0.99
            } else {
                0.01
            }
        }
        // Subquery predicates: handled structurally by the optimizer; their
        // filtering effect is approximated as the unknown default.
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => SEL_UNKNOWN,
        _ => SEL_UNKNOWN,
    }
}

fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        other => other,
    }
}

/// Join selectivity for an equijoin `a = b` between columns with the given
/// distinct counts: `1 / max(ndv_a, ndv_b)` (System R).
pub fn join_selectivity(ndv_a: u64, ndv_b: u64) -> f64 {
    clamp(1.0 / ndv_a.max(ndv_b).max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::{ColType, Column, Table};
    use dblayout_sql::parse_statement;
    use dblayout_sql::Statement;

    fn table() -> Table {
        Table {
            name: "t".into(),
            columns: vec![
                Column::with_range("a", ColType::Int, 100, 0.0, 100.0),
                Column::with_range("d", ColType::Date, 1000, 0.0, 1000.0),
                Column::new("s", ColType::Str(10), 5),
            ],
            row_count: 10_000,
            row_bytes: 50,
            clustered_on: vec!["a".into()],
        }
    }

    fn where_of(sql: &str) -> Expr {
        match parse_statement(sql).unwrap() {
            Statement::Select(q) => q.where_clause.unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn equality_is_one_over_ndv() {
        let s = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE a = 5"));
        assert!((s - 0.01).abs() < 1e-9);
    }

    #[test]
    fn equality_literal_on_left() {
        let s = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE 5 = a"));
        assert!((s - 0.01).abs() < 1e-9);
    }

    #[test]
    fn range_fraction_lt() {
        let s = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE a < 25"));
        assert!((s - 0.25).abs() < 1e-9);
        let s = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE a > 25"));
        assert!((s - 0.75).abs() < 1e-9);
    }

    #[test]
    fn flipped_range() {
        // `25 > a` is `a < 25`.
        let s = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE 25 > a"));
        assert!((s - 0.25).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_clamps() {
        let s = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE a < 1000"));
        assert!((s - 1.0).abs() < 1e-9);
        let s = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE a < -10"));
        assert!(s <= SEL_FLOOR * 10.0);
    }

    #[test]
    fn conjunction_multiplies() {
        let s = predicate_selectivity(
            &table(),
            &where_of("SELECT * FROM t WHERE a < 50 AND s = 'x'"),
        );
        assert!((s - 0.5 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn disjunction_inclusion_exclusion() {
        let s = predicate_selectivity(
            &table(),
            &where_of("SELECT * FROM t WHERE a < 50 OR a > 50"),
        );
        assert!((s - (0.5 + 0.5 - 0.25)).abs() < 1e-9);
    }

    #[test]
    fn between_fraction() {
        let s = predicate_selectivity(
            &table(),
            &where_of("SELECT * FROM t WHERE a BETWEEN 20 AND 30"),
        );
        assert!((s - 0.1).abs() < 1e-9);
    }

    #[test]
    fn not_between_complements() {
        let s = predicate_selectivity(
            &table(),
            &where_of("SELECT * FROM t WHERE a NOT BETWEEN 20 AND 30"),
        );
        assert!((s - 0.9).abs() < 1e-9);
    }

    #[test]
    fn in_list_n_over_ndv() {
        let s = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE s IN ('a', 'b')"));
        assert!((s - 0.4).abs() < 1e-9);
    }

    #[test]
    fn like_patterns() {
        let p = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE s LIKE 'ab%'"));
        assert!((p - SEL_LIKE_PREFIX).abs() < 1e-9);
        let c = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE s LIKE '%ab%'"));
        assert!((c - SEL_LIKE_CONTAINS).abs() < 1e-9);
    }

    #[test]
    fn not_inverts() {
        let s = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE NOT a < 25"));
        assert!((s - 0.75).abs() < 1e-9);
    }

    #[test]
    fn date_literal_arithmetic() {
        // d has range [0, 1000]; DATE-literal minus interval still folds.
        let e = where_of("SELECT * FROM t WHERE d <= 600 - 100");
        let s = predicate_selectivity(&table(), &e);
        assert!((s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unknown_shapes_fall_back() {
        let s = predicate_selectivity(&table(), &where_of("SELECT * FROM t WHERE a = d"));
        assert!((s - SEL_UNKNOWN).abs() < 1e-9);
    }

    #[test]
    fn join_selectivity_uses_larger_ndv() {
        assert!((join_selectivity(100, 1000) - 0.001).abs() < 1e-12);
        assert_eq!(join_selectivity(0, 0), 1.0);
    }

    #[test]
    fn selectivity_always_in_unit_interval() {
        for sql in [
            "SELECT * FROM t WHERE a < -1e18",
            "SELECT * FROM t WHERE a IN (1,2,3,4,5,6,7,8,9,10)",
            "SELECT * FROM t WHERE NOT (a < 5 OR a > 5)",
            "SELECT * FROM t WHERE s IS NOT NULL",
        ] {
            let s = predicate_selectivity(&table(), &where_of(sql));
            assert!((SEL_FLOOR..=1.0).contains(&s), "{sql}: {s}");
        }
    }
}
