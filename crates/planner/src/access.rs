//! Object accesses and non-blocking sub-plans.
//!
//! These are the artifacts the advisor and the disk simulator consume: for
//! each *non-blocking sub-plan* (maximal pipelined region of the execution
//! plan, paper §4.2), which catalog objects are touched, how many blocks of
//! each, and whether sequentially or randomly, reading or writing.

use dblayout_catalog::ObjectId;

/// How an object is accessed within a sub-plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Sequential read (scan, clustered range scan, merge-join input).
    SequentialRead,
    /// Random-ish read (RID lookups, nested-loops index probes).
    RandomRead,
    /// Write (INSERT/UPDATE/DELETE block dirtying).
    Write,
}

impl AccessKind {
    /// True for either read kind.
    pub fn is_read(self) -> bool {
        !matches!(self, AccessKind::Write)
    }
}

/// One object touched by one sub-plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectAccess {
    /// The catalog object.
    pub object: ObjectId,
    /// Estimated blocks of the object accessed in this sub-plan —
    /// the paper's `B(|R_i|, P)`.
    pub blocks: u64,
    /// Estimated rows flowing from this access (for diagnostics).
    pub rows: f64,
    /// Sequential / random / write.
    pub kind: AccessKind,
}

/// A maximal pipelined region of the plan: every object here is
/// *co-accessed* with every other (paper §4: "non-blocking subplan").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Subplan {
    /// Object accesses in this region. An object may appear once per access
    /// style; accesses of the same object and kind are merged.
    pub accesses: Vec<ObjectAccess>,
    /// Blocks written to tempdb by blocking operators that spill while
    /// *consuming* this region's output (sort runs, hash partitions).
    pub temp_write_blocks: u64,
    /// Blocks read back from tempdb at the start of this region (reading
    /// sorted runs / spilled partitions produced by an earlier region).
    pub temp_read_blocks: u64,
}

impl Subplan {
    /// Adds an access, merging with an existing entry for the same object
    /// and kind (Figure 6 accumulates block counts per object).
    pub fn add(&mut self, access: ObjectAccess) {
        if access.blocks == 0 {
            return;
        }
        if let Some(existing) = self
            .accesses
            .iter_mut()
            .find(|a| a.object == access.object && a.kind == access.kind)
        {
            existing.blocks += access.blocks;
            existing.rows += access.rows;
        } else {
            self.accesses.push(access);
        }
    }

    /// Distinct objects touched.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.accesses.iter().map(|a| a.object).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Total blocks accessed of `object` in this sub-plan (over all kinds).
    pub fn blocks_of(&self, object: ObjectId) -> u64 {
        self.accesses
            .iter()
            .filter(|a| a.object == object)
            .map(|a| a.blocks)
            .sum()
    }

    /// True when no object or temp I/O happens here.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty() && self.temp_write_blocks == 0 && self.temp_read_blocks == 0
    }
}

/// Estimated number of distinct blocks touched by `k` random row fetches
/// into an object of `blocks` blocks (Cardenas' formula
/// `B·(1 − (1 − 1/B)^k)`), saturating at `blocks`.
pub fn cardenas_blocks(k: f64, blocks: u64) -> u64 {
    if blocks == 0 || k <= 0.0 {
        return 0;
    }
    let b = blocks as f64;
    let touched = b * (1.0 - (1.0 - 1.0 / b).powf(k));
    (touched.ceil() as u64).clamp(1, blocks) // dblayout::allow(R8, reason = "Cardenas estimate: touched is in [0, blocks] by construction and clamped right here")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(obj: u32, blocks: u64, kind: AccessKind) -> ObjectAccess {
        ObjectAccess {
            object: ObjectId(obj),
            blocks,
            rows: blocks as f64,
            kind,
        }
    }

    #[test]
    fn add_merges_same_object_and_kind() {
        let mut s = Subplan::default();
        s.add(acc(1, 10, AccessKind::SequentialRead));
        s.add(acc(1, 5, AccessKind::SequentialRead));
        assert_eq!(s.accesses.len(), 1);
        assert_eq!(s.accesses[0].blocks, 15);
    }

    #[test]
    fn add_keeps_kinds_separate() {
        let mut s = Subplan::default();
        s.add(acc(1, 10, AccessKind::SequentialRead));
        s.add(acc(1, 5, AccessKind::RandomRead));
        assert_eq!(s.accesses.len(), 2);
        assert_eq!(s.blocks_of(ObjectId(1)), 15);
    }

    #[test]
    fn zero_block_accesses_dropped() {
        let mut s = Subplan::default();
        s.add(acc(1, 0, AccessKind::SequentialRead));
        assert!(s.is_empty());
    }

    #[test]
    fn objects_deduped_sorted() {
        let mut s = Subplan::default();
        s.add(acc(3, 1, AccessKind::SequentialRead));
        s.add(acc(1, 1, AccessKind::SequentialRead));
        s.add(acc(3, 1, AccessKind::RandomRead));
        assert_eq!(s.objects(), vec![ObjectId(1), ObjectId(3)]);
    }

    #[test]
    fn cardenas_small_k_about_k() {
        // Few random fetches into a huge object touch ~k blocks.
        assert_eq!(cardenas_blocks(10.0, 1_000_000), 10);
    }

    #[test]
    fn cardenas_saturates_at_blocks() {
        assert_eq!(cardenas_blocks(1e9, 100), 100);
    }

    #[test]
    fn cardenas_edge_cases() {
        assert_eq!(cardenas_blocks(0.0, 100), 0);
        assert_eq!(cardenas_blocks(5.0, 0), 0);
        assert_eq!(cardenas_blocks(0.5, 100), 1);
    }

    #[test]
    fn cardenas_monotone_in_k() {
        let mut prev = 0;
        for k in [1.0, 10.0, 100.0, 1000.0, 10_000.0] {
            let b = cardenas_blocks(k, 500);
            assert!(b >= prev);
            prev = b;
        }
    }
}
