//! Planning errors.

use std::fmt;

/// Convenience alias.
pub type PlanResult<T> = std::result::Result<T, PlanError>;

/// An error raised while binding or optimizing a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A column could not be resolved to any in-scope binding.
    UnknownColumn(String),
    /// An unqualified column matched more than one binding.
    AmbiguousColumn(String),
    /// A query shape the planner does not support.
    Unsupported(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            PlanError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            PlanError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            PlanError::Unsupported(s) => write!(f, "unsupported query shape: {s}"),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PlanError::UnknownTable("x".into())
            .to_string()
            .contains("x"));
        assert!(PlanError::AmbiguousColumn("c".into())
            .to_string()
            .contains("ambiguous"));
    }
}
