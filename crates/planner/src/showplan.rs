//! Showplan ingestion: parsing [`crate::explain`] output back into a
//! [`PhysicalPlan`].
//!
//! The paper's tool consumed plans produced *by the server* (§4.2's
//! "no-execute" mode) rather than planning queries itself. This module
//! restores that integration path: a plan rendered in the workspace's
//! explain format — by this library, by a test fixture, or by an external
//! tool translating a real server's showplan — round-trips into a
//! [`PhysicalPlan`] the advisor and simulator can consume directly.
//!
//! Only the operator tree section is parsed; the trailing
//! `-- non-blocking sub-plans --` summary (which is derived data) is
//! ignored if present.

use dblayout_catalog::Catalog;

use crate::error::{PlanError, PlanResult};
use crate::physical::{PhysicalPlan, PlanNode};

/// Parses an explain-format plan against `catalog` (object names resolve
/// to catalog ids).
pub fn parse_explain(catalog: &Catalog, text: &str) -> PlanResult<PhysicalPlan> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .take_while(|l| !l.starts_with("-- non-blocking"))
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let indent = l.len() - l.trim_start().len();
            (indent / 2, l.trim())
        })
        .collect();
    if lines.is_empty() {
        return Err(PlanError::Unsupported("empty plan text".into()));
    }
    let mut pos = 0;
    let root = parse_node(catalog, &lines, &mut pos, 0)?;
    if pos != lines.len() {
        return Err(PlanError::Unsupported(format!(
            "trailing plan lines starting at `{}`",
            lines[pos].1
        )));
    }
    Ok(PhysicalPlan::new(root))
}

fn parse_node(
    catalog: &Catalog,
    lines: &[(usize, &str)],
    pos: &mut usize,
    depth: usize,
) -> PlanResult<PlanNode> {
    let Some(&(indent, line)) = lines.get(*pos) else {
        return Err(PlanError::Unsupported("unexpected end of plan".into()));
    };
    if indent != depth {
        return Err(PlanError::Unsupported(format!(
            "expected depth {depth} at `{line}`, found {indent}"
        )));
    }
    *pos += 1;
    let (op, rest) = line.split_once(' ').unwrap_or((line, ""));
    let child = |catalog: &Catalog, pos: &mut usize| parse_node(catalog, lines, pos, depth + 1);

    let node = match op {
        "TableScan" | "ClusteredRangeScan" | "Seek" | "IndexSeek" => {
            let (name, blocks, rows) = leaf_fields(catalog, rest, "blocks")?;
            let object = catalog
                .object_id(&name)
                .ok_or_else(|| PlanError::UnknownTable(name.clone()))?;
            match op {
                "TableScan" => PlanNode::TableScan {
                    object,
                    name,
                    blocks,
                    rows,
                },
                "ClusteredRangeScan" => PlanNode::ClusteredRangeScan {
                    object,
                    name,
                    blocks,
                    rows,
                },
                "Seek" => PlanNode::Seek {
                    object,
                    name,
                    blocks,
                    rows,
                },
                _ => PlanNode::IndexSeek {
                    object,
                    name,
                    blocks,
                    rows,
                },
            }
        }
        "RidLookup" => {
            let (name, blocks, rows) = leaf_fields(catalog, rest, "blocks")?;
            let object = catalog
                .object_id(&name)
                .ok_or_else(|| PlanError::UnknownTable(name.clone()))?;
            let inner = child(catalog, pos)?;
            PlanNode::RidLookup {
                object,
                name,
                blocks,
                rows,
                child: Box::new(inner),
            }
        }
        "Filter" => {
            let predicate = bracketed(rest)?;
            let rows = field(rest, "rows")?;
            let inner = child(catalog, pos)?;
            PlanNode::Filter {
                predicate,
                rows,
                child: Box::new(inner),
            }
        }
        "NestedLoops" => {
            let on = bracketed(rest)?.trim_start_matches("on ").to_string();
            let rows = field(rest, "rows")?;
            let outer = child(catalog, pos)?;
            let inner = child(catalog, pos)?;
            PlanNode::NestedLoops {
                on,
                rows,
                outer: Box::new(outer),
                inner: Box::new(inner),
            }
        }
        "MergeJoin" => {
            let on = bracketed(rest)?.trim_start_matches("on ").to_string();
            let rows = field(rest, "rows")?;
            let left = child(catalog, pos)?;
            let right = child(catalog, pos)?;
            PlanNode::MergeJoin {
                on,
                rows,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        "HashJoin" => {
            let on = bracketed(rest)?.trim_start_matches("on ").to_string();
            let rows = field(rest, "rows")?;
            let spill_blocks = field(rest, "spill").unwrap_or(0.0) as u64;
            let build = child(catalog, pos)?;
            let probe = child(catalog, pos)?;
            PlanNode::HashJoin {
                on,
                rows,
                build: Box::new(build),
                probe: Box::new(probe),
                spill_blocks,
            }
        }
        "Sort" => {
            let by = bracketed(rest)?.trim_start_matches("by ").to_string();
            let rows = field(rest, "rows")?;
            let spill_blocks = field(rest, "spill").unwrap_or(0.0) as u64;
            let inner = child(catalog, pos)?;
            PlanNode::Sort {
                by,
                rows,
                spill_blocks,
                child: Box::new(inner),
            }
        }
        "StreamAggregate" => {
            let rows = field(rest, "rows")?;
            let inner = child(catalog, pos)?;
            PlanNode::StreamAggregate {
                rows,
                child: Box::new(inner),
            }
        }
        "HashAggregate" => {
            let rows = field(rest, "rows")?;
            let spill_blocks = field(rest, "spill").unwrap_or(0.0) as u64;
            let inner = child(catalog, pos)?;
            PlanNode::HashAggregate {
                rows,
                spill_blocks,
                child: Box::new(inner),
            }
        }
        "Top" => {
            let n: u64 = rest
                .split_whitespace()
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| PlanError::Unsupported(format!("bad Top line `{rest}`")))?;
            let rows = field(rest, "rows")?;
            let inner = child(catalog, pos)?;
            PlanNode::Top {
                n,
                rows,
                child: Box::new(inner),
            }
        }
        "Apply" => {
            let rows = field(rest, "rows")?;
            let sub = child(catalog, pos)?;
            let main = child(catalog, pos)?;
            PlanNode::Apply {
                rows,
                sub: Box::new(sub),
                main: Box::new(main),
            }
        }
        "Insert" | "Update" | "Delete" => {
            let (name, write_blocks, rows) = leaf_fields(catalog, rest, "write_blocks")?;
            let object = catalog
                .object_id(&name)
                .ok_or_else(|| PlanError::UnknownTable(name.clone()))?;
            match op {
                "Insert" => {
                    // A VALUES insert has no child; an INSERT..SELECT does.
                    // Disambiguate by whether a deeper line follows.
                    let has_child = lines.get(*pos).is_some_and(|&(d, _)| d == depth + 1);
                    let inner = if has_child {
                        Some(Box::new(child(catalog, pos)?))
                    } else {
                        None
                    };
                    PlanNode::Insert {
                        object,
                        name,
                        write_blocks,
                        rows,
                        child: inner,
                    }
                }
                "Update" => PlanNode::Update {
                    object,
                    name,
                    write_blocks,
                    rows,
                    child: Box::new(child(catalog, pos)?),
                },
                _ => PlanNode::Delete {
                    object,
                    name,
                    write_blocks,
                    rows,
                    child: Box::new(child(catalog, pos)?),
                },
            }
        }
        other => {
            return Err(PlanError::Unsupported(format!(
                "unknown plan operator `{other}`"
            )))
        }
    };
    Ok(node)
}

/// Extracts `name`, the block-count field and `rows=` from a leaf line like
/// `lineitem blocks=10274 rows=6000000`.
fn leaf_fields(_catalog: &Catalog, rest: &str, blocks_key: &str) -> PlanResult<(String, u64, f64)> {
    let name = rest
        .split_whitespace()
        .next()
        .ok_or_else(|| PlanError::Unsupported(format!("missing object name in `{rest}`")))?
        .to_string();
    let blocks = field(rest, blocks_key)? as u64;
    let rows = field(rest, "rows")?;
    Ok((name, blocks, rows))
}

/// Extracts `key=value` from a line.
fn field(rest: &str, key: &str) -> PlanResult<f64> {
    let marker = format!("{key}=");
    rest.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&marker))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| PlanError::Unsupported(format!("missing `{key}=` in `{rest}`")))
}

/// Extracts the `[...]` detail from an operator line.
fn bracketed(rest: &str) -> PlanResult<String> {
    let start = rest
        .find('[')
        .ok_or_else(|| PlanError::Unsupported(format!("missing `[` in `{rest}`")))?;
    let end = rest
        .rfind(']')
        .ok_or_else(|| PlanError::Unsupported(format!("missing `]` in `{rest}`")))?;
    Ok(rest[start + 1..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::explain;
    use crate::optimizer::plan_statement;
    use dblayout_catalog::tpch::tpch_catalog;
    use dblayout_sql::parse_statement;

    fn roundtrip(catalog: &Catalog, sql: &str) {
        let stmt = parse_statement(sql).unwrap();
        let plan = plan_statement(catalog, &stmt).unwrap();
        let text = explain(&plan);
        let reparsed = parse_explain(catalog, &text)
            .unwrap_or_else(|e| panic!("reparse of `{sql}` failed: {e}\n{text}"));
        // The operator tree must round-trip exactly (rows are rendered with
        // limited precision, so compare the derived I/O structure instead).
        assert_eq!(
            plan.subplans()
                .iter()
                .map(|s| (s.objects(), s.temp_write_blocks, s.temp_read_blocks))
                .collect::<Vec<_>>(),
            reparsed
                .subplans()
                .iter()
                .map(|s| (s.objects(), s.temp_write_blocks, s.temp_read_blocks))
                .collect::<Vec<_>>(),
            "{sql}"
        );
        assert_eq!(plan.total_io_blocks(), reparsed.total_io_blocks(), "{sql}");
        assert_eq!(explain(&reparsed), text, "{sql}");
    }

    #[test]
    fn roundtrips_query_shapes() {
        let catalog = tpch_catalog(0.1);
        for sql in [
            "SELECT COUNT(*) FROM lineitem",
            "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey",
            "SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority",
            "SELECT * FROM lineitem ORDER BY l_extendedprice",
            "SELECT l_quantity FROM lineitem WHERE l_shipdate = '1995-06-17'",
            "SELECT COUNT(*) FROM customer, orders, lineitem \
             WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND c_mktsegment = 'BUILDING'",
            "SELECT COUNT(*) FROM orders WHERE EXISTS \
             (SELECT * FROM lineitem WHERE l_orderkey = o_orderkey)",
        ] {
            roundtrip(&catalog, sql);
        }
    }

    #[test]
    fn roundtrips_dml() {
        let catalog = tpch_catalog(0.05);
        for sql in [
            "INSERT INTO nation (n_nationkey) VALUES (77)",
            "UPDATE orders SET o_orderstatus = 'F' WHERE o_orderkey < 100",
            "DELETE FROM lineitem WHERE l_shipdate < '1992-02-01'",
        ] {
            roundtrip(&catalog, sql);
        }
    }

    #[test]
    fn roundtrips_all_of_tpch22() {
        let catalog = tpch_catalog(1.0);
        for q in dblayout_workloads_stub::tpch22_texts() {
            roundtrip(&catalog, &q);
        }
    }

    /// Minimal inline stand-in so the planner crate need not depend on the
    /// workloads crate (which depends back on the planner): a few
    /// representative TPC-H queries exercising every operator.
    mod dblayout_workloads_stub {
        pub fn tpch22_texts() -> Vec<String> {
            vec![
                "SELECT l_returnflag, COUNT(*) FROM lineitem \
                 WHERE l_shipdate <= '1998-09-02' GROUP BY l_returnflag ORDER BY l_returnflag"
                    .into(),
                "SELECT TOP 10 l_orderkey, SUM(l_extendedprice) AS revenue, o_orderdate \
                 FROM customer, orders, lineitem \
                 WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey \
                 AND l_orderkey = o_orderkey AND o_orderdate < '1995-03-15' \
                 GROUP BY l_orderkey, o_orderdate ORDER BY revenue DESC"
                    .into(),
                "SELECT SUM(l_extendedprice) / 7 FROM lineitem, part \
                 WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' \
                 AND l_quantity < (SELECT AVG(l2.l_quantity) * 0.2 FROM lineitem l2 \
                     WHERE l2.l_partkey = p_partkey)"
                    .into(),
            ]
        }
    }

    #[test]
    fn unknown_operator_rejected() {
        let catalog = tpch_catalog(0.01);
        assert!(matches!(
            parse_explain(&catalog, "QuantumScan foo blocks=1 rows=1"),
            Err(PlanError::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_object_rejected() {
        let catalog = tpch_catalog(0.01);
        assert!(matches!(
            parse_explain(&catalog, "TableScan ghosts blocks=1 rows=1"),
            Err(PlanError::UnknownTable(_))
        ));
    }

    #[test]
    fn empty_text_rejected() {
        let catalog = tpch_catalog(0.01);
        assert!(parse_explain(&catalog, "").is_err());
        assert!(parse_explain(&catalog, "-- non-blocking sub-plans --\n").is_err());
    }

    #[test]
    fn subplan_summary_ignored() {
        let catalog = tpch_catalog(0.01);
        let plan = parse_explain(
            &catalog,
            "TableScan orders blocks=10 rows=100\n-- non-blocking sub-plans --\nS0: #6[10]\n",
        )
        .unwrap();
        assert_eq!(plan.subplans().len(), 1);
    }

    #[test]
    fn malformed_indentation_rejected() {
        let catalog = tpch_catalog(0.01);
        let text = "MergeJoin [on x] rows=1\n    TableScan orders blocks=1 rows=1\n";
        assert!(parse_explain(&catalog, text).is_err());
    }
}
