#![warn(missing_docs)]

//! Query-optimizer substrate: SQL statements → physical execution plans.
//!
//! The ICDE 2003 layout advisor never executes the workload; it analyzes the
//! *execution plan* the query optimizer would produce in "no-execute"
//! (Showplan/EXPLAIN) mode (paper §4.2). This crate plays the role of the
//! SQL Server 2000 optimizer in the reproduction:
//!
//! * **Name resolution** of the parsed statement against a
//!   [`dblayout_catalog::Catalog`];
//! * **Selectivity and cardinality estimation** from column statistics
//!   ([`selectivity`]);
//! * **Access-path selection** — full scan, clustered range scan, or
//!   nonclustered index seek + RID lookup (the paper's Example 4);
//! * **Join ordering** via System-R-style dynamic programming over left-deep
//!   trees with sort-order tracking, so merge joins between tables clustered
//!   on their join keys (lineitem ⋈ orders) surface exactly as in the
//!   paper's measured plans ([`optimizer`]);
//! * **Physical operators with blocking classification** and the
//!   decomposition of a plan into *non-blocking sub-plans* by cutting at
//!   blocking operators (Sort, hash-build, hash aggregate) — the exact input
//!   Figure 6 needs ([`physical`]);
//! * **Block-access estimation** per object per sub-plan — `B(|R_i|, P)` in
//!   the paper's cost model — including random-I/O block-touch estimates via
//!   the Cardenas formula ([`access`]);
//! * a Showplan-style **EXPLAIN** renderer ([`explain`]).

pub mod access;
pub mod error;
pub mod explain;
pub mod optimizer;
pub mod physical;
pub mod selectivity;
pub mod showplan;

pub use access::{AccessKind, ObjectAccess, Subplan};
pub use error::{PlanError, PlanResult};
pub use explain::explain;
pub use optimizer::{plan_statement, Optimizer, OptimizerConfig};
pub use physical::{PhysicalPlan, PlanNode};
pub use showplan::parse_explain;
