//! Cost-based query optimization: statement → [`PhysicalPlan`].
//!
//! System-R-style left-deep dynamic programming over join orders with
//! physical-property (sort order) tracking. The internal cost function here
//! drives *plan choice only*; it approximates I/O volume in block units with
//! a random-I/O penalty. The layout advisor's cost model (paper Figure 7)
//! lives in `dblayout-core` and consumes the plans this module produces —
//! exactly the division of labor in the paper, where the server's optimizer
//! picks plans while being "insensitive to database layout" (§5).

use std::collections::HashMap;

use dblayout_catalog::{blocks_for_rows, Catalog, ObjectId, Table};
use dblayout_sql::ast::{BinaryOp, Expr, FromItem, InsertSource, Query, SelectItem, Statement};

use crate::access::cardenas_blocks;
use crate::error::{PlanError, PlanResult};
use crate::explain::render_expr;
use crate::physical::{PhysicalPlan, PlanNode};
use crate::selectivity::{join_selectivity, predicate_selectivity, SEL_UNKNOWN};

/// Tunables for plan choice.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Memory grant per blocking operator, in blocks (default 512 = 32 MB);
    /// larger inputs spill to tempdb.
    pub memory_grant_blocks: u64,
    /// Cost multiplier for random-block reads relative to sequential.
    pub random_io_weight: f64,
    /// Extra cost per build-side block of a hash join (hashing overhead).
    pub hash_build_factor: f64,
    /// Cost per block of an in-memory sort (CPU).
    pub sort_cpu_factor: f64,
    /// Cost per block of tempdb spill I/O (write + read back).
    pub spill_io_factor: f64,
    /// CPU cost per row flowing through an operator, in block units.
    pub row_cpu_cost: f64,
    /// Extra CPU cost per nested-loops probe (index navigation per outer
    /// row), in block units. Steers large intermediates toward hash joins,
    /// as production optimizers do.
    pub nl_probe_cost: f64,
    /// Maximum number of candidate plans retained per join subset.
    pub max_candidates: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            memory_grant_blocks: 512,
            random_io_weight: 3.0,
            hash_build_factor: 1.2,
            sort_cpu_factor: 0.5,
            spill_io_factor: 2.0,
            row_cpu_cost: 5e-5,
            nl_probe_cost: 3e-4,
            max_candidates: 5,
        }
    }
}

/// Plans `stmt` against `catalog` with default configuration.
pub fn plan_statement(catalog: &Catalog, stmt: &Statement) -> PlanResult<PhysicalPlan> {
    Optimizer::new(catalog).plan(stmt)
}

/// The query optimizer.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    cfg: OptimizerConfig,
}

/// A table instance in scope (FROM-clause binding).
#[derive(Debug, Clone)]
struct Binding {
    /// Binding name (alias or table name).
    name: String,
    /// The bound table (cloned; tables are metadata-sized).
    table: Table,
    /// Catalog object of the table.
    object: ObjectId,
}

/// A resolved column: (binding index, column name).
type ColRef = (usize, String);

/// Classified conjuncts of the statement's predicates.
#[derive(Debug, Default)]
struct Preds {
    /// Single-binding predicates, routed per binding.
    local: Vec<Vec<Expr>>,
    /// Equijoin predicates `(a, b, selectivity)`.
    joins: Vec<(ColRef, ColRef, f64)>,
    /// Conjuncts containing subqueries, kept whole.
    subqueries: Vec<Expr>,
    /// Multi-binding non-equijoin conjuncts (applied as a residual filter).
    cross: Vec<Expr>,
}

/// A candidate plan for a set of bindings during DP.
#[derive(Debug, Clone)]
struct Cand {
    node: PlanNode,
    cost: f64,
    rows: f64,
    /// Estimated output row width in bytes.
    width: u32,
    /// Sort order of the output, if any.
    order: Option<ColRef>,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer with default configuration.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            cfg: OptimizerConfig::default(),
        }
    }

    /// Creates an optimizer with an explicit configuration.
    pub fn with_config(catalog: &'a Catalog, cfg: OptimizerConfig) -> Self {
        Self { catalog, cfg }
    }

    /// Produces the physical plan for a statement.
    pub fn plan(&self, stmt: &Statement) -> PlanResult<PhysicalPlan> {
        let root = match stmt {
            Statement::Select(q) => self.plan_select(q, &[])?.node,
            Statement::Insert { table, source, .. } => self.plan_insert(table, source)?,
            Statement::Update {
                table,
                where_clause,
                ..
            } => self.plan_write(table, where_clause.as_ref(), true)?,
            Statement::Delete {
                table,
                where_clause,
            } => self.plan_write(table, where_clause.as_ref(), false)?,
        };
        Ok(PhysicalPlan::new(root))
    }

    // ------------------------------------------------------------------
    // SELECT planning
    // ------------------------------------------------------------------

    fn plan_select(&self, q: &Query, outer: &[Binding]) -> PlanResult<Cand> {
        let bindings = self.resolve_bindings(q)?;
        if bindings.is_empty() {
            return Err(PlanError::Unsupported("SELECT without FROM".into()));
        }
        let preds = self.classify_predicates(q, &bindings, outer)?;
        let needed = self.needed_columns(q, &bindings);

        // Base access paths per binding.
        let mut base: Vec<Vec<Cand>> = Vec::with_capacity(bindings.len());
        for (i, b) in bindings.iter().enumerate() {
            base.push(self.access_paths(i, b, &preds.local[i], &needed[i]));
        }

        // Join-order DP over left-deep trees.
        let n = bindings.len();
        let mut dp: HashMap<u64, Vec<Cand>> = HashMap::new();
        for (i, cands) in base.iter().enumerate() {
            dp.insert(1u64 << i, cands.clone());
        }
        for size in 2..=n {
            let mut masks: Vec<u64> = dp
                .keys() // dblayout::allow(R6, reason = "the collected keys are sorted with sort_unstable two lines below before any order-sensitive use")
                .copied()
                .filter(|m| m.count_ones() as usize == size - 1)
                .collect();
            // Deterministic DP regardless of hash-map iteration order.
            masks.sort_unstable();
            let mut next: HashMap<u64, Vec<Cand>> = HashMap::new();
            for mask in masks {
                #[allow(clippy::needless_range_loop)] // b is a bitmask position
                for b in 0..n {
                    let bit = 1u64 << b;
                    if mask & bit != 0 {
                        continue;
                    }
                    let links: Vec<&(ColRef, ColRef, f64)> = preds
                        .joins
                        .iter()
                        .filter(|(a, c, _)| {
                            (mask >> a.0) & 1 == 1 && c.0 == b || (mask >> c.0) & 1 == 1 && a.0 == b
                        })
                        .collect();
                    let left_cands = dp.get(&mask).expect("mask planned").clone();
                    for left in &left_cands {
                        for right in &base[b] {
                            for cand in self.join_candidates(left, right, b, &links, &bindings) {
                                insert_candidate(
                                    next.entry(mask | bit).or_default(),
                                    cand,
                                    self.cfg.max_candidates,
                                );
                            }
                        }
                    }
                }
            }
            // Connected extensions may fail for disconnected join graphs; the
            // cartesian candidates (links empty → sel 1.0) cover that, so
            // every mask of this size is populated.
            // dblayout::allow(R6, reason = "order-insensitive merge: each mask key is distinct, so dp's final content is identical under any iteration order")
            for (mask, cands) in next {
                dp.insert(mask, cands);
            }
        }

        let full = (1u64 << n) - 1;
        let roots = dp
            .remove(&full)
            .ok_or_else(|| PlanError::Unsupported("join enumeration produced no plan".into()))?;

        // Finish each candidate (filters, subqueries, aggregation, order) and
        // keep the cheapest.
        let mut best: Option<Cand> = None;
        for cand in roots {
            let finished = self.finish_select(q, cand, &preds, &bindings)?;
            if best.as_ref().is_none_or(|b| finished.cost < b.cost) {
                best = Some(finished);
            }
        }
        best.ok_or_else(|| PlanError::Unsupported("no plan".into()))
    }

    /// Applies residual filters, subqueries, aggregation, DISTINCT,
    /// ORDER BY and TOP on top of a joined candidate.
    fn finish_select(
        &self,
        q: &Query,
        mut cand: Cand,
        preds: &Preds,
        bindings: &[Binding],
    ) -> PlanResult<Cand> {
        // Residual cross filters.
        for e in &preds.cross {
            cand.rows *= SEL_UNKNOWN;
            cand.node = PlanNode::Filter {
                predicate: render_expr(e),
                rows: cand.rows,
                child: Box::new(cand.node),
            };
        }

        // Subquery conjuncts.
        for e in &preds.subqueries {
            cand = self.attach_subquery(e, cand, bindings)?;
        }

        // Aggregation.
        if q.is_aggregating() {
            if q.group_by.is_empty() {
                cand.rows = 1.0;
                cand.node = PlanNode::StreamAggregate {
                    rows: 1.0,
                    child: Box::new(cand.node),
                };
                cand.width = 32;
                cand.order = None;
            } else {
                let groups = self.estimate_groups(&q.group_by, bindings, cand.rows);
                let first_group_col = q.group_by.first().and_then(|e| match e {
                    Expr::Column { qualifier, name } => self
                        .resolve_column(qualifier.as_deref(), name, bindings, &[])
                        .ok()
                        .flatten(),
                    _ => None,
                });
                let sorted_on_group = first_group_col.is_some()
                    && cand.order == first_group_col
                    && q.group_by.len() == 1;
                if sorted_on_group {
                    cand.node = PlanNode::StreamAggregate {
                        rows: groups,
                        child: Box::new(cand.node),
                    };
                } else {
                    // The hash table holds one entry per *group*: it spills
                    // (repartitioning its input) only when the groups
                    // themselves overflow the grant.
                    let group_width =
                        (16 * (q.group_by.len() + q.select.len()) as u32).clamp(16, 256);
                    let group_blocks = est_blocks(groups, group_width);
                    let input_blocks = est_blocks(cand.rows, cand.width);
                    let spill = if group_blocks > self.cfg.memory_grant_blocks {
                        input_blocks
                    } else {
                        0
                    };
                    cand.cost +=
                        self.cfg.spill_io_factor * spill as f64 + self.cfg.row_cpu_cost * cand.rows;
                    cand.node = PlanNode::HashAggregate {
                        rows: groups,
                        spill_blocks: spill,
                        child: Box::new(cand.node),
                    };
                    cand.order = None;
                }
                cand.rows = groups;
                cand.width = (16 * (q.group_by.len() + q.select.len()) as u32).clamp(16, 256);
            }
        }

        // HAVING. Subqueries in the HAVING clause (e.g. TPC-H Q11's
        // aggregate threshold) run before the filter applies: Apply inputs.
        if let Some(h) = &q.having {
            for sub in h.subqueries() {
                let inner = self.plan_select(sub, bindings)?;
                cand.cost += inner.cost;
                cand.node = PlanNode::Apply {
                    rows: cand.rows,
                    sub: Box::new(inner.node),
                    main: Box::new(cand.node),
                };
            }
            cand.rows *= SEL_UNKNOWN;
            cand.node = PlanNode::Filter {
                predicate: render_expr(h),
                rows: cand.rows,
                child: Box::new(cand.node),
            };
        }

        // DISTINCT (when not already grouped).
        if q.distinct && q.group_by.is_empty() && !q.is_aggregating() {
            let groups = (cand.rows / 2.0).max(1.0);
            let input_blocks = est_blocks(cand.rows, cand.width);
            let group_blocks = est_blocks(groups, cand.width);
            let spill = if group_blocks > self.cfg.memory_grant_blocks {
                input_blocks
            } else {
                0
            };
            cand.cost += self.cfg.spill_io_factor * spill as f64;
            cand.node = PlanNode::HashAggregate {
                rows: groups,
                spill_blocks: spill,
                child: Box::new(cand.node),
            };
            cand.rows = groups;
            cand.order = None;
        }

        // ORDER BY.
        if let Some(first) = q.order_by.first() {
            let target = match &first.expr {
                Expr::Column { qualifier, name } => self
                    .resolve_column(qualifier.as_deref(), name, bindings, &[])
                    .ok()
                    .flatten(),
                _ => None,
            };
            let already = target.is_some() && cand.order == target && q.order_by.len() == 1;
            if !already {
                let blocks = est_blocks(cand.rows, cand.width);
                let spill = if blocks > self.cfg.memory_grant_blocks {
                    blocks
                } else {
                    0
                };
                cand.cost += if spill > 0 {
                    self.cfg.spill_io_factor * spill as f64
                } else {
                    self.cfg.sort_cpu_factor * blocks as f64
                };
                let by = q
                    .order_by
                    .iter()
                    .map(|o| render_expr(&o.expr))
                    .collect::<Vec<_>>()
                    .join(", ");
                cand.node = PlanNode::Sort {
                    by,
                    rows: cand.rows,
                    spill_blocks: spill,
                    child: Box::new(cand.node),
                };
                cand.order = target;
            }
        }

        // TOP.
        if let Some(nrows) = q.top {
            cand.rows = cand.rows.min(nrows as f64);
            cand.node = PlanNode::Top {
                n: nrows,
                rows: cand.rows,
                child: Box::new(cand.node),
            };
        }

        Ok(cand)
    }

    // ------------------------------------------------------------------
    // Binding & predicate analysis
    // ------------------------------------------------------------------

    fn resolve_bindings(&self, q: &Query) -> PlanResult<Vec<Binding>> {
        let mut out = Vec::new();
        for (table_name, binding_name) in q.bindings() {
            let table = self
                .catalog
                .table(table_name)
                .ok_or_else(|| PlanError::UnknownTable(table_name.to_string()))?
                .clone();
            let object = self
                .catalog
                .object_id(table_name)
                .expect("table implies object id");
            out.push(Binding {
                name: binding_name.to_string(),
                table,
                object,
            });
        }
        Ok(out)
    }

    /// Resolves a column reference. `Ok(None)` means the column resolved to
    /// the *outer* scope (correlated reference).
    fn resolve_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
        bindings: &[Binding],
        outer: &[Binding],
    ) -> PlanResult<Option<ColRef>> {
        if let Some(q) = qualifier {
            if let Some(i) = bindings.iter().position(|b| b.name.eq_ignore_ascii_case(q)) {
                if bindings[i].table.column(name).is_some() {
                    return Ok(Some((i, name.to_string())));
                }
                return Err(PlanError::UnknownColumn(format!("{q}.{name}")));
            }
            if outer.iter().any(|b| b.name.eq_ignore_ascii_case(q)) {
                return Ok(None);
            }
            return Err(PlanError::UnknownTable(q.to_string()));
        }
        let matches: Vec<usize> = bindings
            .iter()
            .enumerate()
            .filter(|(_, b)| b.table.column(name).is_some())
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(Some((matches[0], name.to_string()))),
            0 => {
                if outer.iter().any(|b| b.table.column(name).is_some()) {
                    Ok(None)
                } else {
                    Err(PlanError::UnknownColumn(name.to_string()))
                }
            }
            _ => Err(PlanError::AmbiguousColumn(name.to_string())),
        }
    }

    /// Splits all conjuncts (WHERE plus every JOIN…ON) into local / join /
    /// subquery / cross classes. Correlated equality conjuncts become
    /// parameterized local filters on the inner binding.
    fn classify_predicates(
        &self,
        q: &Query,
        bindings: &[Binding],
        outer: &[Binding],
    ) -> PlanResult<Preds> {
        let mut preds = Preds {
            local: vec![Vec::new(); bindings.len()],
            ..Default::default()
        };
        let mut conjuncts: Vec<Expr> = Vec::new();
        if let Some(w) = &q.where_clause {
            conjuncts.extend(w.conjuncts().into_iter().cloned());
        }
        for f in &q.from {
            collect_on_preds(f, &mut conjuncts);
        }

        for e in conjuncts {
            if !e.subqueries().is_empty() {
                preds.subqueries.push(e);
                continue;
            }
            // Resolve every referenced column; track the set of local
            // bindings touched and whether outer references occur.
            let mut locals: Vec<usize> = Vec::new();
            let mut has_outer = false;
            let mut resolution_error = None;
            for (qual, name) in e.referenced_columns() {
                match self.resolve_column(qual.as_deref(), name, bindings, outer) {
                    Ok(Some((i, _))) => locals.push(i),
                    Ok(None) => has_outer = true,
                    Err(err) => {
                        resolution_error = Some(err);
                        break;
                    }
                }
            }
            if let Some(err) = resolution_error {
                return Err(err);
            }
            locals.sort_unstable();
            locals.dedup();

            match (locals.len(), has_outer) {
                (0, _) => { /* constant or purely-outer predicate: no-op here */ }
                (1, false) => preds.local[locals[0]].push(e),
                (1, true) => {
                    // Correlated conjunct: behaves as a parameterized filter
                    // on the local binding. For an equality on a local column
                    // this is an equality selection; approximate any other
                    // shape the same way via the local column's NDV.
                    if let Some(col) = first_local_column(&e, bindings, outer, self) {
                        let tbl = &bindings[col.0].table;
                        let ndv = tbl
                            .column(&col.1)
                            .map(|c| c.stats.distinct_count)
                            .unwrap_or(3);
                        // Synthesize `col = <param>` with matching NDV effect:
                        // routed through `local` as an opaque filter carrying
                        // the correlated expression for explain purposes.
                        preds.local[col.0].push(param_filter(e, ndv));
                    }
                }
                (2, false) => {
                    if let Some((a, b)) = as_equijoin(&e, bindings, outer, self) {
                        let ndv_a = ndv_of(&bindings[a.0].table, &a.1);
                        let ndv_b = ndv_of(&bindings[b.0].table, &b.1);
                        preds.joins.push((a, b, join_selectivity(ndv_a, ndv_b)));
                    } else {
                        preds.cross.push(e);
                    }
                }
                _ => preds.cross.push(e),
            }
        }
        Ok(preds)
    }

    /// Columns of each binding referenced anywhere in the query (for index
    /// covering checks). `None` means "all columns" (wildcard).
    fn needed_columns(&self, q: &Query, bindings: &[Binding]) -> Vec<Option<Vec<String>>> {
        let mut needed: Vec<Option<Vec<String>>> = vec![Some(Vec::new()); bindings.len()];
        let mut wildcard = false;
        let mut exprs: Vec<&Expr> = Vec::new();
        for s in &q.select {
            match s {
                SelectItem::Wildcard => wildcard = true,
                SelectItem::Expr { expr, .. } => exprs.push(expr),
            }
        }
        if let Some(w) = &q.where_clause {
            exprs.push(w);
        }
        exprs.extend(q.group_by.iter());
        if let Some(h) = &q.having {
            exprs.push(h);
        }
        exprs.extend(q.order_by.iter().map(|o| &o.expr));
        if wildcard {
            return vec![None; bindings.len()];
        }
        for e in exprs {
            for (qual, name) in e.referenced_columns() {
                if let Ok(Some((i, col))) =
                    self.resolve_column(qual.as_deref(), name, bindings, &[])
                {
                    if let Some(cols) = &mut needed[i] {
                        if !cols.iter().any(|c| c.eq_ignore_ascii_case(&col)) {
                            cols.push(col);
                        }
                    }
                }
            }
        }
        needed
    }

    // ------------------------------------------------------------------
    // Access paths
    // ------------------------------------------------------------------

    fn access_paths(
        &self,
        b_idx: usize,
        binding: &Binding,
        local: &[Expr],
        needed: &Option<Vec<String>>,
    ) -> Vec<Cand> {
        let table = &binding.table;
        let table_blocks = table.size_blocks().max(1);
        let all_sel: f64 = local
            .iter()
            .map(|e| predicate_selectivity(table, e))
            .product();
        let rows_out = (table.row_count as f64 * all_sel).max(1e-3);
        let mut out = Vec::new();

        let with_filter = |node: PlanNode, scanned_rows: f64| -> PlanNode {
            if rows_out < scanned_rows * 0.999 && !local.is_empty() {
                let pred = local
                    .iter()
                    .map(render_expr)
                    .collect::<Vec<_>>()
                    .join(" AND ");
                PlanNode::Filter {
                    predicate: pred,
                    rows: rows_out,
                    child: Box::new(node),
                }
            } else {
                node
            }
        };

        // 1. Full scan (always available). Emits clustered order.
        let order = table.clustered_on.first().map(|c| (b_idx, c.clone()));
        out.push(Cand {
            node: with_filter(
                PlanNode::TableScan {
                    object: binding.object,
                    name: table.name.clone(),
                    blocks: table_blocks,
                    rows: table.row_count as f64,
                },
                table.row_count as f64,
            ),
            cost: table_blocks as f64 + self.cfg.row_cpu_cost * table.row_count as f64,
            rows: rows_out,
            width: table.row_bytes,
            order: order.clone(),
        });

        // 2. Clustered range scan when a sargable predicate hits the
        //    clustered leading key.
        if let Some(ck) = table.clustered_on.first() {
            let key_sel: f64 = local
                .iter()
                .filter(|e| sargable_on(e, ck))
                .map(|e| predicate_selectivity(table, e))
                .product();
            if key_sel < 0.999 {
                let blocks = ((table_blocks as f64 * key_sel).ceil() as u64).max(1); // dblayout::allow(R8, reason = "key_sel is in [0,1], so the product is at most table_blocks; ceil keeps partial blocks")
                let scanned = table.row_count as f64 * key_sel;
                out.push(Cand {
                    node: with_filter(
                        PlanNode::ClusteredRangeScan {
                            object: binding.object,
                            name: table.name.clone(),
                            blocks,
                            rows: scanned,
                        },
                        scanned,
                    ),
                    cost: blocks as f64 + self.cfg.row_cpu_cost * scanned,
                    rows: rows_out,
                    width: table.row_bytes,
                    order: order.clone(),
                });
            }
        }

        // 3. Nonclustered index seek (+ RID lookup unless covering).
        for idx in self.catalog.indexes_on(&table.name) {
            let lead = &idx.key_columns[0];
            let key_sel: f64 = local
                .iter()
                .filter(|e| sargable_on(e, lead))
                .map(|e| predicate_selectivity(table, e))
                .product();
            if key_sel >= 0.999 {
                continue;
            }
            let idx_object = self.catalog.object_id(&idx.name).expect("index registered");
            let leaf_blocks = ((idx.size_blocks() as f64 * key_sel).ceil() as u64).max(1); // dblayout::allow(R8, reason = "key_sel is in [0,1], so the product is at most the index size; ceil keeps partial blocks")
            let match_rows = table.row_count as f64 * key_sel;
            let covering = needed.as_ref().is_some_and(|cols| {
                cols.iter()
                    .all(|c| idx.key_columns.iter().any(|k| k.eq_ignore_ascii_case(c)))
            });
            let seek = PlanNode::IndexSeek {
                object: idx_object,
                name: idx.name.clone(),
                blocks: leaf_blocks,
                rows: match_rows,
            };
            let (node, cost, width) = if covering {
                (
                    seek,
                    leaf_blocks as f64 + self.cfg.row_cpu_cost * match_rows,
                    idx.entry_bytes,
                )
            } else {
                let lookup_blocks = cardenas_blocks(match_rows, table_blocks);
                (
                    PlanNode::RidLookup {
                        object: binding.object,
                        name: table.name.clone(),
                        blocks: lookup_blocks,
                        rows: match_rows,
                        child: Box::new(seek),
                    },
                    leaf_blocks as f64
                        + self.cfg.random_io_weight * lookup_blocks as f64
                        + self.cfg.row_cpu_cost * match_rows,
                    table.row_bytes,
                )
            };
            out.push(Cand {
                node: with_filter(node, match_rows),
                cost,
                rows: rows_out,
                width,
                order: Some((b_idx, lead.clone())),
            });
        }

        // Keep the useful frontier: cheapest per order plus cheapest overall.
        let mut frontier: Vec<Cand> = Vec::new();
        for c in out {
            insert_candidate(&mut frontier, c, self.cfg.max_candidates);
        }
        frontier
    }

    // ------------------------------------------------------------------
    // Join candidates
    // ------------------------------------------------------------------

    /// Enumerates physical joins of `left` (a planned subset) with `right`
    /// (an access path of binding `b`), given the connecting equijoin preds.
    fn join_candidates(
        &self,
        left: &Cand,
        right: &Cand,
        b: usize,
        links: &[&(ColRef, ColRef, f64)],
        bindings: &[Binding],
    ) -> Vec<Cand> {
        let mut out = Vec::new();
        let combined_sel: f64 = if links.is_empty() {
            1.0 // cartesian
        } else {
            links.iter().map(|(_, _, s)| *s).product()
        };
        // Key-join detection: when the join columns on `b`'s side cover its
        // clustered (unique) key, each left row matches at most one `b` row
        // — a FK lookup. The independence product grossly underestimates
        // composite keys (e.g. lineitem ⋈ partsupp on partkey+suppkey), so
        // use `left.rows × surviving fraction of b` instead.
        let right_table = &bindings[b].table;
        let b_side_cols: Vec<&str> = links
            .iter()
            .map(|(a, c, _)| if c.0 == b { c.1.as_str() } else { a.1.as_str() })
            .collect();
        let covers_key = !links.is_empty()
            && !right_table.clustered_on.is_empty()
            && right_table
                .clustered_on
                .iter()
                .all(|k| b_side_cols.iter().any(|c| c.eq_ignore_ascii_case(k)));
        let rows = if covers_key {
            let fraction = (right.rows / right_table.row_count.max(1) as f64).min(1.0);
            (left.rows * fraction).max(1e-3)
        } else {
            (left.rows * right.rows * combined_sel).max(1e-3)
        };
        let width = (left.width + right.width).min(256);
        let on: String = if links.is_empty() {
            "cartesian".to_string()
        } else {
            links
                .iter()
                .map(|(a, c, _)| format!("{}={}", a.1, c.1))
                .collect::<Vec<_>>()
                .join(" AND ")
        };

        // Key pair oriented as (left side col, right side col).
        let oriented: Vec<(ColRef, ColRef)> = links
            .iter()
            .map(|(a, c, _)| {
                if c.0 == b {
                    (a.clone(), c.clone())
                } else {
                    (c.clone(), a.clone())
                }
            })
            .collect();

        // Merge join: both inputs ordered on a connecting key pair.
        for (lk, rk) in &oriented {
            let l_ok = left.order.as_ref() == Some(lk);
            let r_ok = right.order.as_ref() == Some(rk);
            if l_ok && r_ok {
                out.push(Cand {
                    node: PlanNode::MergeJoin {
                        on: on.clone(),
                        rows,
                        left: Box::new(left.node.clone()),
                        right: Box::new(right.node.clone()),
                    },
                    cost: left.cost + right.cost + self.cfg.row_cpu_cost * (left.rows + right.rows),
                    rows,
                    width,
                    order: Some(lk.clone()),
                });
            } else if r_ok {
                // Sort the left (intermediate) side, then merge.
                let blocks = est_blocks(left.rows, left.width);
                let spill = if blocks > self.cfg.memory_grant_blocks {
                    blocks
                } else {
                    0
                };
                let sort_cost = if spill > 0 {
                    self.cfg.spill_io_factor * spill as f64
                } else {
                    self.cfg.sort_cpu_factor * blocks as f64
                };
                out.push(Cand {
                    node: PlanNode::MergeJoin {
                        on: on.clone(),
                        rows,
                        left: Box::new(PlanNode::Sort {
                            by: lk.1.clone(),
                            rows: left.rows,
                            spill_blocks: spill,
                            child: Box::new(left.node.clone()),
                        }),
                        right: Box::new(right.node.clone()),
                    },
                    cost: left.cost
                        + right.cost
                        + sort_cost
                        + self.cfg.row_cpu_cost * (left.rows + right.rows),
                    rows,
                    width,
                    order: Some(lk.clone()),
                });
            }
        }

        // Hash join: build on the smaller side; probe order is preserved.
        {
            let left_bytes = left.rows * left.width as f64;
            let right_bytes = right.rows * right.width as f64;
            let (build, probe, probe_order) = if left_bytes <= right_bytes {
                (left, right, right.order.clone())
            } else {
                (right, left, left.order.clone())
            };
            let build_blocks = est_blocks(build.rows, build.width);
            let spill = if build_blocks > self.cfg.memory_grant_blocks {
                build_blocks
            } else {
                0
            };
            out.push(Cand {
                node: PlanNode::HashJoin {
                    on: on.clone(),
                    rows,
                    build: Box::new(build.node.clone()),
                    probe: Box::new(probe.node.clone()),
                    spill_blocks: spill,
                },
                cost: left.cost
                    + right.cost
                    + self.cfg.hash_build_factor * build_blocks as f64
                    + self.cfg.spill_io_factor * spill as f64
                    + self.cfg.row_cpu_cost * (left.rows + right.rows),
                rows,
                width,
                order: probe_order,
            });
        }

        // Nested loops with an indexed inner (clustered key or nonclustered
        // index on the join column of `b`). Only worthwhile for selective
        // outers; enumerate and let cost decide.
        if let Some((_, rk)) = oriented.first() {
            if let Some((inner_node, inner_cost)) = self.nl_inner(&bindings[b], rk, left.rows, rows)
            {
                out.push(Cand {
                    node: PlanNode::NestedLoops {
                        on: on.clone(),
                        rows,
                        outer: Box::new(left.node.clone()),
                        inner: Box::new(inner_node),
                    },
                    cost: left.cost + inner_cost + self.cfg.row_cpu_cost * left.rows,
                    rows,
                    width,
                    order: left.order.clone(),
                });
            }
        }

        out
    }

    /// Builds the repeated-probe inner side of an indexed nested-loops join
    /// into `binding` on column `rk.1`, for `probes` outer rows producing
    /// `match_rows` total matches. Returns `(node, cost)` or `None` when no
    /// index supports the probe.
    fn nl_inner(
        &self,
        binding: &Binding,
        rk: &ColRef,
        probes: f64,
        match_rows: f64,
    ) -> Option<(PlanNode, f64)> {
        let table = &binding.table;
        let table_blocks = table.size_blocks().max(1);
        if table.is_clustered_on(&rk.1) {
            // Clustered seeks land directly on the matching data blocks.
            let blocks = cardenas_blocks(probes.max(match_rows), table_blocks);
            let node = PlanNode::Seek {
                object: binding.object,
                name: table.name.clone(),
                blocks,
                rows: match_rows,
            };
            return Some((
                node,
                self.cfg.random_io_weight * blocks as f64
                    + self.cfg.row_cpu_cost * match_rows
                    + self.cfg.nl_probe_cost * probes,
            ));
        }
        let idx = self
            .catalog
            .indexes_on(&table.name)
            .find(|i| i.key_columns[0].eq_ignore_ascii_case(&rk.1))?;
        let idx_object = self.catalog.object_id(&idx.name).expect("index registered");
        let idx_blocks = cardenas_blocks(probes, idx.size_blocks().max(1));
        let lookup_blocks = cardenas_blocks(match_rows, table_blocks);
        let node = PlanNode::RidLookup {
            object: binding.object,
            name: table.name.clone(),
            blocks: lookup_blocks,
            rows: match_rows,
            child: Box::new(PlanNode::Seek {
                object: idx_object,
                name: idx.name.clone(),
                blocks: idx_blocks,
                rows: match_rows,
            }),
        };
        Some((
            node,
            self.cfg.random_io_weight * (idx_blocks + lookup_blocks) as f64
                + self.cfg.row_cpu_cost * match_rows
                + self.cfg.nl_probe_cost * probes,
        ))
    }

    // ------------------------------------------------------------------
    // Subqueries
    // ------------------------------------------------------------------

    fn attach_subquery(&self, e: &Expr, mut cand: Cand, bindings: &[Binding]) -> PlanResult<Cand> {
        match e {
            Expr::InSubquery {
                subquery, negated, ..
            }
            | Expr::Exists {
                subquery, negated, ..
            } => {
                let inner = self.plan_select(subquery, bindings)?;
                let sel = if *negated {
                    1.0 - SEL_UNKNOWN
                } else {
                    SEL_UNKNOWN
                };
                let build_blocks = est_blocks(inner.rows, inner.width);
                let spill = if build_blocks > self.cfg.memory_grant_blocks {
                    build_blocks
                } else {
                    0
                };
                cand.rows = (cand.rows * sel).max(1e-3);
                cand.cost += inner.cost
                    + self.cfg.hash_build_factor * build_blocks as f64
                    + self.cfg.spill_io_factor * spill as f64;
                cand.node = PlanNode::HashJoin {
                    on: "semijoin".into(),
                    rows: cand.rows,
                    build: Box::new(inner.node),
                    probe: Box::new(cand.node),
                    spill_blocks: spill,
                };
                Ok(cand)
            }
            Expr::Binary { op, left, right } if op.is_comparison() => {
                // col <op> (SELECT ...): run the subquery first (Apply),
                // filter the main side.
                let (sub, col_side) = match (&**left, &**right) {
                    (Expr::ScalarSubquery(q), other) => (q, other),
                    (other, Expr::ScalarSubquery(q)) => (q, other),
                    _ => return self.opaque_subquery_filter(e, cand, bindings),
                };
                let inner = self.plan_select(sub, bindings)?;
                let sel = match (op, col_side) {
                    (BinaryOp::Eq, Expr::Column { qualifier, name }) => {
                        match self.resolve_column(qualifier.as_deref(), name, bindings, &[]) {
                            Ok(Some((i, col))) => {
                                1.0 / ndv_of(&bindings[i].table, &col).max(1) as f64
                            }
                            _ => SEL_UNKNOWN,
                        }
                    }
                    _ => SEL_UNKNOWN,
                };
                cand.rows = (cand.rows * sel).max(1e-3);
                cand.cost += inner.cost;
                cand.node = PlanNode::Apply {
                    rows: cand.rows,
                    sub: Box::new(inner.node),
                    main: Box::new(PlanNode::Filter {
                        predicate: render_expr(e),
                        rows: cand.rows,
                        child: Box::new(cand.node),
                    }),
                };
                cand.order = None;
                Ok(cand)
            }
            Expr::Unary { expr, .. } => self.attach_subquery(expr, cand, bindings),
            _ => self.opaque_subquery_filter(e, cand, bindings),
        }
    }

    /// Fallback for subquery conjunct shapes we do not special-case: plan
    /// every nested subquery as an Apply input and filter with the default
    /// selectivity.
    fn opaque_subquery_filter(
        &self,
        e: &Expr,
        mut cand: Cand,
        bindings: &[Binding],
    ) -> PlanResult<Cand> {
        for sub in e.subqueries() {
            let inner = self.plan_select(sub, bindings)?;
            cand.cost += inner.cost;
            cand.node = PlanNode::Apply {
                rows: cand.rows,
                sub: Box::new(inner.node),
                main: Box::new(cand.node),
            };
        }
        cand.rows = (cand.rows * SEL_UNKNOWN).max(1e-3);
        cand.node = PlanNode::Filter {
            predicate: render_expr(e),
            rows: cand.rows,
            child: Box::new(cand.node),
        };
        cand.order = None;
        Ok(cand)
    }

    /// Group-count estimate: NDVs multiply across bindings, but one
    /// binding's columns can never produce more groups than it has rows
    /// (grouping by a key plus dependent columns — TPC-H Q15/Q18 — would
    /// otherwise explode under the independence assumption).
    fn estimate_groups(&self, group_by: &[Expr], bindings: &[Binding], rows: f64) -> f64 {
        let mut per_binding: Vec<f64> = vec![1.0; bindings.len()];
        let mut unresolved = 1.0f64;
        for g in group_by {
            match g {
                Expr::Column { qualifier, name } => {
                    match self.resolve_column(qualifier.as_deref(), name, bindings, &[]) {
                        Ok(Some((i, col))) => {
                            per_binding[i] *= ndv_of(&bindings[i].table, &col).max(1) as f64;
                        }
                        _ => unresolved *= 10.0,
                    }
                }
                _ => unresolved *= 10.0,
            }
        }
        let mut groups = unresolved;
        for (i, g) in per_binding.iter().enumerate() {
            groups *= g.min(bindings[i].table.row_count.max(1) as f64);
            if groups > rows {
                break;
            }
        }
        groups.min(rows).max(1.0)
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    fn plan_insert(&self, table: &str, source: &InsertSource) -> PlanResult<PlanNode> {
        let t = self
            .catalog
            .table(table)
            .ok_or_else(|| PlanError::UnknownTable(table.to_string()))?;
        let object = self.catalog.object_id(table).expect("table has id");
        match source {
            InsertSource::Values(rows) => {
                let n = rows.len() as u64;
                Ok(PlanNode::Insert {
                    object,
                    name: t.name.clone(),
                    write_blocks: blocks_for_rows(n, t.row_bytes).max(1),
                    rows: n as f64,
                    child: None,
                })
            }
            InsertSource::Query(q) => {
                let planned = self.plan_select(q, &[])?;
                let write_blocks = blocks_for_rows(planned.rows.ceil() as u64, t.row_bytes).max(1); // dblayout::allow(R8, reason = "rows is a non-negative cardinality estimate far below 2^53; ceil rounds up partial rows")
                Ok(PlanNode::Insert {
                    object,
                    name: t.name.clone(),
                    write_blocks,
                    rows: planned.rows,
                    child: Some(Box::new(planned.node)),
                })
            }
        }
    }

    fn plan_write(
        &self,
        table: &str,
        where_clause: Option<&Expr>,
        is_update: bool,
    ) -> PlanResult<PlanNode> {
        let t = self
            .catalog
            .table(table)
            .ok_or_else(|| PlanError::UnknownTable(table.to_string()))?
            .clone();
        let object = self.catalog.object_id(table).expect("table has id");
        let binding = Binding {
            name: t.name.clone(),
            table: t.clone(),
            object,
        };
        let local: Vec<Expr> = where_clause
            .map(|w| w.conjuncts().into_iter().cloned().collect())
            .unwrap_or_default();
        let paths = self.access_paths(0, &binding, &local, &None);
        let access = paths
            .into_iter()
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
            .ok_or_else(|| PlanError::Unsupported("no access path".into()))?;
        let matched = access.rows;
        let table_blocks = t.size_blocks().max(1);
        let write_blocks = if matched >= t.row_count as f64 * 0.999 {
            table_blocks
        } else {
            cardenas_blocks(matched, table_blocks)
        };
        Ok(if is_update {
            PlanNode::Update {
                object,
                name: t.name.clone(),
                write_blocks,
                rows: matched,
                child: Box::new(access.node),
            }
        } else {
            PlanNode::Delete {
                object,
                name: t.name.clone(),
                write_blocks,
                rows: matched,
                child: Box::new(access.node),
            }
        })
    }
}

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

/// Estimated blocks for an intermediate result of `rows` rows × `width` B.
fn est_blocks(rows: f64, width: u32) -> u64 {
    blocks_for_rows(rows.ceil().max(0.0) as u64, width.max(1))
}

fn ndv_of(table: &Table, col: &str) -> u64 {
    table
        .column(col)
        .map(|c| c.stats.distinct_count)
        .unwrap_or(1)
}

fn collect_on_preds(item: &FromItem, out: &mut Vec<Expr>) {
    if let FromItem::Join {
        left, right, on, ..
    } = item
    {
        collect_on_preds(left, out);
        collect_on_preds(right, out);
        out.extend(on.conjuncts().into_iter().cloned());
    }
}

/// Is `e` a sargable predicate (comparison / BETWEEN / IN-list against
/// constants) whose column is `col`?
fn sargable_on(e: &Expr, col: &str) -> bool {
    let col_is =
        |x: &Expr| matches!(x, Expr::Column { name, .. } if name.eq_ignore_ascii_case(col));
    match e {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            (col_is(left) && crate::selectivity::const_value(right).is_some())
                || (col_is(right) && crate::selectivity::const_value(left).is_some())
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            !negated
                && col_is(expr)
                && crate::selectivity::const_value(low).is_some()
                && crate::selectivity::const_value(high).is_some()
        }
        Expr::InList { expr, negated, .. } => !negated && col_is(expr),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => !negated && col_is(expr) && !pattern.starts_with('%') && !pattern.starts_with('_'),
        _ => false,
    }
}

/// Extracts `(left_ref, right_ref)` if `e` is `colA = colB` across two
/// different bindings.
fn as_equijoin(
    e: &Expr,
    bindings: &[Binding],
    outer: &[Binding],
    opt: &Optimizer,
) -> Option<(ColRef, ColRef)> {
    if let Expr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = e
    {
        if let (
            Expr::Column {
                qualifier: ql,
                name: nl,
            },
            Expr::Column {
                qualifier: qr,
                name: nr,
            },
        ) = (&**left, &**right)
        {
            let a = opt
                .resolve_column(ql.as_deref(), nl, bindings, outer)
                .ok()??;
            let b = opt
                .resolve_column(qr.as_deref(), nr, bindings, outer)
                .ok()??;
            if a.0 != b.0 {
                return Some((a, b));
            }
        }
    }
    None
}

/// First local column referenced by a correlated conjunct.
fn first_local_column(
    e: &Expr,
    bindings: &[Binding],
    outer: &[Binding],
    opt: &Optimizer,
) -> Option<ColRef> {
    e.referenced_columns()
        .into_iter()
        .find_map(|(q, n)| opt.resolve_column(q.as_deref(), n, bindings, outer).ok()?)
}

/// Rewrites a correlated conjunct into `local_col = <param>` so that
/// selectivity estimation applies the column's `1/NDV` equality factor —
/// the effect of a parameterized lookup driven by the outer query.
///
/// The placeholder is `NULL` deliberately: it carries no constant value, so
/// the predicate is *not sargable* — a correlated parameter varies per
/// outer row, and the decorrelated (semi-join) execution the planner models
/// scans the inner object rather than seeking one key's worth of blocks.
fn param_filter(original: Expr, _ndv: u64) -> Expr {
    if let Some((q, n)) = original
        .referenced_columns()
        .first()
        .map(|(q, n)| ((*q).clone(), n.to_string()))
    {
        Expr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(Expr::Column {
                qualifier: q,
                name: n,
            }),
            right: Box::new(Expr::Literal(dblayout_sql::ast::Literal::Null)),
        }
    } else {
        original
    }
}

/// Inserts `cand` into a candidate frontier: keeps the cheapest plan per
/// distinct order, plus the overall cheapest, bounded by `max`.
fn insert_candidate(frontier: &mut Vec<Cand>, cand: Cand, max: usize) {
    // Dominated: an existing candidate with the same order and lower cost.
    if frontier
        .iter()
        .any(|c| c.order == cand.order && c.cost <= cand.cost)
    {
        return;
    }
    frontier.retain(|c| !(c.order == cand.order && c.cost > cand.cost));
    frontier.push(cand);
    if frontier.len() > max {
        // Drop the most expensive non-unique-order candidate.
        frontier.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        frontier.truncate(max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use crate::explain::explain;
    use dblayout_catalog::tpch::tpch_catalog;
    use dblayout_sql::parse_statement;

    fn plan(catalog: &Catalog, sql: &str) -> PhysicalPlan {
        let stmt = parse_statement(sql).unwrap();
        plan_statement(catalog, &stmt).unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    fn subplan_of(plan: &PhysicalPlan, catalog: &Catalog, obj: &str) -> Option<usize> {
        let id = catalog.object_id(obj)?;
        plan.subplans()
            .iter()
            .position(|s| s.objects().contains(&id))
    }

    #[test]
    fn single_table_scan() {
        let c = tpch_catalog(0.1);
        let p = plan(&c, "SELECT COUNT(*) FROM lineitem");
        let subs = p.subplans();
        assert_eq!(subs.len(), 1);
        let l = c.table("lineitem").unwrap();
        assert_eq!(
            subs[0].blocks_of(c.object_id("lineitem").unwrap()),
            l.size_blocks()
        );
    }

    #[test]
    fn selective_clustered_predicate_uses_range_scan() {
        let c = tpch_catalog(0.1);
        let p = plan(&c, "SELECT COUNT(*) FROM orders WHERE o_orderkey < 1000");
        let blocks = p.total_blocks_of(c.object_id("orders").unwrap());
        let full = c.table("orders").unwrap().size_blocks();
        assert!(
            blocks < full / 10,
            "range scan should read a fraction: {blocks}/{full}"
        );
    }

    #[test]
    fn selective_nonclustered_predicate_uses_index() {
        let c = tpch_catalog(1.0);
        // ~0.04% of lineitem: index seek + RID lookup should win.
        let p = plan(
            &c,
            "SELECT l_quantity FROM lineitem WHERE l_shipdate = '1995-06-17'",
        );
        let idx = c.object_id("idx_lineitem_shipdate").unwrap();
        assert!(p.objects().contains(&idx), "{}", explain(&p));
        // RID lookup access must be random.
        let subs = p.subplans();
        let table_access = subs[0]
            .accesses
            .iter()
            .find(|a| a.object == c.object_id("lineitem").unwrap())
            .expect("table accessed");
        assert_eq!(table_access.kind, AccessKind::RandomRead);
    }

    #[test]
    fn q3_shape_merge_join_co_accesses_lineitem_and_orders() {
        let c = tpch_catalog(1.0);
        let p = plan(
            &c,
            "SELECT TOP 10 l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
                    o_orderdate, o_shippriority \
             FROM customer, orders, lineitem \
             WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey \
               AND l_orderkey = o_orderkey AND o_orderdate < '1995-03-15' \
               AND l_shipdate > '1995-03-15' \
             GROUP BY l_orderkey, o_orderdate, o_shippriority \
             ORDER BY revenue DESC, o_orderdate",
        );
        let text = explain(&p);
        // lineitem and orders must share a sub-plan (merge join on orderkey),
        // customer must be in a different one (hash build).
        let sl = subplan_of(&p, &c, "lineitem").unwrap();
        let so = subplan_of(&p, &c, "orders").unwrap();
        let sc = subplan_of(&p, &c, "customer").unwrap();
        assert_eq!(sl, so, "lineitem/orders co-accessed\n{text}");
        assert_ne!(sc, sl, "customer separated\n{text}");
        assert!(text.contains("MergeJoin"), "{text}");
    }

    #[test]
    fn q5_shape_blocking_cut_between_dims_and_lineitem_supplier() {
        let c = tpch_catalog(1.0);
        let p = plan(
            &c,
            "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM customer, orders, lineitem, supplier, nation, region \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
               AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
               AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
               AND r_name = 'ASIA' \
               AND o_orderdate >= '1994-01-01' AND o_orderdate < '1995-01-01' \
             GROUP BY n_name ORDER BY revenue DESC",
        );
        let text = explain(&p);
        // The paper's Example 3 property: lineitem co-accesses only a subset
        // of relations — at minimum, lineitem must NOT share a sub-plan with
        // all five other tables (a blocking cut exists somewhere).
        let sl = subplan_of(&p, &c, "lineitem").unwrap();
        let others = ["customer", "orders", "supplier", "nation", "region"];
        let separated = others
            .iter()
            .filter(|t| subplan_of(&p, &c, t) != Some(sl))
            .count();
        assert!(separated >= 2, "expected blocking cuts\n{text}");
        assert!(p.subplans().len() >= 3, "{text}");
    }

    #[test]
    fn self_join_accumulates_blocks() {
        let c = tpch_catalog(0.1);
        let p = plan(
            &c,
            "SELECT COUNT(*) FROM lineitem l1, lineitem l2 WHERE l1.l_orderkey = l2.l_orderkey",
        );
        let l = c.table("lineitem").unwrap().size_blocks();
        // Both instances scanned: total blocks across plan = 2x table size
        // (merge self-join) or close to it.
        let total = p.total_blocks_of(c.object_id("lineitem").unwrap());
        assert!(total >= 2 * l, "{total} vs {l}");
    }

    #[test]
    fn exists_subquery_planned_as_semijoin() {
        let c = tpch_catalog(0.1);
        let p = plan(
            &c,
            "SELECT o_orderpriority, COUNT(*) FROM orders \
             WHERE o_orderdate >= '1993-07-01' AND EXISTS ( \
                SELECT * FROM lineitem WHERE l_orderkey = o_orderkey \
                AND l_commitdate < l_receiptdate) \
             GROUP BY o_orderpriority ORDER BY o_orderpriority",
        );
        assert!(p.objects().contains(&c.object_id("lineitem").unwrap()));
        // Semi-join is a hash join: lineitem on the build side, separate
        // sub-plan from orders.
        let sl = subplan_of(&p, &c, "lineitem").unwrap();
        let so = subplan_of(&p, &c, "orders").unwrap();
        assert_ne!(sl, so);
    }

    #[test]
    fn scalar_subquery_planned_as_apply() {
        let c = tpch_catalog(0.1);
        let p = plan(
            &c,
            "SELECT COUNT(*) FROM partsupp \
             WHERE ps_supplycost = (SELECT MIN(ps_supplycost) FROM partsupp)",
        );
        // Two separate accesses of partsupp in different sub-plans.
        let subs = p.subplans();
        assert!(subs.len() >= 2, "{}", explain(&p));
    }

    #[test]
    fn insert_values_writes_one_block() {
        let c = tpch_catalog(0.1);
        let p = plan(&c, "INSERT INTO orders (o_orderkey) VALUES (1)");
        let subs = p.subplans();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].accesses[0].kind, AccessKind::Write);
        assert_eq!(subs[0].accesses[0].blocks, 1);
    }

    #[test]
    fn update_reads_and_writes_target() {
        let c = tpch_catalog(0.1);
        let p = plan(
            &c,
            "UPDATE orders SET o_orderstatus = 'F' WHERE o_orderkey < 500",
        );
        let subs = p.subplans();
        assert_eq!(subs.len(), 1);
        let kinds: Vec<AccessKind> = subs[0].accesses.iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AccessKind::Write));
        assert!(kinds.iter().any(|k| k.is_read()));
    }

    #[test]
    fn full_table_delete_writes_all_blocks() {
        let c = tpch_catalog(0.01);
        let p = plan(&c, "DELETE FROM region");
        let region_blocks = c.table("region").unwrap().size_blocks();
        let subs = p.subplans();
        let w = subs[0]
            .accesses
            .iter()
            .find(|a| a.kind == AccessKind::Write)
            .unwrap();
        assert_eq!(w.blocks, region_blocks);
    }

    #[test]
    fn unknown_table_is_error() {
        let c = tpch_catalog(0.01);
        let stmt = parse_statement("SELECT * FROM ghosts").unwrap();
        assert!(matches!(
            plan_statement(&c, &stmt),
            Err(PlanError::UnknownTable(_))
        ));
    }

    #[test]
    fn unknown_column_is_error() {
        let c = tpch_catalog(0.01);
        let stmt = parse_statement("SELECT * FROM orders WHERE no_such_col = 1").unwrap();
        assert!(matches!(
            plan_statement(&c, &stmt),
            Err(PlanError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ambiguous_column_is_error() {
        let c = tpch_catalog(0.01);
        // l_orderkey exists in both lineitem bindings.
        let stmt =
            parse_statement("SELECT * FROM lineitem l1, lineitem l2 WHERE l_orderkey = 1").unwrap();
        assert!(matches!(
            plan_statement(&c, &stmt),
            Err(PlanError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn group_by_on_unsorted_col_is_hash_aggregate() {
        let c = tpch_catalog(0.1);
        let p = plan(
            &c,
            "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey",
        );
        assert!(explain(&p).contains("HashAggregate"));
    }

    #[test]
    fn group_by_on_clustered_col_is_stream_aggregate() {
        let c = tpch_catalog(0.1);
        let p = plan(
            &c,
            "SELECT o_orderkey, COUNT(*) FROM orders GROUP BY o_orderkey",
        );
        assert!(explain(&p).contains("StreamAggregate"), "{}", explain(&p));
    }

    #[test]
    fn order_by_on_scan_order_needs_no_sort() {
        let c = tpch_catalog(0.1);
        let p = plan(&c, "SELECT o_orderkey FROM orders ORDER BY o_orderkey");
        assert!(!explain(&p).contains("Sort"), "{}", explain(&p));
    }

    #[test]
    fn order_by_on_other_col_sorts_and_may_spill() {
        let c = tpch_catalog(1.0);
        let p = plan(&c, "SELECT * FROM lineitem ORDER BY l_extendedprice");
        let text = explain(&p);
        assert!(text.contains("Sort"), "{text}");
        // 6M wide rows overflow the 32 MB grant: external sort spills.
        let total_temp: u64 = p.subplans().iter().map(|s| s.temp_write_blocks).sum();
        assert!(total_temp > 0, "{text}");
    }

    #[test]
    fn ansi_join_syntax_equivalent_to_comma_join() {
        let c = tpch_catalog(0.1);
        let p1 = plan(
            &c,
            "SELECT COUNT(*) FROM orders JOIN lineitem ON l_orderkey = o_orderkey",
        );
        let p2 = plan(
            &c,
            "SELECT COUNT(*) FROM orders, lineitem WHERE l_orderkey = o_orderkey",
        );
        assert_eq!(p1.total_io_blocks(), p2.total_io_blocks());
    }

    #[test]
    fn cartesian_join_allowed_when_no_predicate() {
        let c = tpch_catalog(0.01);
        let p = plan(&c, "SELECT COUNT(*) FROM region, nation");
        assert_eq!(p.objects().len(), 2);
    }

    #[test]
    fn weighted_query_plans_deterministically() {
        let c = tpch_catalog(0.1);
        let sql = "SELECT COUNT(*) FROM orders, lineitem WHERE l_orderkey = o_orderkey";
        let a = explain(&plan(&c, sql));
        let b = explain(&plan(&c, sql));
        assert_eq!(a, b);
    }
}
