//! Showplan-style plan rendering (the "no-execute" mode output of §4.2).

use std::fmt::Write as _;

use dblayout_sql::ast::{Expr, SelectItem};

use crate::physical::{PhysicalPlan, PlanNode};

/// Renders a plan as an indented operator tree followed by its non-blocking
/// sub-plan decomposition, e.g.:
///
/// ```text
/// MergeJoin [on l_orderkey=o_orderkey] rows=1323432
///   ClusteredRangeScan orders blocks=1251 rows=727500
///   TableScan lineitem blocks=10274 rows=6000000
/// -- non-blocking sub-plans --
/// S0: orders[1251] lineitem[10274]
/// ```
pub fn explain(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    render_node(&plan.root, 0, &mut out);
    out.push_str("-- non-blocking sub-plans --\n");
    for (i, sub) in plan.subplans().iter().enumerate() {
        let _ = write!(out, "S{i}:"); // dblayout::allow(R9, reason = "write! into a String is infallible; fmt::Error cannot occur")
        for a in &sub.accesses {
            let tag = match a.kind {
                crate::access::AccessKind::SequentialRead => "",
                crate::access::AccessKind::RandomRead => "~",
                crate::access::AccessKind::Write => "w",
            };
            let _ = write!(out, " #{}{}[{}]", a.object.0, tag, a.blocks); // dblayout::allow(R9, reason = "write! into a String is infallible; fmt::Error cannot occur")
        }
        if sub.temp_write_blocks > 0 || sub.temp_read_blocks > 0 {
            // dblayout::allow(R9, reason = "write! into a String is infallible; fmt::Error cannot occur")
            let _ = write!(
                out,
                " temp[w{} r{}]",
                sub.temp_write_blocks, sub.temp_read_blocks
            );
        }
        out.push('\n');
    }
    out
}

fn render_node(node: &PlanNode, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let line = match node {
        PlanNode::TableScan {
            name, blocks, rows, ..
        } => {
            format!("TableScan {name} blocks={blocks} rows={rows:.0}")
        }
        PlanNode::ClusteredRangeScan {
            name, blocks, rows, ..
        } => {
            format!("ClusteredRangeScan {name} blocks={blocks} rows={rows:.0}")
        }
        PlanNode::Seek {
            name, blocks, rows, ..
        } => {
            format!("Seek {name} blocks={blocks} rows={rows:.0}")
        }
        PlanNode::IndexSeek {
            name, blocks, rows, ..
        } => {
            format!("IndexSeek {name} blocks={blocks} rows={rows:.0}")
        }
        PlanNode::RidLookup {
            name, blocks, rows, ..
        } => {
            format!("RidLookup {name} blocks={blocks} rows={rows:.0}")
        }
        PlanNode::Filter {
            predicate, rows, ..
        } => {
            format!("Filter [{predicate}] rows={rows:.0}")
        }
        PlanNode::NestedLoops { on, rows, .. } => {
            format!("NestedLoops [on {on}] rows={rows:.0}")
        }
        PlanNode::MergeJoin { on, rows, .. } => format!("MergeJoin [on {on}] rows={rows:.0}"),
        PlanNode::HashJoin {
            on,
            rows,
            spill_blocks,
            ..
        } => {
            if *spill_blocks > 0 {
                format!("HashJoin [on {on}] rows={rows:.0} spill={spill_blocks}")
            } else {
                format!("HashJoin [on {on}] rows={rows:.0}")
            }
        }
        PlanNode::Sort {
            by,
            rows,
            spill_blocks,
            ..
        } => {
            if *spill_blocks > 0 {
                format!("Sort [by {by}] rows={rows:.0} spill={spill_blocks}")
            } else {
                format!("Sort [by {by}] rows={rows:.0}")
            }
        }
        PlanNode::StreamAggregate { rows, .. } => format!("StreamAggregate rows={rows:.0}"),
        PlanNode::HashAggregate {
            rows, spill_blocks, ..
        } => {
            if *spill_blocks > 0 {
                format!("HashAggregate rows={rows:.0} spill={spill_blocks}")
            } else {
                format!("HashAggregate rows={rows:.0}")
            }
        }
        PlanNode::Top { n, rows, .. } => format!("Top {n} rows={rows:.0}"),
        PlanNode::Apply { rows, .. } => format!("Apply rows={rows:.0}"),
        PlanNode::Insert {
            name,
            write_blocks,
            rows,
            ..
        } => format!("Insert {name} write_blocks={write_blocks} rows={rows:.0}"),
        PlanNode::Update {
            name,
            write_blocks,
            rows,
            ..
        } => format!("Update {name} write_blocks={write_blocks} rows={rows:.0}"),
        PlanNode::Delete {
            name,
            write_blocks,
            rows,
            ..
        } => format!("Delete {name} write_blocks={write_blocks} rows={rows:.0}"),
    };
    let _ = writeln!(out, "{pad}{line}"); // dblayout::allow(R9, reason = "writeln! into a String is infallible; fmt::Error cannot occur")
    for child in node.children() {
        render_node(child, depth + 1, out);
    }
}

/// Compact one-line rendering of an expression for Filter/Sort labels.
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        Expr::Literal(l) => l.to_string(),
        Expr::Binary { op, left, right } => {
            format!("{} {} {}", render_expr(left), op, render_expr(right))
        }
        Expr::Unary { op, expr } => match op {
            dblayout_sql::ast::UnaryOp::Not => format!("NOT ({})", render_expr(expr)),
            dblayout_sql::ast::UnaryOp::Neg => format!("-{}", render_expr(expr)),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => format!(
            "{}{} BETWEEN {} AND {}",
            render_expr(expr),
            if *negated { " NOT" } else { "" },
            render_expr(low),
            render_expr(high)
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => format!(
            "{}{} IN ({})",
            render_expr(expr),
            if *negated { " NOT" } else { "" },
            list.iter().map(render_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::InSubquery { expr, negated, .. } => format!(
            "{}{} IN (<subquery>)",
            render_expr(expr),
            if *negated { " NOT" } else { "" }
        ),
        Expr::Exists { negated, .. } => {
            if *negated {
                "NOT EXISTS (<subquery>)".to_string()
            } else {
                "EXISTS (<subquery>)".to_string()
            }
        }
        Expr::ScalarSubquery(_) => "(<subquery>)".to_string(),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{}{} LIKE '{}'",
            render_expr(expr),
            if *negated { " NOT" } else { "" },
            pattern
        ),
        Expr::IsNull { expr, negated } => format!(
            "{} IS{} NULL",
            render_expr(expr),
            if *negated { " NOT" } else { "" }
        ),
        Expr::AggregateCall {
            func,
            arg,
            distinct,
        } => match arg {
            Some(a) => format!(
                "{func}({}{})",
                if *distinct { "DISTINCT " } else { "" },
                render_expr(a)
            ),
            None => format!("{func}(*)"),
        },
        Expr::Case { .. } => "CASE ...".to_string(),
    }
}

/// Renders a select item (used by tests and diagnostics).
pub fn render_select_item(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => format!("{} AS {a}", render_expr(expr)),
            None => render_expr(expr),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::ObjectId;
    use dblayout_sql::parse_statement;
    use dblayout_sql::Statement;

    #[test]
    fn explain_shows_tree_and_subplans() {
        let plan = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "a=b".into(),
            rows: 10.0,
            left: Box::new(PlanNode::TableScan {
                object: ObjectId(0),
                name: "t0".into(),
                blocks: 100,
                rows: 1000.0,
            }),
            right: Box::new(PlanNode::TableScan {
                object: ObjectId(1),
                name: "t1".into(),
                blocks: 50,
                rows: 500.0,
            }),
        });
        let s = explain(&plan);
        assert!(s.contains("MergeJoin [on a=b]"));
        assert!(s.contains("  TableScan t0 blocks=100"));
        assert!(s.contains("S0: #0[100] #1[50]"));
    }

    #[test]
    fn render_expr_roundtrips_common_shapes() {
        let w = |sql: &str| match parse_statement(sql).unwrap() {
            Statement::Select(q) => q.where_clause.unwrap(),
            _ => unreachable!(),
        };
        assert_eq!(render_expr(&w("SELECT * FROM t WHERE a.x = 5")), "a.x = 5");
        assert_eq!(
            render_expr(&w("SELECT * FROM t WHERE a BETWEEN 1 AND 2")),
            "a BETWEEN 1 AND 2"
        );
        assert_eq!(
            render_expr(&w("SELECT * FROM t WHERE s LIKE 'x%'")),
            "s LIKE 'x%'"
        );
        assert_eq!(
            render_expr(&w("SELECT * FROM t WHERE a IN (1, 2)")),
            "a IN (1, 2)"
        );
        assert_eq!(
            render_expr(&w("SELECT * FROM t WHERE NOT a = 1")),
            "NOT (a = 1)"
        );
    }
}
