//! Physical plan representation, blocking classification, and the
//! decomposition into non-blocking sub-plans (paper §4.2).
//!
//! Blocking semantics follow the paper's definition: a blocking operator
//! "ensures that access to one object does not begin until another object is
//! completely accessed". Concretely:
//!
//! * `Sort` and `HashAggregate` consume their entire input before emitting —
//!   the input subtree is a separate pipeline from everything above;
//! * `HashJoin` consumes its entire **build** side before the probe side
//!   starts — the build subtree is a separate pipeline, the probe side is
//!   pipelined with the join's consumer;
//! * `MergeJoin` and `NestedLoops` interleave both inputs — co-access;
//! * `Filter`, `StreamAggregate`, `Top`, RID lookups and DML writes are
//!   pipelined.

use dblayout_catalog::ObjectId;

use crate::access::{AccessKind, ObjectAccess, Subplan};

/// A node of the physical execution plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Full sequential scan of a table, materialized view, or covering
    /// index-leaf scan.
    TableScan {
        /// Scanned object.
        object: ObjectId,
        /// Object name (for explain output).
        name: String,
        /// Blocks read.
        blocks: u64,
        /// Rows produced.
        rows: f64,
    },
    /// Sequential scan of a contiguous clustered-key range (a fraction of
    /// the table).
    ClusteredRangeScan {
        /// Scanned table.
        object: ObjectId,
        /// Table name.
        name: String,
        /// Blocks read (≤ table size).
        blocks: u64,
        /// Rows produced.
        rows: f64,
    },
    /// Repeated random point/range access into an object, driven once per
    /// outer row of a nested-loops join. Blocks are the *distinct* blocks
    /// touched (Cardenas estimate); access is random.
    Seek {
        /// The probed object (table clustered on the join key, or an index).
        object: ObjectId,
        /// Object name.
        name: String,
        /// Distinct blocks touched across all probes.
        blocks: u64,
        /// Total matching rows produced.
        rows: f64,
    },
    /// Nonclustered index seek: reads the matching leaf range.
    IndexSeek {
        /// The index object.
        object: ObjectId,
        /// Index name.
        name: String,
        /// Index leaf blocks read.
        blocks: u64,
        /// Matching entries.
        rows: f64,
    },
    /// Fetch of base-table rows for the locators produced by `child`
    /// (paper Example 4): random reads into the table.
    RidLookup {
        /// The base table.
        object: ObjectId,
        /// Table name.
        name: String,
        /// Distinct table blocks touched (Cardenas estimate).
        blocks: u64,
        /// Rows fetched.
        rows: f64,
        /// The index access producing locators.
        child: Box<PlanNode>,
    },
    /// Row filter (residual predicate); pipelined.
    Filter {
        /// Rendered predicate, for explain.
        predicate: String,
        /// Rows surviving.
        rows: f64,
        /// Input.
        child: Box<PlanNode>,
    },
    /// Nested-loops join; both inputs pipelined (inner re-iterated).
    NestedLoops {
        /// Join predicate rendering.
        on: String,
        /// Output rows.
        rows: f64,
        /// Outer input.
        outer: Box<PlanNode>,
        /// Inner input (typically an index seek / RID lookup).
        inner: Box<PlanNode>,
    },
    /// Merge join of two sorted inputs; both pipelined (co-access!).
    MergeJoin {
        /// Join keys rendering.
        on: String,
        /// Output rows.
        rows: f64,
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
    },
    /// Hash join: `build` fully consumed first (blocking edge), then `probe`
    /// streams.
    HashJoin {
        /// Join keys rendering.
        on: String,
        /// Output rows.
        rows: f64,
        /// Build input (smaller side).
        build: Box<PlanNode>,
        /// Probe input.
        probe: Box<PlanNode>,
        /// Blocks spilled to tempdb when the build side exceeds the memory
        /// grant (0 = in-memory).
        spill_blocks: u64,
    },
    /// Full sort; blocking.
    Sort {
        /// Sort keys rendering.
        by: String,
        /// Rows sorted.
        rows: f64,
        /// Blocks spilled to tempdb for external sort (0 = in-memory).
        spill_blocks: u64,
        /// Input.
        child: Box<PlanNode>,
    },
    /// Aggregate over sorted input; pipelined.
    StreamAggregate {
        /// Output rows (groups).
        rows: f64,
        /// Input.
        child: Box<PlanNode>,
    },
    /// Hash aggregate; blocking.
    HashAggregate {
        /// Output rows (groups).
        rows: f64,
        /// Blocks spilled to tempdb (0 = in-memory).
        spill_blocks: u64,
        /// Input.
        child: Box<PlanNode>,
    },
    /// Row-count limiter; pipelined.
    Top {
        /// Limit.
        n: u64,
        /// Rows out.
        rows: f64,
        /// Input.
        child: Box<PlanNode>,
    },
    /// A subquery whose full result is needed before the main plan runs
    /// (scalar subquery / uncorrelated IN): blocking on the `sub` side.
    Apply {
        /// Rows out of the main side.
        rows: f64,
        /// The subquery plan (separate pipeline).
        sub: Box<PlanNode>,
        /// The main plan consuming the subquery's result.
        main: Box<PlanNode>,
    },
    /// Write produced rows into a table; pipelined with its input.
    Insert {
        /// Target table.
        object: ObjectId,
        /// Table name.
        name: String,
        /// Blocks dirtied.
        write_blocks: u64,
        /// Rows written.
        rows: f64,
        /// Row source (`None` for `VALUES`).
        child: Option<Box<PlanNode>>,
    },
    /// Update matched rows in place; pipelined with the locating child.
    Update {
        /// Target table.
        object: ObjectId,
        /// Table name.
        name: String,
        /// Blocks dirtied.
        write_blocks: u64,
        /// Rows updated.
        rows: f64,
        /// Access plan locating the rows.
        child: Box<PlanNode>,
    },
    /// Delete matched rows; pipelined with the locating child.
    Delete {
        /// Target table.
        object: ObjectId,
        /// Table name.
        name: String,
        /// Blocks dirtied.
        write_blocks: u64,
        /// Rows deleted.
        rows: f64,
        /// Access plan locating the rows.
        child: Box<PlanNode>,
    },
}

impl PlanNode {
    /// Estimated output rows.
    pub fn rows(&self) -> f64 {
        match self {
            PlanNode::TableScan { rows, .. }
            | PlanNode::ClusteredRangeScan { rows, .. }
            | PlanNode::Seek { rows, .. }
            | PlanNode::IndexSeek { rows, .. }
            | PlanNode::RidLookup { rows, .. }
            | PlanNode::Filter { rows, .. }
            | PlanNode::NestedLoops { rows, .. }
            | PlanNode::MergeJoin { rows, .. }
            | PlanNode::HashJoin { rows, .. }
            | PlanNode::Sort { rows, .. }
            | PlanNode::StreamAggregate { rows, .. }
            | PlanNode::HashAggregate { rows, .. }
            | PlanNode::Top { rows, .. }
            | PlanNode::Apply { rows, .. }
            | PlanNode::Insert { rows, .. }
            | PlanNode::Update { rows, .. }
            | PlanNode::Delete { rows, .. } => *rows,
        }
    }

    /// Whether this operator introduces a pipeline cut toward *any* child.
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            PlanNode::Sort { .. }
                | PlanNode::HashAggregate { .. }
                | PlanNode::HashJoin { .. }
                | PlanNode::Apply { .. }
        )
    }

    /// Immediate children, in (outer/build/left first) order.
    pub fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::TableScan { .. }
            | PlanNode::ClusteredRangeScan { .. }
            | PlanNode::Seek { .. }
            | PlanNode::IndexSeek { .. } => vec![],
            PlanNode::RidLookup { child, .. }
            | PlanNode::Filter { child, .. }
            | PlanNode::Sort { child, .. }
            | PlanNode::StreamAggregate { child, .. }
            | PlanNode::HashAggregate { child, .. }
            | PlanNode::Top { child, .. }
            | PlanNode::Update { child, .. }
            | PlanNode::Delete { child, .. } => vec![child],
            PlanNode::NestedLoops { outer, inner, .. } => vec![outer, inner],
            PlanNode::MergeJoin { left, right, .. } => vec![left, right],
            PlanNode::HashJoin { build, probe, .. } => vec![build, probe],
            PlanNode::Apply { sub, main, .. } => vec![sub, main],
            PlanNode::Insert { child, .. } => child.iter().map(|c| c.as_ref()).collect(),
        }
    }

    /// Short operator name for explain output.
    pub fn op_name(&self) -> &'static str {
        match self {
            PlanNode::TableScan { .. } => "TableScan",
            PlanNode::Seek { .. } => "Seek",
            PlanNode::ClusteredRangeScan { .. } => "ClusteredRangeScan",
            PlanNode::IndexSeek { .. } => "IndexSeek",
            PlanNode::RidLookup { .. } => "RidLookup",
            PlanNode::Filter { .. } => "Filter",
            PlanNode::NestedLoops { .. } => "NestedLoops",
            PlanNode::MergeJoin { .. } => "MergeJoin",
            PlanNode::HashJoin { .. } => "HashJoin",
            PlanNode::Sort { .. } => "Sort",
            PlanNode::StreamAggregate { .. } => "StreamAggregate",
            PlanNode::HashAggregate { .. } => "HashAggregate",
            PlanNode::Top { .. } => "Top",
            PlanNode::Apply { .. } => "Apply",
            PlanNode::Insert { .. } => "Insert",
            PlanNode::Update { .. } => "Update",
            PlanNode::Delete { .. } => "Delete",
        }
    }
}

/// A complete physical plan for one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Root operator.
    pub root: PlanNode,
}

impl PhysicalPlan {
    /// Wraps a root node.
    pub fn new(root: PlanNode) -> Self {
        Self { root }
    }

    /// Decomposes the plan into its non-blocking sub-plans — the maximal
    /// pipelined regions obtained by cutting at every blocking operator
    /// (paper §4.2 / Figure 6 step 4). Region 0 is the root pipeline;
    /// regions are ordered by discovery (pre-order). Empty regions (no
    /// object or temp I/O) are dropped.
    pub fn subplans(&self) -> Vec<Subplan> {
        let mut regions: Vec<Subplan> = vec![Subplan::default()];
        walk(&self.root, 0, &mut regions);
        regions.retain(|s| !s.is_empty());
        regions
    }

    /// Total blocks of `object` accessed anywhere in the plan (Figure 6
    /// step 3's node-weight increment).
    pub fn total_blocks_of(&self, object: ObjectId) -> u64 {
        self.subplans().iter().map(|s| s.blocks_of(object)).sum()
    }

    /// Distinct objects accessed anywhere in the plan.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.subplans().iter().flat_map(|s| s.objects()).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Total blocks read + written across all objects and temp I/O.
    pub fn total_io_blocks(&self) -> u64 {
        self.subplans()
            .iter()
            .map(|s| {
                s.accesses.iter().map(|a| a.blocks).sum::<u64>()
                    + s.temp_read_blocks
                    + s.temp_write_blocks
            })
            .sum()
    }
}

fn region_add(regions: &mut Vec<Subplan>, region: usize, access: ObjectAccess) {
    while regions.len() <= region {
        regions.push(Subplan::default());
    }
    regions[region].add(access);
}

fn new_region(regions: &mut Vec<Subplan>) -> usize {
    regions.push(Subplan::default());
    regions.len() - 1
}

fn add_temp(regions: &mut [Subplan], region: usize, write: u64, read: u64) {
    regions[region].temp_write_blocks += write;
    regions[region].temp_read_blocks += read;
}

fn walk(node: &PlanNode, region: usize, regions: &mut Vec<Subplan>) {
    match node {
        PlanNode::TableScan {
            object,
            blocks,
            rows,
            ..
        }
        | PlanNode::ClusteredRangeScan {
            object,
            blocks,
            rows,
            ..
        }
        | PlanNode::IndexSeek {
            object,
            blocks,
            rows,
            ..
        } => {
            region_add(
                regions,
                region,
                ObjectAccess {
                    object: *object,
                    blocks: *blocks,
                    rows: *rows,
                    kind: AccessKind::SequentialRead,
                },
            );
        }
        PlanNode::Seek {
            object,
            blocks,
            rows,
            ..
        } => {
            region_add(
                regions,
                region,
                ObjectAccess {
                    object: *object,
                    blocks: *blocks,
                    rows: *rows,
                    kind: AccessKind::RandomRead,
                },
            );
        }
        PlanNode::RidLookup {
            object,
            blocks,
            rows,
            child,
            ..
        } => {
            walk(child, region, regions);
            region_add(
                regions,
                region,
                ObjectAccess {
                    object: *object,
                    blocks: *blocks,
                    rows: *rows,
                    kind: AccessKind::RandomRead,
                },
            );
        }
        PlanNode::Filter { child, .. }
        | PlanNode::StreamAggregate { child, .. }
        | PlanNode::Top { child, .. } => walk(child, region, regions),
        PlanNode::NestedLoops { outer, inner, .. } => {
            walk(outer, region, regions);
            walk(inner, region, regions);
        }
        PlanNode::MergeJoin { left, right, .. } => {
            walk(left, region, regions);
            walk(right, region, regions);
        }
        PlanNode::HashJoin {
            build,
            probe,
            spill_blocks,
            ..
        } => {
            let build_region = new_region(regions);
            walk(build, build_region, regions);
            if *spill_blocks > 0 {
                // Runs written while consuming the build side, read back
                // while probing.
                add_temp(regions, build_region, *spill_blocks, 0);
                add_temp(regions, region, 0, *spill_blocks);
            }
            walk(probe, region, regions);
        }
        PlanNode::Sort {
            child,
            spill_blocks,
            ..
        } => {
            let child_region = new_region(regions);
            walk(child, child_region, regions);
            if *spill_blocks > 0 {
                add_temp(regions, child_region, *spill_blocks, 0);
                add_temp(regions, region, 0, *spill_blocks);
            }
        }
        PlanNode::HashAggregate {
            child,
            spill_blocks,
            ..
        } => {
            let child_region = new_region(regions);
            walk(child, child_region, regions);
            if *spill_blocks > 0 {
                add_temp(regions, child_region, *spill_blocks, 0);
                add_temp(regions, region, 0, *spill_blocks);
            }
        }
        PlanNode::Apply { sub, main, .. } => {
            let sub_region = new_region(regions);
            walk(sub, sub_region, regions);
            walk(main, region, regions);
        }
        PlanNode::Insert {
            object,
            write_blocks,
            rows,
            child,
            ..
        } => {
            if let Some(c) = child {
                walk(c, region, regions);
            }
            region_add(
                regions,
                region,
                ObjectAccess {
                    object: *object,
                    blocks: *write_blocks,
                    rows: *rows,
                    kind: AccessKind::Write,
                },
            );
        }
        PlanNode::Update {
            object,
            write_blocks,
            rows,
            child,
            ..
        }
        | PlanNode::Delete {
            object,
            write_blocks,
            rows,
            child,
            ..
        } => {
            walk(child, region, regions);
            region_add(
                regions,
                region,
                ObjectAccess {
                    object: *object,
                    blocks: *write_blocks,
                    rows: *rows,
                    kind: AccessKind::Write,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(obj: u32, blocks: u64) -> PlanNode {
        PlanNode::TableScan {
            object: ObjectId(obj),
            name: format!("t{obj}"),
            blocks,
            rows: blocks as f64 * 50.0,
        }
    }

    #[test]
    fn merge_join_co_accesses_both_inputs() {
        let plan = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "a=b".into(),
            rows: 100.0,
            left: Box::new(scan(0, 300)),
            right: Box::new(scan(1, 150)),
        });
        let subs = plan.subplans();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].objects(), vec![ObjectId(0), ObjectId(1)]);
    }

    #[test]
    fn hash_join_cuts_build_side() {
        let plan = PhysicalPlan::new(PlanNode::HashJoin {
            on: "a=b".into(),
            rows: 100.0,
            build: Box::new(scan(0, 300)),
            probe: Box::new(scan(1, 150)),
            spill_blocks: 0,
        });
        let subs = plan.subplans();
        assert_eq!(subs.len(), 2);
        // Root region holds the probe, the new region holds the build.
        assert_eq!(subs[0].objects(), vec![ObjectId(1)]);
        assert_eq!(subs[1].objects(), vec![ObjectId(0)]);
    }

    #[test]
    fn sort_cuts_pipeline_like_paper_example3() {
        // Shape of TPC-H Q5: hash-joined dims, sort, then merge join with
        // lineitem+supplier — {0,1} must not co-access {2,3}.
        let dims = PlanNode::HashJoin {
            on: "x".into(),
            rows: 1000.0,
            build: Box::new(scan(0, 50)),
            probe: Box::new(scan(1, 500)),
            spill_blocks: 0,
        };
        let plan = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "y".into(),
            rows: 5000.0,
            left: Box::new(PlanNode::Sort {
                by: "k".into(),
                rows: 1000.0,
                spill_blocks: 0,
                child: Box::new(dims),
            }),
            right: Box::new(PlanNode::NestedLoops {
                on: "z".into(),
                rows: 5000.0,
                outer: Box::new(scan(2, 10_000)),
                inner: Box::new(scan(3, 100)),
            }),
        });
        let subs = plan.subplans();
        // Region holding 2,3 (root), region holding 1 (sort child pipeline
        // = probe of the hash join), region holding 0 (hash build).
        assert_eq!(subs.len(), 3);
        let with = |o: u32| {
            subs.iter()
                .position(|s| s.objects().contains(&ObjectId(o)))
                .unwrap()
        };
        assert_eq!(with(2), with(3));
        assert_ne!(with(0), with(2));
        assert_ne!(with(1), with(2));
        assert_ne!(with(0), with(1)); // hash build cut separates dims too
    }

    #[test]
    fn rid_lookup_random_access_same_region_as_seek() {
        let plan = PhysicalPlan::new(PlanNode::RidLookup {
            object: ObjectId(1),
            name: "orders".into(),
            blocks: 80,
            rows: 100.0,
            child: Box::new(PlanNode::IndexSeek {
                object: ObjectId(2),
                name: "idx".into(),
                blocks: 3,
                rows: 100.0,
            }),
        });
        let subs = plan.subplans();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].objects(), vec![ObjectId(1), ObjectId(2)]);
        let table = subs[0]
            .accesses
            .iter()
            .find(|a| a.object == ObjectId(1))
            .unwrap();
        assert_eq!(table.kind, AccessKind::RandomRead);
    }

    #[test]
    fn sort_spill_splits_temp_io_across_regions() {
        let plan = PhysicalPlan::new(PlanNode::Sort {
            by: "k".into(),
            rows: 1e6,
            spill_blocks: 500,
            child: Box::new(scan(0, 1000)),
        });
        let subs = plan.subplans();
        assert_eq!(subs.len(), 2);
        // Root region reads the runs back; child region wrote them.
        assert_eq!(subs[0].temp_read_blocks, 500);
        assert_eq!(subs[0].temp_write_blocks, 0);
        assert_eq!(subs[1].temp_write_blocks, 500);
    }

    #[test]
    fn in_memory_sort_has_no_temp_io_but_still_cuts() {
        let plan = PhysicalPlan::new(PlanNode::MergeJoin {
            on: "k".into(),
            rows: 10.0,
            left: Box::new(PlanNode::Sort {
                by: "k".into(),
                rows: 100.0,
                spill_blocks: 0,
                child: Box::new(scan(0, 10)),
            }),
            right: Box::new(scan(1, 10)),
        });
        let subs = plan.subplans();
        assert_eq!(subs.len(), 2);
        // Object 1 in root region, object 0 below the sort.
        assert_eq!(subs[0].objects(), vec![ObjectId(1)]);
        assert_eq!(subs[1].objects(), vec![ObjectId(0)]);
    }

    #[test]
    fn update_write_same_region_as_locating_scan() {
        let plan = PhysicalPlan::new(PlanNode::Update {
            object: ObjectId(0),
            name: "t0".into(),
            write_blocks: 40,
            rows: 2000.0,
            child: Box::new(scan(0, 300)),
        });
        let subs = plan.subplans();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].blocks_of(ObjectId(0)), 340);
        assert!(subs[0]
            .accesses
            .iter()
            .any(|a| a.kind == AccessKind::Write && a.blocks == 40));
    }

    #[test]
    fn total_blocks_of_sums_regions() {
        let plan = PhysicalPlan::new(PlanNode::HashJoin {
            on: "a".into(),
            rows: 1.0,
            build: Box::new(scan(0, 100)),
            probe: Box::new(scan(0, 100)), // self-join: same object both sides
            spill_blocks: 0,
        });
        assert_eq!(plan.total_blocks_of(ObjectId(0)), 200);
        assert_eq!(plan.objects(), vec![ObjectId(0)]);
    }

    #[test]
    fn values_insert_has_single_write_region() {
        let plan = PhysicalPlan::new(PlanNode::Insert {
            object: ObjectId(0),
            name: "t".into(),
            write_blocks: 1,
            rows: 1.0,
            child: None,
        });
        let subs = plan.subplans();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].accesses[0].kind, AccessKind::Write);
    }

    #[test]
    fn apply_separates_scalar_subquery() {
        let plan = PhysicalPlan::new(PlanNode::Apply {
            rows: 10.0,
            sub: Box::new(scan(0, 50)),
            main: Box::new(scan(1, 500)),
        });
        let subs = plan.subplans();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].objects(), vec![ObjectId(1)]);
        assert_eq!(subs[1].objects(), vec![ObjectId(0)]);
    }

    #[test]
    fn total_io_includes_temp() {
        let plan = PhysicalPlan::new(PlanNode::Sort {
            by: "k".into(),
            rows: 1e6,
            spill_blocks: 500,
            child: Box::new(scan(0, 1000)),
        });
        assert_eq!(plan.total_io_blocks(), 1000 + 500 + 500);
    }
}
