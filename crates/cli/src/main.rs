//! `dblayout` — the layout advisor as a command-line tool (paper Figure 3).

use std::process::ExitCode;

use dblayout_cli::constraints_file::parse_constraints_file;
use dblayout_cli::disks_file::parse_disks_file;
use dblayout_cli::{default_disks, resolve_catalog};
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_core::deploy::render_script;
use dblayout_core::tsgreedy::TsGreedyConfig;

const USAGE: &str = "\
dblayout — automated database layout advisor (ICDE 2003 reproduction)

USAGE:
    dblayout --database <spec> --workload <file> [options]

INPUTS (paper Figure 3):
    --database <spec>     built-in catalog: tpch[:sf] | tpch-n:<sf>:<n> | apb | sales
    --workload <file>     SQL DML statements, ';'-separated; optional
                          '-- weight: <w>' line before a statement
    --disks <file>        drive list: name capacity seek_ms read_mb_s write_mb_s [avail]
                          (default: the paper's 8-drive array)
    --constraints <file>  colocate A B | avail A <class> | max-movement <blocks>

OPTIONS:
    --k <n>               greedy step width (default 1)
    --script <dbname>     print the filegroup deployment script
    --json <file>         write the recommendation as JSON
    --help                this text
";

struct Args {
    database: String,
    workload: String,
    disks: Option<String>,
    constraints: Option<String>,
    k: usize,
    script: Option<String>,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        database: String::new(),
        workload: String::new(),
        disks: None,
        constraints: None,
        k: 1,
        script: None,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--database" => args.database = value("--database")?,
            "--workload" => args.workload = value("--workload")?,
            "--disks" => args.disks = Some(value("--disks")?),
            "--constraints" => args.constraints = Some(value("--constraints")?),
            "--k" => {
                args.k = value("--k")?
                    .parse()
                    .map_err(|e| format!("bad --k: {e}"))?
            }
            "--script" => args.script = Some(value("--script")?),
            "--json" => args.json = Some(value("--json")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    if args.database.is_empty() || args.workload.is_empty() {
        return Err(format!("--database and --workload are required\n\n{USAGE}"));
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let catalog = resolve_catalog(&args.database)?;
    let workload_text = std::fs::read_to_string(&args.workload)
        .map_err(|e| format!("cannot read workload `{}`: {e}", args.workload))?;
    let disks = match &args.disks {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read drives `{path}`: {e}"))?;
            parse_disks_file(&text)?
        }
        None => default_disks(),
    };
    let constraints = match &args.constraints {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read constraints `{path}`: {e}"))?;
            parse_constraints_file(&text, &catalog, &disks)?
        }
        None => dblayout_core::constraints::Constraints::none(),
    };

    let cfg = AdvisorConfig {
        search: TsGreedyConfig {
            k: args.k,
            constraints,
            ..Default::default()
        },
    };
    let advisor = Advisor::new(&catalog, &disks);
    let rec = advisor
        .recommend_sql(&workload_text, &cfg)
        .map_err(|e| e.to_string())?;

    println!("statements analyzed : {}", rec.plans.len());
    println!(
        "estimated I/O response time: full striping {:.0} ms -> recommended {:.0} ms",
        rec.full_striping_cost_ms, rec.recommended_cost_ms
    );
    println!(
        "estimated improvement: {:.1}%  ({} greedy iterations, {} cost evaluations)",
        rec.estimated_improvement_pct, rec.search.iterations, rec.search.cost_evaluations
    );
    println!();
    println!("recommended layout (object: disks):");
    for meta in catalog.objects() {
        let placed = rec.layout.disks_of(meta.id.index());
        let names: Vec<&str> = placed.iter().map(|&j| disks[j].name.as_str()).collect();
        println!("  {:<28} {}", meta.name, names.join(", "));
    }

    if let Some(db) = &args.script {
        println!();
        print!("{}", render_script(db, &catalog, &rec.layout, &disks));
    }

    if let Some(path) = &args.json {
        #[derive(serde::Serialize)]
        struct JsonOut<'a> {
            estimated_improvement_pct: f64,
            full_striping_cost_ms: f64,
            recommended_cost_ms: f64,
            objects: Vec<JsonObject<'a>>,
        }
        #[derive(serde::Serialize)]
        struct JsonObject<'a> {
            name: String,
            disks: Vec<&'a str>,
            fractions: Vec<f64>,
        }
        let out = JsonOut {
            estimated_improvement_pct: rec.estimated_improvement_pct,
            full_striping_cost_ms: rec.full_striping_cost_ms,
            recommended_cost_ms: rec.recommended_cost_ms,
            objects: catalog
                .objects()
                .iter()
                .map(|meta| JsonObject {
                    name: meta.name.clone(),
                    disks: rec
                        .layout
                        .disks_of(meta.id.index())
                        .iter()
                        .map(|&j| disks[j].name.as_str())
                        .collect(),
                    fractions: rec.layout.fractions_of(meta.id.index()).to_vec(),
                })
                .collect(),
        };
        let json = serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("\n(JSON written to {path})");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
